// In-memory labeled image dataset and mini-batch loader.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace mime::data {

/// One mini-batch: images [B, C, H, W] and integer labels.
struct Batch {
    Tensor images;
    std::vector<std::int64_t> labels;

    std::int64_t size() const { return images.shape().dim(0); }
};

/// A fully materialized dataset: images [N, C, H, W] + labels.
class Dataset {
public:
    Dataset() = default;
    Dataset(Tensor images, std::vector<std::int64_t> labels);

    std::int64_t size() const {
        return images_.shape().rank() == 0 ? 0 : images_.shape().dim(0);
    }
    const Tensor& images() const noexcept { return images_; }
    const std::vector<std::int64_t>& labels() const noexcept {
        return labels_;
    }

    /// Copies the samples at `indices` into a batch.
    Batch gather(const std::vector<std::size_t>& indices) const;

    /// First `count` samples as one batch (deterministic; used by tests
    /// and evaluation).
    Batch head(std::int64_t count) const;

private:
    Tensor images_;
    std::vector<std::int64_t> labels_;
};

/// Shuffling mini-batch iterator. Each epoch() call yields a fresh
/// permutation; the final short batch is kept (not dropped).
class DataLoader {
public:
    DataLoader(const Dataset& dataset, std::int64_t batch_size, Rng rng);

    /// Batches covering one shuffled epoch.
    std::vector<Batch> epoch();

    std::int64_t batch_size() const noexcept { return batch_size_; }
    std::int64_t batches_per_epoch() const;

private:
    const Dataset* dataset_;
    std::int64_t batch_size_;
    Rng rng_;
};

}  // namespace mime::data
