// The canonical experiment suite: one parent + the three child-task
// analogues used throughout the paper's evaluation.
#pragma once

#include <memory>

#include "data/synthetic.h"

namespace mime::data {

/// Task indices within the canonical suite.
struct TaskSuite {
    std::shared_ptr<SyntheticTaskFamily> family;
    std::int64_t parent = 0;       ///< ImageNet analogue (20 classes)
    std::int64_t cifar10_like = 0; ///< 10-class RGB child
    std::int64_t cifar100_like = 0;///< 100-class RGB child
    std::int64_t fmnist_like = 0;  ///< 10-class grayscale child

    /// All child task indices, in paper order.
    std::vector<std::int64_t> children() const {
        return {cifar10_like, cifar100_like, fmnist_like};
    }
};

/// Options scaling the suite for quick tests vs. full benches.
struct TaskSuiteOptions {
    std::uint64_t seed = 7;
    std::int64_t train_size = 2000;
    std::int64_t test_size = 500;
    /// Class-100 analogue keeps the full 100 classes only when true;
    /// tests use fewer classes to stay fast.
    std::int64_t cifar100_classes = 100;
};

/// Builds the parent + {CIFAR10, CIFAR100, F-MNIST} analogue suite with
/// the difficulty settings used in EXPERIMENTS.md.
TaskSuite make_task_suite(const TaskSuiteOptions& options = {});

}  // namespace mime::data
