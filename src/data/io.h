// Dataset (de)serialization.
//
// Synthetic datasets are cheap to regenerate, but caching them preserves
// bit-identical splits across tool invocations (e.g. the CLI trains in
// one process and evaluates in another). Format: magic "MIMEDAT1",
// u64 n/c/h/w, f32 images, i64 labels.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace mime::data {

/// Writes `dataset` to a binary stream.
void save_dataset(const Dataset& dataset, std::ostream& out);

/// Reads a dataset; throws mime::check_error on malformed input.
Dataset load_dataset(std::istream& in);

/// File conveniences.
void save_dataset_file(const Dataset& dataset, const std::string& path);
Dataset load_dataset_file(const std::string& path);

}  // namespace mime::data
