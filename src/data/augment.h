// Training-time data augmentation.
//
// The standard light CIFAR recipe: random horizontal flips, random
// shift-with-zero-pad crops, and additive pixel noise. Augmentation
// operates on batches so the trainer can apply it per epoch without
// rematerializing datasets.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace mime::data {

struct AugmentOptions {
    double flip_probability = 0.5;   ///< horizontal mirror
    std::int64_t max_shift = 2;      ///< random shift in [-max, +max] px
    double noise_stddev = 0.01;      ///< additive Gaussian pixel noise
    bool enabled = true;

    void validate() const;
};

/// Augments `batch` in place (images only; labels untouched).
void augment_batch(Batch& batch, const AugmentOptions& options, Rng& rng);

/// Horizontal mirror of one sample image [C, H, W] in place.
void flip_horizontal(Tensor& image);

/// Shifts one sample image [C, H, W] by (dy, dx) with zero fill.
void shift_image(Tensor& image, std::int64_t dy, std::int64_t dx);

}  // namespace mime::data
