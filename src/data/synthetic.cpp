#include "data/synthetic.h"

#include <cmath>

#include "common/check.h"

namespace mime::data {

namespace {

constexpr std::int64_t kPixels = SyntheticTaskFamily::kChannels *
                                 SyntheticTaskFamily::kHeight *
                                 SyntheticTaskFamily::kWidth;

std::vector<float> random_unit_vector(std::int64_t dim, Rng& rng) {
    std::vector<float> v(static_cast<std::size_t>(dim));
    double norm_sq = 0.0;
    for (auto& x : v) {
        x = static_cast<float>(rng.normal());
        norm_sq += static_cast<double>(x) * x;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq + 1e-12));
    for (auto& x : v) {
        x *= inv;
    }
    return v;
}

void normalize(std::vector<float>& v) {
    double norm_sq = 0.0;
    for (const float x : v) {
        norm_sq += static_cast<double>(x) * x;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq + 1e-12));
    for (auto& x : v) {
        x *= inv;
    }
}

}  // namespace

SyntheticTaskFamily::SyntheticTaskFamily(std::uint64_t seed,
                                         std::int64_t parent_classes,
                                         std::int64_t latent_dim,
                                         std::int64_t style_dim)
    : seed_(seed),
      latent_dim_(latent_dim),
      style_dim_(style_dim),
      hidden_dim_(64) {
    MIME_REQUIRE(parent_classes > 1, "parent task needs at least 2 classes");
    MIME_REQUIRE(latent_dim > 0 && style_dim > 0,
                 "latent/style dims must be positive");

    Rng rng(seed_);

    // Fixed decoder. Scales are chosen so tanh() stays in its responsive
    // range for unit-norm latents.
    auto fill = [&rng](std::vector<float>& w, std::int64_t count,
                       double stddev) {
        w.resize(static_cast<std::size_t>(count));
        for (auto& x : w) {
            x = static_cast<float>(rng.normal(0.0, stddev));
        }
    };
    fill(w1_, hidden_dim_ * latent_dim_, 1.4 / std::sqrt(latent_dim_));
    fill(u1_, hidden_dim_ * style_dim_, 0.25 / std::sqrt(style_dim_));
    fill(b1_, hidden_dim_, 0.1);
    fill(w2_, kPixels * hidden_dim_, 1.6 / std::sqrt(hidden_dim_));
    fill(u2_, kPixels * style_dim_, 0.12 / std::sqrt(style_dim_));

    parent_prototypes_.reserve(static_cast<std::size_t>(parent_classes));
    for (std::int64_t c = 0; c < parent_classes; ++c) {
        parent_prototypes_.push_back(random_unit_vector(latent_dim_, rng));
    }

    // Task 0 is the parent itself: prototypes are the parent bank.
    TaskSpec parent_spec;
    parent_spec.name = "parent";
    parent_spec.num_classes = parent_classes;
    parent_spec.style = ImageStyle::rgb;
    parent_spec.parent_affinity = 1.0;
    tasks_.push_back(parent_spec);
    task_prototypes_.push_back(parent_prototypes_);
}

std::int64_t SyntheticTaskFamily::add_task(const TaskSpec& spec) {
    MIME_REQUIRE(spec.num_classes > 1, "task needs at least 2 classes");
    MIME_REQUIRE(spec.parent_affinity >= 0.0 && spec.parent_affinity <= 1.0,
                 "parent_affinity must be in [0, 1]");
    MIME_REQUIRE(spec.train_size > 0 && spec.test_size > 0,
                 "split sizes must be positive");

    // Per-task prototype stream, independent of sample generation.
    Rng rng(seed_ ^ (0xC0FFEEULL + 0x9E37ULL * (tasks_.size() + 1)));
    std::vector<std::vector<float>> prototypes;
    prototypes.reserve(static_cast<std::size_t>(spec.num_classes));
    for (std::int64_t c = 0; c < spec.num_classes; ++c) {
        // Remix of 2 random parent prototypes + fresh direction.
        const auto& pa =
            parent_prototypes_[rng.uniform_index(parent_prototypes_.size())];
        const auto& pb =
            parent_prototypes_[rng.uniform_index(parent_prototypes_.size())];
        const double mix = rng.uniform();
        std::vector<float> fresh = random_unit_vector(latent_dim_, rng);
        std::vector<float> proto(static_cast<std::size_t>(latent_dim_));
        for (std::int64_t d = 0; d < latent_dim_; ++d) {
            const double remix = mix * pa[static_cast<std::size_t>(d)] +
                                 (1.0 - mix) * pb[static_cast<std::size_t>(d)];
            proto[static_cast<std::size_t>(d)] = static_cast<float>(
                spec.parent_affinity * remix +
                (1.0 - spec.parent_affinity) *
                    fresh[static_cast<std::size_t>(d)]);
        }
        normalize(proto);
        prototypes.push_back(std::move(proto));
    }
    tasks_.push_back(spec);
    task_prototypes_.push_back(std::move(prototypes));
    return static_cast<std::int64_t>(tasks_.size()) - 1;
}

const TaskSpec& SyntheticTaskFamily::task(std::int64_t index) const {
    MIME_REQUIRE(index >= 0 && index < task_count(),
                 "task index " + std::to_string(index) + " out of range");
    return tasks_[static_cast<std::size_t>(index)];
}

Dataset SyntheticTaskFamily::train_split(std::int64_t index) const {
    return generate(index, /*train=*/true, task(index).train_size);
}

Dataset SyntheticTaskFamily::test_split(std::int64_t index) const {
    return generate(index, /*train=*/false, task(index).test_size);
}

void SyntheticTaskFamily::decode(const std::vector<float>& latent,
                                 const std::vector<float>& style,
                                 float* pixels) const {
    std::vector<float> hidden(static_cast<std::size_t>(hidden_dim_));
    for (std::int64_t h = 0; h < hidden_dim_; ++h) {
        double acc = b1_[static_cast<std::size_t>(h)];
        const float* w_row = w1_.data() + h * latent_dim_;
        for (std::int64_t d = 0; d < latent_dim_; ++d) {
            acc += static_cast<double>(w_row[d]) *
                   latent[static_cast<std::size_t>(d)];
        }
        const float* u_row = u1_.data() + h * style_dim_;
        for (std::int64_t s = 0; s < style_dim_; ++s) {
            acc += static_cast<double>(u_row[s]) *
                   style[static_cast<std::size_t>(s)];
        }
        hidden[static_cast<std::size_t>(h)] =
            std::tanh(static_cast<float>(acc));
    }
    for (std::int64_t p = 0; p < kPixels; ++p) {
        double acc = 0.0;
        const float* w_row = w2_.data() + p * hidden_dim_;
        for (std::int64_t h = 0; h < hidden_dim_; ++h) {
            acc += static_cast<double>(w_row[h]) *
                   hidden[static_cast<std::size_t>(h)];
        }
        const float* u_row = u2_.data() + p * style_dim_;
        for (std::int64_t s = 0; s < style_dim_; ++s) {
            acc += static_cast<double>(u_row[s]) *
                   style[static_cast<std::size_t>(s)];
        }
        pixels[p] = std::tanh(static_cast<float>(acc));
    }
}

Dataset SyntheticTaskFamily::generate(std::int64_t task_index, bool train,
                                      std::int64_t count) const {
    const TaskSpec& spec = task(task_index);
    const auto& prototypes =
        task_prototypes_[static_cast<std::size_t>(task_index)];

    // Split-specific deterministic stream.
    Rng rng(seed_ ^ (train ? 0xAAAA5555ULL : 0x5555AAAAULL) ^
            (0x1234567ULL * (task_index + 1)));

    Tensor images({count, kChannels, kHeight, kWidth});
    std::vector<std::int64_t> labels(static_cast<std::size_t>(count));

    std::vector<float> latent(static_cast<std::size_t>(latent_dim_));
    std::vector<float> style(static_cast<std::size_t>(style_dim_));

    for (std::int64_t n = 0; n < count; ++n) {
        const auto label = static_cast<std::int64_t>(
            rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
        labels[static_cast<std::size_t>(n)] = label;
        const auto& proto = prototypes[static_cast<std::size_t>(label)];

        for (std::int64_t d = 0; d < latent_dim_; ++d) {
            latent[static_cast<std::size_t>(d)] =
                proto[static_cast<std::size_t>(d)] +
                static_cast<float>(rng.normal(0.0, spec.latent_noise));
        }
        for (std::int64_t s = 0; s < style_dim_; ++s) {
            style[static_cast<std::size_t>(s)] =
                static_cast<float>(rng.normal());
        }

        float* px = images.data() + n * kPixels;
        decode(latent, style, px);

        if (spec.pixel_noise > 0.0) {
            for (std::int64_t p = 0; p < kPixels; ++p) {
                px[p] += static_cast<float>(rng.normal(0.0, spec.pixel_noise));
            }
        }

        if (spec.style == ImageStyle::grayscale) {
            // Collapse to luminance, replicate across channels, and zero a
            // 2-pixel border to emulate 28x28 content in a 32x32 canvas.
            constexpr std::int64_t plane = kHeight * kWidth;
            for (std::int64_t i = 0; i < plane; ++i) {
                const float gray =
                    (px[i] + px[plane + i] + px[2 * plane + i]) / 3.0f;
                px[i] = gray;
                px[plane + i] = gray;
                px[2 * plane + i] = gray;
            }
            for (std::int64_t c = 0; c < kChannels; ++c) {
                float* ch = px + c * plane;
                for (std::int64_t y = 0; y < kHeight; ++y) {
                    for (std::int64_t x = 0; x < kWidth; ++x) {
                        if (y < 2 || y >= kHeight - 2 || x < 2 ||
                            x >= kWidth - 2) {
                            ch[y * kWidth + x] = 0.0f;
                        }
                    }
                }
            }
        }
    }
    return Dataset(std::move(images), std::move(labels));
}

}  // namespace mime::data
