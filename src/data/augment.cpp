#include "data/augment.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime::data {

void AugmentOptions::validate() const {
    MIME_REQUIRE(flip_probability >= 0.0 && flip_probability <= 1.0,
                 "flip probability must be in [0, 1]");
    MIME_REQUIRE(max_shift >= 0, "max shift must be non-negative");
    MIME_REQUIRE(noise_stddev >= 0.0, "noise stddev must be non-negative");
}

void flip_horizontal(Tensor& image) {
    MIME_REQUIRE(image.shape().rank() == 3, "expected [C, H, W] image");
    const std::int64_t channels = image.shape().dim(0);
    const std::int64_t height = image.shape().dim(1);
    const std::int64_t width = image.shape().dim(2);
    for (std::int64_t c = 0; c < channels; ++c) {
        float* plane = image.data() + c * height * width;
        for (std::int64_t y = 0; y < height; ++y) {
            float* row = plane + y * width;
            for (std::int64_t x = 0; x < width / 2; ++x) {
                std::swap(row[x], row[width - 1 - x]);
            }
        }
    }
}

void shift_image(Tensor& image, std::int64_t dy, std::int64_t dx) {
    MIME_REQUIRE(image.shape().rank() == 3, "expected [C, H, W] image");
    const std::int64_t channels = image.shape().dim(0);
    const std::int64_t height = image.shape().dim(1);
    const std::int64_t width = image.shape().dim(2);
    if (dy == 0 && dx == 0) {
        return;
    }
    Tensor shifted(image.shape());
    for (std::int64_t c = 0; c < channels; ++c) {
        const float* src = image.data() + c * height * width;
        float* dst = shifted.data() + c * height * width;
        for (std::int64_t y = 0; y < height; ++y) {
            const std::int64_t sy = y - dy;
            if (sy < 0 || sy >= height) {
                continue;  // zero fill
            }
            for (std::int64_t x = 0; x < width; ++x) {
                const std::int64_t sx = x - dx;
                if (sx >= 0 && sx < width) {
                    dst[y * width + x] = src[sy * width + sx];
                }
            }
        }
    }
    image = std::move(shifted);
}

void augment_batch(Batch& batch, const AugmentOptions& options, Rng& rng) {
    options.validate();
    if (!options.enabled) {
        return;
    }
    const std::int64_t n = batch.size();
    for (std::int64_t i = 0; i < n; ++i) {
        Tensor image = batch_slice(batch.images, i);
        if (rng.bernoulli(options.flip_probability)) {
            flip_horizontal(image);
        }
        if (options.max_shift > 0) {
            const auto span = static_cast<std::uint64_t>(
                2 * options.max_shift + 1);
            const std::int64_t dy =
                static_cast<std::int64_t>(rng.uniform_index(span)) -
                options.max_shift;
            const std::int64_t dx =
                static_cast<std::int64_t>(rng.uniform_index(span)) -
                options.max_shift;
            shift_image(image, dy, dx);
        }
        if (options.noise_stddev > 0.0) {
            for (std::int64_t j = 0; j < image.numel(); ++j) {
                image[j] +=
                    static_cast<float>(rng.normal(0.0, options.noise_stddev));
            }
        }
        batch_assign(batch.images, i, image);
    }
}

}  // namespace mime::data
