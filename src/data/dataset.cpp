#include "data/dataset.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime::data {

Dataset::Dataset(Tensor images, std::vector<std::int64_t> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
    MIME_REQUIRE(images_.shape().rank() == 4,
                 "dataset images must be [N, C, H, W], got " +
                     images_.shape().to_string());
    MIME_REQUIRE(static_cast<std::int64_t>(labels_.size()) ==
                     images_.shape().dim(0),
                 "label count does not match image count");
}

Batch Dataset::gather(const std::vector<std::size_t>& indices) const {
    MIME_REQUIRE(!indices.empty(), "cannot gather an empty batch");
    const std::int64_t n = size();
    std::vector<std::int64_t> dims = images_.shape().dims();
    dims[0] = static_cast<std::int64_t>(indices.size());
    Batch batch;
    batch.images = Tensor{Shape(dims)};
    batch.labels.reserve(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto src = static_cast<std::int64_t>(indices[i]);
        MIME_REQUIRE(src >= 0 && src < n, "gather index out of range");
        batch_assign(batch.images, static_cast<std::int64_t>(i),
                     batch_slice(images_, src));
        batch.labels.push_back(labels_[indices[i]]);
    }
    return batch;
}

Batch Dataset::head(std::int64_t count) const {
    MIME_REQUIRE(count > 0 && count <= size(),
                 "head count " + std::to_string(count) +
                     " out of range for dataset of size " +
                     std::to_string(size()));
    std::vector<std::size_t> indices(static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < indices.size(); ++i) {
        indices[i] = i;
    }
    return gather(indices);
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       Rng rng)
    : dataset_(&dataset), batch_size_(batch_size), rng_(rng) {
    MIME_REQUIRE(batch_size > 0, "batch size must be positive");
    MIME_REQUIRE(dataset.size() > 0, "cannot iterate an empty dataset");
}

std::vector<Batch> DataLoader::epoch() {
    const auto n = static_cast<std::size_t>(dataset_->size());
    const std::vector<std::size_t> order = rng_.permutation(n);
    std::vector<Batch> batches;
    batches.reserve((n + batch_size_ - 1) / batch_size_);
    for (std::size_t begin = 0; begin < n;
         begin += static_cast<std::size_t>(batch_size_)) {
        const std::size_t end =
            std::min(begin + static_cast<std::size_t>(batch_size_), n);
        std::vector<std::size_t> indices(order.begin() + begin,
                                         order.begin() + end);
        batches.push_back(dataset_->gather(indices));
    }
    return batches;
}

std::int64_t DataLoader::batches_per_epoch() const {
    return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace mime::data
