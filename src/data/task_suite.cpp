#include "data/task_suite.h"

#include "common/check.h"

namespace mime::data {

TaskSuite make_task_suite(const TaskSuiteOptions& options) {
    MIME_REQUIRE(options.cifar100_classes > 1,
                 "cifar100 analogue needs at least 2 classes");

    TaskSuite suite;
    suite.family = std::make_shared<SyntheticTaskFamily>(options.seed);
    suite.parent = 0;

    TaskSpec c10;
    c10.name = "cifar10-like";
    c10.num_classes = 10;
    c10.style = ImageStyle::rgb;
    c10.parent_affinity = 0.6;
    c10.latent_noise = 0.18;
    c10.pixel_noise = 0.03;
    c10.train_size = options.train_size;
    c10.test_size = options.test_size;
    suite.cifar10_like = suite.family->add_task(c10);

    TaskSpec c100 = c10;
    c100.name = "cifar100-like";
    c100.num_classes = options.cifar100_classes;
    // More classes in the same latent space → intrinsically harder, like
    // CIFAR100 vs CIFAR10.
    c100.latent_noise = 0.16;
    suite.cifar100_like = suite.family->add_task(c100);

    TaskSpec fm;
    fm.name = "fmnist-like";
    fm.num_classes = 10;
    fm.style = ImageStyle::grayscale;
    // F-MNIST is visually unlike ImageNet; lower affinity models the
    // domain gap while grayscale models the input-statistics gap.
    fm.parent_affinity = 0.35;
    fm.latent_noise = 0.15;
    fm.pixel_noise = 0.02;
    fm.train_size = options.train_size;
    fm.test_size = options.test_size;
    suite.fmnist_like = suite.family->add_task(fm);

    return suite;
}

}  // namespace mime::data
