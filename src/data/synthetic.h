// Synthetic multi-task image classification datasets.
//
// Substitute for the paper's ImageNet (parent) and CIFAR10 / CIFAR100 /
// Fashion-MNIST (children); see DESIGN.md §2. All tasks share one fixed
// random *generator network* that decodes class latents into images, so
// low-level image statistics are shared across tasks — exactly the
// transfer structure MIME exploits (a frozen parent backbone stays useful
// for every child task). Task difficulty is controlled by latent noise,
// nuisance style vectors and pixel noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace mime::data {

/// Visual style of a task's images.
enum class ImageStyle {
    rgb,       ///< full-color 32x32 content (CIFAR-like)
    grayscale  ///< single-channel content replicated to 3 channels and
               ///< centered in a 28x28 window (Fashion-MNIST-like)
};

/// Declarative description of one classification task.
struct TaskSpec {
    std::string name;
    std::int64_t num_classes = 10;
    ImageStyle style = ImageStyle::rgb;
    /// Blend of parent prototypes in this task's class prototypes
    /// (0 = unrelated to parent, 1 = pure remix of parent classes).
    double parent_affinity = 0.5;
    /// Latent-space noise stddev per dimension around each (unit-norm)
    /// prototype. Noise norm grows with sqrt(latent_dim), so values much
    /// above ~0.2 drown the class signal entirely.
    double latent_noise = 0.16;
    /// Additive pixel noise stddev.
    double pixel_noise = 0.03;
    std::int64_t train_size = 2000;
    std::int64_t test_size = 500;
};

/// The shared fixed-random decoder plus per-task prototypes.
///
/// Images are [3, 32, 32] in [-1, 1]. Generation is deterministic in
/// (family seed, task index, split, sample index).
class SyntheticTaskFamily {
public:
    /// Creates the shared generator. `latent_dim` is the class-identity
    /// space, `style_dim` the per-sample nuisance space, `parent_classes`
    /// the size of the parent prototype bank the children remix.
    SyntheticTaskFamily(std::uint64_t seed, std::int64_t parent_classes = 20,
                        std::int64_t latent_dim = 24,
                        std::int64_t style_dim = 8);

    /// Registers a task and returns its task index.
    std::int64_t add_task(const TaskSpec& spec);

    std::int64_t task_count() const {
        return static_cast<std::int64_t>(tasks_.size());
    }
    const TaskSpec& task(std::int64_t index) const;

    /// The parent task spec (registered automatically at construction as
    /// task 0, `parent_classes` classes, RGB).
    const TaskSpec& parent() const { return task(0); }

    /// Materializes the train split of task `index`.
    Dataset train_split(std::int64_t index) const;
    /// Materializes the test split of task `index`.
    Dataset test_split(std::int64_t index) const;

    static constexpr std::int64_t kChannels = 3;
    static constexpr std::int64_t kHeight = 32;
    static constexpr std::int64_t kWidth = 32;

private:
    Dataset generate(std::int64_t task_index, bool train,
                     std::int64_t count) const;
    /// Decodes one latent + style pair into a [3*32*32] pixel vector.
    void decode(const std::vector<float>& latent,
                const std::vector<float>& style, float* pixels) const;

    std::uint64_t seed_;
    std::int64_t latent_dim_;
    std::int64_t style_dim_;
    std::int64_t hidden_dim_;

    // Fixed random decoder weights (shared across all tasks).
    std::vector<float> w1_;  ///< [hidden, latent]
    std::vector<float> u1_;  ///< [hidden, style]
    std::vector<float> b1_;  ///< [hidden]
    std::vector<float> w2_;  ///< [pixels, hidden]
    std::vector<float> u2_;  ///< [pixels, style]

    std::vector<std::vector<float>> parent_prototypes_;  ///< unit vectors
    std::vector<TaskSpec> tasks_;
    std::vector<std::vector<std::vector<float>>> task_prototypes_;
};

}  // namespace mime::data
