#include "data/io.h"

#include <algorithm>
#include <fstream>

#include "common/check.h"

namespace mime::data {

namespace {
constexpr char kMagic[8] = {'M', 'I', 'M', 'E', 'D', 'A', 'T', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    MIME_REQUIRE(in.good(), "unexpected end of dataset stream");
    return v;
}
}  // namespace

void save_dataset(const Dataset& dataset, std::ostream& out) {
    MIME_REQUIRE(dataset.size() > 0, "cannot save an empty dataset");
    const Shape& s = dataset.images().shape();
    out.write(kMagic, sizeof(kMagic));
    for (std::int64_t axis = 0; axis < 4; ++axis) {
        write_u64(out, static_cast<std::uint64_t>(s.dim(axis)));
    }
    out.write(reinterpret_cast<const char*>(dataset.images().data()),
              static_cast<std::streamsize>(dataset.images().numel() *
                                           sizeof(float)));
    out.write(reinterpret_cast<const char*>(dataset.labels().data()),
              static_cast<std::streamsize>(dataset.labels().size() *
                                           sizeof(std::int64_t)));
    MIME_ENSURE(out.good(), "failed to write dataset stream");
}

Dataset load_dataset(std::istream& in) {
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    MIME_REQUIRE(in.good() && std::equal(magic, magic + 8, kMagic),
                 "bad dataset stream magic");
    std::vector<std::int64_t> dims(4);
    for (auto& d : dims) {
        d = static_cast<std::int64_t>(read_u64(in));
        MIME_REQUIRE(d > 0 && d < (1 << 24), "implausible dataset extent");
    }
    Tensor images{Shape(dims)};
    in.read(reinterpret_cast<char*>(images.data()),
            static_cast<std::streamsize>(images.numel() * sizeof(float)));
    MIME_REQUIRE(in.good(), "unexpected end of image data");
    std::vector<std::int64_t> labels(static_cast<std::size_t>(dims[0]));
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() *
                                         sizeof(std::int64_t)));
    MIME_REQUIRE(in.good(), "unexpected end of label data");
    return Dataset(std::move(images), std::move(labels));
}

void save_dataset_file(const Dataset& dataset, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    MIME_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
    save_dataset(dataset, out);
}

Dataset load_dataset_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MIME_REQUIRE(in.is_open(), "cannot open '" + path + "' for reading");
    return load_dataset(in);
}

}  // namespace mime::data
