// Minimal ordered JSON writer.
//
// Grew up as bench_common's artifact writer (BENCH_kernels.json,
// BENCH_serve.json) and moved here so runtime subsystems — notably the
// src/obs/ metric exporters — can emit the same format without linking
// the bench layer. Insertion order is preserved so emitted files diff
// cleanly run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mime {

/// Minimal ordered JSON tree: an object whose values are scalars,
/// nested objects, or arrays of objects.
class Json {
public:
    /// Scalar setters (each returns *this for chaining).
    Json& set(const std::string& key, const std::string& value);
    Json& set(const std::string& key, const char* value);
    Json& set(const std::string& key, double value);
    Json& set(const std::string& key, std::int64_t value);
    Json& set(const std::string& key, int value);
    Json& set(const std::string& key, bool value);
    /// Nested object / array-of-objects setters.
    Json& set(const std::string& key, Json value);
    Json& set(const std::string& key, std::vector<Json> values);

    std::string to_string(int indent = 0) const;

    /// Single-line rendering for machine-readable log lines. Safe to
    /// derive from the pretty form because json_escape guarantees no
    /// literal newline survives inside a string value — every newline
    /// in to_string() output is formatting.
    std::string to_line() const;

private:
    std::vector<std::pair<std::string, std::string>> scalars_or_trees_;
};

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

}  // namespace mime
