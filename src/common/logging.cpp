#include "common/logging.h"

#include <cstdio>

namespace mime {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::debug: return "DEBUG";
        case LogLevel::info:  return "INFO ";
        case LogLevel::warn:  return "WARN ";
        case LogLevel::error: return "ERROR";
        case LogLevel::off:   return "OFF  ";
    }
    return "?    ";
}
}  // namespace

void set_log_level(LogLevel level) {
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
    return g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) {
        return;
    }
    std::string line = "[mime ";
    line += level_tag(level);
    line += "] ";
    line += message;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(const std::string& message) { log(LogLevel::debug, message); }
void log_info(const std::string& message) { log(LogLevel::info, message); }
void log_warn(const std::string& message) { log(LogLevel::warn, message); }
void log_error(const std::string& message) { log(LogLevel::error, message); }

}  // namespace mime
