#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mime {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) {
        s = splitmix64(sm);
    }
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits → double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    MIME_REQUIRE(lo <= hi, "uniform range must satisfy lo <= hi");
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    MIME_REQUIRE(n > 0, "uniform_index requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * (UINT64_MAX / n);
    std::uint64_t x = next_u64();
    while (x >= limit) {
        x = next_u64();
    }
    return x % n;
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 is kept away from 0 so log() is finite.
    double u1 = uniform();
    while (u1 <= 1e-300) {
        u1 = uniform();
    }
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
    MIME_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
    return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
    MIME_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
    return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
        idx[i] = i;
    }
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniform_index(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng Rng::fork() {
    return Rng(next_u64());
}

}  // namespace mime
