// Console table rendering for the bench harness.
//
// Every reproduction binary prints rows in the same shape as the paper's
// tables/figures; this helper keeps the formatting consistent (fixed
// column widths, aligned numerics) across the eight bench targets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mime {

/// A simple left/right-aligned text table with a header row.
class Table {
public:
    /// Creates a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Appends one row; must match the header count.
    void add_row(std::vector<std::string> cells);

    /// Number of data rows.
    std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table (header, separator, rows) as a string.
    std::string to_string() const;

    /// Renders and writes to stdout.
    void print() const;

    /// Formats a double with `digits` places after the decimal point.
    static std::string num(double value, int digits = 4);

    /// Formats a ratio as e.g. "3.48x".
    static std::string ratio(double value, int digits = 2);

    /// Formats a byte count with a binary-unit suffix (KiB/MiB/GiB).
    static std::string bytes(double value);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mime
