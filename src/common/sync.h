// Capability-annotated synchronization primitives.
//
// Every mutex in the tree lives behind these wrappers so Clang's thread
// safety analysis (-Wthread-safety, promoted to an error in CI) can
// check the concurrency contract at compile time: which fields a lock
// guards (MIME_GUARDED_BY), which private helpers may only run with the
// lock held (MIME_REQUIRES), and which public entry points must be
// called without it (MIME_EXCLUDES — the lock-order contract between,
// e.g., the pool mutex and the cost-model mutex). GCC and MSVC see
// plain std::mutex semantics: the attribute macros expand to nothing,
// so the annotations cost nothing where they cannot be checked.
//
// tools/lint.py enforces that no raw std::mutex / std::lock_guard /
// std::unique_lock / std::condition_variable appears outside this
// header — new concurrent code must come through here, where the
// analysis can see it.
//
// Style notes for annotated code:
//   * Use explicit `while (!predicate()) cv.wait(lock);` loops instead
//     of the predicate-lambda overloads of std::condition_variable.
//     The analysis checks each lambda body as a separate function and
//     cannot see that the enclosing wait holds the lock, so guarded
//     reads inside wait predicates would need an escape hatch.
//   * MIME_NO_THREAD_SAFETY_ANALYSIS is budgeted (<= 3 uses tree-wide,
//     each with a written justification; tools/lint.py counts them).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros: Clang's thread safety analysis attributes when
// available, no-ops otherwise. Spellings follow the canonical
// mutex.h example from the Clang documentation.
// ---------------------------------------------------------------------------
#if defined(__clang__) && (!defined(SWIG))
#define MIME_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MIME_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define MIME_CAPABILITY(x) MIME_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define MIME_SCOPED_CAPABILITY MIME_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding `x`.
#define MIME_GUARDED_BY(x) MIME_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`.
#define MIME_PT_GUARDED_BY(x) MIME_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define MIME_REQUIRES(...) \
    MIME_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define MIME_ACQUIRE(...) \
    MIME_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define MIME_RELEASE(...) \
    MIME_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; the boolean result reports
/// success.
#define MIME_TRY_ACQUIRE(...) \
    MIME_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (it acquires them itself; calling with one held would self-deadlock
/// or invert a documented lock order).
#define MIME_EXCLUDES(...) MIME_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a lock-acquisition ordering between two capabilities.
#define MIME_ACQUIRED_BEFORE(...) \
    MIME_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MIME_ACQUIRED_AFTER(...) \
    MIME_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the capability that guards the result.
#define MIME_RETURN_CAPABILITY(x) MIME_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Budgeted —
/// tools/lint.py fails the build beyond 3 uses or uses without an
/// adjacent justification comment.
#define MIME_NO_THREAD_SAFETY_ANALYSIS \
    MIME_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mime {

class CondVar;

/// Exclusive mutex. A thin std::mutex wrapper that carries the
/// capability annotation; lock/unlock are meant to be driven through
/// MutexLock, not called bare (bare calls are still annotated so the
/// analysis tracks them when unavoidable).
class MIME_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() MIME_ACQUIRE() { mutex_.lock(); }
    void unlock() MIME_RELEASE() { mutex_.unlock(); }
    bool try_lock() MIME_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

private:
    friend class MutexLock;
    friend class CondVar;
    std::mutex mutex_;
};

/// RAII lock over a Mutex (the annotated std::unique_lock). Supports
/// early unlock()/relock() — the analysis tracks the held state — and
/// is the handle CondVar waits on.
class MIME_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) MIME_ACQUIRE(mutex)
        : lock_(mutex.mutex_) {}
    ~MutexLock() MIME_RELEASE() = default;

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// Releases early (e.g. to notify a condvar outside the critical
    /// section). The destructor then releases nothing.
    void unlock() MIME_RELEASE() { lock_.unlock(); }
    /// Re-acquires after an early unlock().
    void lock() MIME_ACQUIRE() { lock_.lock(); }

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on a MutexLock. Waits release and
/// re-acquire the underlying mutex, so the capability is held again
/// when they return — use explicit `while (!pred)` loops around waits
/// (see the header comment for why not the predicate overloads).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Blocks until notified (or spuriously woken; loop on the
    /// predicate). `lock` must hold the mutex guarding the predicate.
    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

    /// Blocks until notified or `deadline`; cv_status::timeout reports
    /// which.
    template <typename Clock, typename Duration>
    std::cv_status wait_until(
        MutexLock& lock,
        const std::chrono::time_point<Clock, Duration>& deadline) {
        return cv_.wait_until(lock.lock_, deadline);
    }

    /// Blocks until notified or `timeout` elapses.
    template <typename Rep, typename Period>
    std::cv_status wait_for(
        MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout) {
        return cv_.wait_for(lock.lock_, timeout);
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace mime
