// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the library (weight init, dataset
// synthesis, dropout, pruning tie-breaks) draws from an explicitly seeded
// mime::Rng so that a run is reproducible bit-for-bit from its seed.
// std::mt19937 is avoided because its distributions are not guaranteed
// identical across standard-library implementations; all distribution
// code here is self-contained.
#pragma once

#include <cstdint>
#include <vector>

namespace mime {

/// xoshiro256** pseudo-random generator (Blackman & Vigna) plus the
/// distribution helpers the library needs. Small, fast, and fully
/// deterministic across platforms.
class Rng {
public:
    /// Seeds the state via splitmix64 expansion of `seed`.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double uniform();

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    /// Standard normal via Box–Muller (cached second value).
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Bernoulli draw with probability `p` of true.
    bool bernoulli(double p);

    /// Fisher–Yates shuffle of an index vector [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    /// Derive an independent child generator; used to give each task /
    /// module its own stream while staying reproducible from one seed.
    Rng fork();

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace mime
