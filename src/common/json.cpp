#include "common/json.h"

#include <cstdio>

namespace mime {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

namespace {

std::string json_number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

/// Indents every line after the first by `pad` (used when splicing a
/// pre-rendered nested value into its parent).
std::string reindent(const std::string& rendered, const std::string& pad) {
    std::string out;
    out.reserve(rendered.size());
    for (const char c : rendered) {
        out += c;
        if (c == '\n') {
            out += pad;
        }
    }
    return out;
}

}  // namespace

Json& Json::set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    quoted += json_escape(value);
    quoted += '"';
    scalars_or_trees_.emplace_back(key, std::move(quoted));
    return *this;
}

Json& Json::set(const std::string& key, const char* value) {
    return set(key, std::string(value));
}

Json& Json::set(const std::string& key, double value) {
    scalars_or_trees_.emplace_back(key, json_number(value));
    return *this;
}

Json& Json::set(const std::string& key, std::int64_t value) {
    scalars_or_trees_.emplace_back(key, std::to_string(value));
    return *this;
}

Json& Json::set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
}

Json& Json::set(const std::string& key, bool value) {
    scalars_or_trees_.emplace_back(key, value ? "true" : "false");
    return *this;
}

Json& Json::set(const std::string& key, Json value) {
    scalars_or_trees_.emplace_back(key, value.to_string());
    return *this;
}

Json& Json::set(const std::string& key, std::vector<Json> values) {
    if (values.empty()) {
        scalars_or_trees_.emplace_back(key, "[]");
        return *this;
    }
    std::string rendered = "[\n";
    for (std::size_t i = 0; i < values.size(); ++i) {
        rendered += "  " + reindent(values[i].to_string(), "  ");
        rendered += i + 1 < values.size() ? ",\n" : "\n";
    }
    rendered += "]";
    scalars_or_trees_.emplace_back(key, std::move(rendered));
    return *this;
}

std::string Json::to_string(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    if (scalars_or_trees_.empty()) {
        return "{}";
    }
    std::string out = "{\n";
    for (std::size_t i = 0; i < scalars_or_trees_.size(); ++i) {
        const auto& [key, value] = scalars_or_trees_[i];
        out += pad + "  \"" + json_escape(key) +
               "\": " + reindent(value, pad + "  ");
        out += i + 1 < scalars_or_trees_.size() ? ",\n" : "\n";
    }
    out += pad + "}";
    return out;
}

std::string Json::to_line() const {
    const std::string pretty = to_string();
    std::string out;
    out.reserve(pretty.size());
    for (std::size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] == '\n') {
            while (i + 1 < pretty.size() && pretty[i + 1] == ' ') {
                ++i;
            }
            out += ' ';
        } else {
            out += pretty[i];
        }
    }
    return out;
}

}  // namespace mime
