#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace mime {

ThreadPool::ThreadPool(std::size_t thread_count) {
    if (thread_count == 0) {
        thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(thread_count);
    for (std::size_t i = 0; i < thread_count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    task_available_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    MIME_REQUIRE(task != nullptr, "cannot submit an empty task");
    {
        MutexLock lock(mutex_);
        MIME_REQUIRE(!stopping_, "cannot submit to a stopping pool");
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) {
        all_done_.wait(lock);
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && tasks_.empty()) {
                task_available_.wait(lock);
            }
            if (tasks_.empty()) {
                return;  // stopping_ and drained
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            MutexLock lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_chunk) {
    if (n == 0) {
        return;
    }
    const std::size_t workers = pool.size();
    if (workers <= 1 || n <= min_chunk) {
        body(0, n);
        return;
    }
    const std::size_t chunks = std::min(workers * 2, (n + min_chunk - 1) / min_chunk);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, n);
        pool.submit([&body, begin, end] { body(begin, end); });
    }
    pool.wait_idle();
}

ThreadPool& global_pool() {
    static ThreadPool pool;
    return pool;
}

}  // namespace mime
