#include "common/check.h"

namespace mime {

namespace {
std::string format_what(const std::string& expr, const std::string& file,
                        int line, const std::string& message) {
    std::string what = file;
    what += ':';
    what += std::to_string(line);
    what += ": check failed: (";
    what += expr;
    what += ")";
    if (!message.empty()) {
        what += " — ";
        what += message;
    }
    return what;
}
}  // namespace

check_error::check_error(const std::string& expr, const std::string& file,
                         int line, const std::string& message)
    : std::logic_error(format_what(expr, file, line, message)),
      expression_(expr),
      file_(file),
      line_(line) {}

namespace detail {
void throw_check_error(const char* expr, const char* file, int line,
                       const std::string& message) {
    throw check_error(expr, file, line, message);
}
}  // namespace detail

}  // namespace mime
