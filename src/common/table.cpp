#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace mime {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    MIME_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    MIME_REQUIRE(cells.size() == headers_.size(),
                 "row width " + std::to_string(cells.size()) +
                     " does not match header width " +
                     std::to_string(headers_.size()));
    rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    std::string sep = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        sep.append(widths[c] + 2, '-');
        sep += '|';
    }
    sep += '\n';
    out += sep;
    for (const auto& row : rows_) {
        out += render_row(row);
    }
    return out;
}

void Table::print() const {
    const std::string s = to_string();
    std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string Table::num(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string Table::ratio(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", digits, value);
    return buf;
}

std::string Table::bytes(double value) {
    const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int s = 0;
    while (value >= 1024.0 && s < 4) {
        value /= 1024.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix[s]);
    return buf;
}

}  // namespace mime
