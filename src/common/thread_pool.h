// A small fixed-size thread pool plus a parallel_for helper.
//
// Used by the GEMM / convolution kernels and the dataset synthesizer.
// The pool is created explicitly and passed by reference (Core Guidelines
// I.2/I.3: no hidden global singleton); `global_pool()` exists only as an
// opt-in convenience for examples and benches.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace mime {

/// Fixed-size worker pool executing enqueued tasks FIFO.
class ThreadPool {
public:
    /// Creates `thread_count` workers; 0 means hardware_concurrency
    /// (min 1).
    explicit ThreadPool(std::size_t thread_count = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads.
    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; returns immediately.
    void submit(std::function<void()> task) MIME_EXCLUDES(mutex_);

    /// Block until every submitted task has finished.
    void wait_idle() MIME_EXCLUDES(mutex_);

private:
    void worker_loop() MIME_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;  ///< written in the ctor only
    Mutex mutex_;
    std::queue<std::function<void()>> tasks_ MIME_GUARDED_BY(mutex_);
    CondVar task_available_;
    CondVar all_done_;
    std::size_t in_flight_ MIME_GUARDED_BY(mutex_) = 0;
    bool stopping_ MIME_GUARDED_BY(mutex_) = false;
};

/// Splits [0, n) into contiguous chunks and runs `body(begin, end)` on the
/// pool, blocking until completion. Executes inline when the range is
/// small or the pool has a single thread, so callers need no size checks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t min_chunk = 1024);

/// Lazily constructed process-wide pool sized to the hardware; intended
/// for examples/benches where threading is a detail, not a dependency.
ThreadPool& global_pool();

}  // namespace mime
