// Precondition / invariant checking for the MIME library.
//
// Follows the C++ Core Guidelines (I.5/I.7): interfaces state their
// preconditions, and violations surface as exceptions carrying the failed
// expression and source location, so they can be tested for and are never
// silently ignored (unlike NDEBUG-stripped assert).
#pragma once

#include <stdexcept>
#include <string>

namespace mime {

/// Exception thrown when a MIME_REQUIRE / MIME_ENSURE check fails.
///
/// Derives from std::logic_error because a failed check is a programming
/// error at the call site, not an environmental condition.
class check_error : public std::logic_error {
public:
    check_error(const std::string& expr, const std::string& file, int line,
                const std::string& message);

    /// The stringified expression that evaluated to false.
    const std::string& expression() const noexcept { return expression_; }
    /// Source file of the failed check.
    const std::string& file() const noexcept { return file_; }
    /// Source line of the failed check.
    int line() const noexcept { return line_; }

private:
    std::string expression_;
    std::string file_;
    int line_ = 0;
};

namespace detail {
[[noreturn]] void throw_check_error(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace detail

}  // namespace mime

/// Check a precondition; throws mime::check_error with context on failure.
/// `msg` may use stream-free string concatenation via std::to_string etc.
#define MIME_REQUIRE(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mime::detail::throw_check_error(#cond, __FILE__, __LINE__,     \
                                              (msg));                        \
        }                                                                    \
    } while (false)

/// Check a postcondition / internal invariant. Same behaviour as
/// MIME_REQUIRE; the distinct name documents intent (Ensures vs Expects).
#define MIME_ENSURE(cond, msg) MIME_REQUIRE(cond, msg)
