// Minimal leveled logging.
//
// The library itself stays quiet by default (level = warn); examples and
// benches raise the level to info to narrate progress. No global mutable
// state beyond one atomic level (Core Guidelines I.2 exception: a logger
// threshold is conventionally process-wide).
#pragma once

#include <atomic>
#include <string>

namespace mime {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current minimum level.
LogLevel log_level();

/// Emit one line to stderr if `level` passes the threshold. Thread-safe
/// (single formatted write per call).
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace mime
