// Task-queue schedule construction and analysis for Pipelined task mode.
//
// The paper evaluates one fixed interleaving (CIFAR10 | CIFAR100 |
// F-MNIST, round-robin). Real queues vary: bursty arrivals, per-task
// runs, skewed task mixes. This module builds such queues, measures
// their parameter-switch structure, and (as an extension ablation)
// quantifies how interleaving granularity moves the energy gap between
// MIME and conventional multi-task inference — including the effect of
// the controller reordering a window of the queue task-major, which the
// paper's "hardware knows the task" assumption permits.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/simulator.h"

namespace mime::hw {

/// Builds a queue of `total` items over `tasks` task ids where each task
/// occupies consecutive runs of `run_length` items (run_length = 1 is the
/// paper's round-robin; run_length = total/tasks is task-major).
std::vector<std::int64_t> make_run_queue(std::int64_t tasks,
                                         std::int64_t run_length,
                                         std::int64_t total);

/// Structural statistics of a queue.
struct QueueStats {
    std::int64_t length = 0;
    std::int64_t distinct_tasks = 0;
    /// Task changes between consecutive items (the switch count a
    /// conventional scheme pays weight reloads for).
    std::int64_t task_switches = 0;
    /// Mean run length of same-task stretches.
    double mean_run_length = 0.0;
};

QueueStats analyze_queue(const std::vector<std::int64_t>& queue);

/// Reorders `queue` task-major (stable within each task) — the best-case
/// schedule a task-aware controller can construct from a full window.
std::vector<std::int64_t> task_major_order(
    const std::vector<std::int64_t>& queue);

/// Runs `scheme` over the queue and returns the network-total energy.
/// Convenience wrapper for interleaving ablations: profiles are assigned
/// per task id (modulo the profile count).
double queue_energy(const InferenceSimulator& simulator,
                    const std::vector<arch::LayerSpec>& layers,
                    Scheme scheme, const std::vector<std::int64_t>& queue,
                    const std::vector<SparsityProfile>& profiles,
                    double weight_sparsity = 0.0);

}  // namespace mime::hw
