#include "hw/report.h"

#include <fstream>

#include "common/check.h"
#include "common/table.h"

namespace mime::hw {

namespace {
void require_runs(const std::vector<NamedResult>& runs) {
    MIME_REQUIRE(!runs.empty(), "no runs to render");
    for (const auto& run : runs) {
        MIME_REQUIRE(run.result != nullptr, "null run '" + run.name + "'");
        MIME_REQUIRE(run.result->layers.size() ==
                         runs.front().result->layers.size(),
                     "runs cover different layer counts");
    }
}
}  // namespace

std::string render_energy_table(const std::vector<NamedResult>& runs) {
    require_runs(runs);
    Table table({"layer", "run", "E_DRAM", "E_cache", "E_reg", "E_MAC",
                 "total"});
    const auto& layers = runs.front().result->layers;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        for (const auto& run : runs) {
            const auto& l = run.result->layers[li];
            table.add_row({l.name, run.name, Table::num(l.energy.e_dram, 0),
                           Table::num(l.energy.e_cache, 0),
                           Table::num(l.energy.e_reg, 0),
                           Table::num(l.energy.e_mac, 0),
                           Table::num(l.energy.total(), 0)});
        }
    }
    return table.to_string();
}

std::string render_throughput_table(const std::vector<NamedResult>& runs) {
    require_runs(runs);
    std::vector<std::string> headers{"layer"};
    for (const auto& run : runs) {
        headers.push_back(run.name + " cycles");
        if (&run != &runs.front()) {
            headers.push_back(run.name + " speedup");
        }
    }
    Table table(headers);
    const auto& base_layers = runs.front().result->layers;
    for (std::size_t li = 0; li < base_layers.size(); ++li) {
        std::vector<std::string> row{base_layers[li].name};
        const double base = base_layers[li].cycles;
        for (const auto& run : runs) {
            const double cycles = run.result->layers[li].cycles;
            row.push_back(Table::num(cycles, 0));
            if (&run != &runs.front()) {
                row.push_back(Table::ratio(base / cycles));
            }
        }
        table.add_row(row);
    }
    return table.to_string();
}

void write_csv(const std::vector<NamedResult>& runs, std::ostream& out) {
    require_runs(runs);
    out << "run,layer,e_dram,e_cache,e_reg,e_mac,total,cycles,"
           "dram_weight_words,dram_threshold_words,dram_act_in_words,"
           "dram_act_out_words,macs\n";
    for (const auto& run : runs) {
        for (const auto& l : run.result->layers) {
            out << run.name << ',' << l.name << ',' << l.energy.e_dram << ','
                << l.energy.e_cache << ',' << l.energy.e_reg << ','
                << l.energy.e_mac << ',' << l.energy.total() << ','
                << l.cycles << ',' << l.counts.dram_weight_words << ','
                << l.counts.dram_threshold_words << ','
                << l.counts.dram_activation_in_words << ','
                << l.counts.dram_activation_out_words << ',' << l.counts.macs
                << '\n';
        }
    }
    MIME_ENSURE(out.good(), "failed to write CSV");
}

void write_csv_file(const std::vector<NamedResult>& runs,
                    const std::string& path) {
    std::ofstream out(path);
    MIME_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
    write_csv(runs, out);
}

}  // namespace mime::hw
