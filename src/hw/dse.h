// Design-space exploration over systolic-array configurations.
//
// Generalizes the paper's Fig 9 ablation: sweep PE-array sizes and cache
// budgets (optionally cache partitions), evaluate each design under a
// fixed workload/scheme, and extract the energy-delay Pareto frontier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/simulator.h"

namespace mime::hw {

/// One evaluated design point.
struct DesignResult {
    SystolicConfig config;
    double total_energy = 0.0;
    double total_cycles = 0.0;
    /// energy * delay — the scalar figure of merit used for ranking.
    double energy_delay() const { return total_energy * total_cycles; }
    std::string label;  ///< e.g. "pe=1024 cache=156KB"
};

/// Sweep axes. Every combination of the listed values is evaluated.
struct DesignSweep {
    std::vector<std::int64_t> pe_array_sizes{256, 512, 1024, 2048};
    std::vector<std::int64_t> cache_bytes{96 * 1024, 128 * 1024, 156 * 1024,
                                          256 * 1024};
    /// Base config supplying all other parameters (energies, spads...).
    SystolicConfig base{};
};

/// Evaluates the full sweep under `options` on `layers`.
std::vector<DesignResult> explore(const DesignSweep& sweep,
                                  const std::vector<arch::LayerSpec>& layers,
                                  const SimulationOptions& options);

/// Subset of `results` not dominated in (energy, cycles) — lower is
/// better on both axes. Output is sorted by energy ascending.
std::vector<DesignResult> pareto_frontier(
    const std::vector<DesignResult>& results);

/// The design with the lowest energy-delay product.
const DesignResult& best_energy_delay(
    const std::vector<DesignResult>& results);

}  // namespace mime::hw
