// On-chip cache models.
//
// Two granularities are provided:
//  * LruCache — an exact block-level LRU used for weight/threshold
//    version residency across task switches in Pipelined task mode (a
//    small layer's per-task weight sets can all stay resident, in which
//    case even the conventional scheme avoids DRAM reloads);
//  * resident_fraction — an analytic capacity model for streaming
//    activation maps (fraction of a map that stays cache-resident
//    between reuse passes).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace mime::hw {

/// Exact LRU over variable-size blocks identified by 64-bit keys.
class LruCache {
public:
    explicit LruCache(std::int64_t capacity_bytes);

    /// Touches block `key` of `size_bytes`. Returns true on hit; on miss
    /// the block is inserted (evicting LRU blocks as needed) and false is
    /// returned. Blocks larger than the capacity are never resident (each
    /// touch is a miss and nothing is evicted).
    bool touch(std::uint64_t key, std::int64_t size_bytes);

    /// Drops everything (e.g. when moving to the next layer, whose
    /// parameters displace the previous layer's).
    void clear();

    std::int64_t capacity_bytes() const noexcept { return capacity_; }
    std::int64_t used_bytes() const noexcept { return used_; }
    std::int64_t hit_count() const noexcept { return hits_; }
    std::int64_t miss_count() const noexcept { return misses_; }

private:
    struct Block {
        std::uint64_t key;
        std::int64_t size;
    };

    std::int64_t capacity_;
    std::int64_t used_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::list<Block> lru_;  ///< front = most recent
    std::unordered_map<std::uint64_t, std::list<Block>::iterator> index_;
};

/// Fraction of a `bytes_needed`-sized working set that stays resident in
/// a cache of `capacity_bytes` between reuse passes (1 if it fits, else
/// proportional).
double resident_fraction(std::int64_t bytes_needed,
                         std::int64_t capacity_bytes);

}  // namespace mime::hw
