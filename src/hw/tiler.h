// Output-stationary dataflow tiler.
//
// Under OS dataflow each PE owns one output neuron (channel c, pixel p)
// of the current tile; a tile is a block of C_t channels x S_t pixels
// with C_t * S_t <= PE-array size. Channel blocks are the outer loop so a
// block's weights stay cache-resident across its spatial sweep (and
// across the batch); activations are re-touched once per channel block.
//
// The tiler enumerates candidate tile shapes; the simulator's mapper
// picks the cheapest per layer (a miniature Timeloop-style search).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/layer_spec.h"

namespace mime::hw {

/// One concrete tiling of a layer onto the PE array.
struct Tiling {
    std::int64_t channels_per_tile = 1;  ///< C_t
    std::int64_t pixels_per_tile = 1;    ///< S_t
    std::int64_t channel_blocks = 1;     ///< ceil(Cout / C_t)
    std::int64_t spatial_blocks = 1;     ///< ceil(Hout*Wout / S_t)

    std::int64_t tile_count() const {
        return channel_blocks * spatial_blocks;
    }
    std::int64_t pe_used() const {
        return channels_per_tile * pixels_per_tile;
    }

    /// Ratio of activations touched (incl. halo overlap between adjacent
    /// spatial tiles) to the layer's input activations. 1 for fc layers
    /// and for full-map tiles; up to K^2/stride^2 for single-pixel tiles.
    double halo_factor(const arch::LayerSpec& layer) const;
};

/// All candidate tilings for `layer` on `pe_array_size` PEs: C_t sweeps
/// powers of two (plus Cout) up to min(Cout, PEs); S_t fills the
/// remaining PEs up to the output map size. Every candidate covers each
/// output neuron exactly once.
std::vector<Tiling> enumerate_tilings(const arch::LayerSpec& layer,
                                      std::int64_t pe_array_size);

/// The natural (largest-channel-block) tiling, used when no cost-based
/// choice is requested.
Tiling default_tiling(const arch::LayerSpec& layer,
                      std::int64_t pe_array_size);

}  // namespace mime::hw
