// Systolic-array accelerator configuration (paper Table IV).
//
// The accelerator is an Eyeriss-like spatial array in 65 nm CMOS running
// an output-stationary (OS) dataflow. All energies are normalized to one
// MAC operation: eDRAM = 200x, ecache = 6x, ereg (spad) = 2x, eMAC = 1x.
#pragma once

#include <cstdint>

namespace mime::hw {

/// Hardware parameters; defaults reproduce Table IV.
struct SystolicConfig {
    /// Number of processing elements (Table IV: 1024, i.e. a 32x32 array).
    std::int64_t pe_array_size = 1024;

    /// Total on-chip cache budget shared by the activation, weight and
    /// threshold caches (Table IV: 156 KB). The per-cache capacities are
    /// carved out by the fractions below.
    std::int64_t total_cache_bytes = 156 * 1024;
    double weight_cache_fraction = 0.50;
    double activation_cache_fraction = 0.40;
    double threshold_cache_fraction = 0.10;

    /// Scratchpad bytes per PE (Table IV: 512 B).
    std::int64_t spad_bytes = 512;

    /// Bits per word for W, X, A and T (Table IV: 16).
    int precision_bits = 16;

    /// Energy per 16-bit access / op, normalized to one MAC (Table IV).
    double e_dram = 200.0;
    double e_cache = 6.0;
    double e_reg = 2.0;
    double e_mac = 1.0;
    /// Comparator op energy. The paper folds CMP into its four reported
    /// components; we count CMP ops separately and default their energy
    /// contribution to 0 to keep component parity with the paper.
    double e_cmp = 0.0;

    /// DRAM words deliverable per cycle (throughput stall model only).
    double dram_words_per_cycle = 8.0;

    std::int64_t weight_cache_bytes() const;
    std::int64_t activation_cache_bytes() const;
    std::int64_t threshold_cache_bytes() const;
    std::int64_t word_bytes() const { return precision_bits / 8; }

    /// Throws unless the configuration is self-consistent.
    void validate() const;
};

}  // namespace mime::hw
