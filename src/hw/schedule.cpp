#include "hw/schedule.h"

#include <algorithm>

#include "common/check.h"

namespace mime::hw {

std::vector<std::int64_t> make_run_queue(std::int64_t tasks,
                                         std::int64_t run_length,
                                         std::int64_t total) {
    MIME_REQUIRE(tasks > 0 && run_length > 0 && total > 0,
                 "queue parameters must be positive");
    std::vector<std::int64_t> queue;
    queue.reserve(static_cast<std::size_t>(total));
    std::int64_t task = 0;
    while (static_cast<std::int64_t>(queue.size()) < total) {
        for (std::int64_t i = 0;
             i < run_length &&
             static_cast<std::int64_t>(queue.size()) < total;
             ++i) {
            queue.push_back(task);
        }
        task = (task + 1) % tasks;
    }
    return queue;
}

QueueStats analyze_queue(const std::vector<std::int64_t>& queue) {
    MIME_REQUIRE(!queue.empty(), "empty queue");
    QueueStats stats;
    stats.length = static_cast<std::int64_t>(queue.size());
    std::vector<std::int64_t> seen;
    std::int64_t runs = 1;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (std::find(seen.begin(), seen.end(), queue[i]) == seen.end()) {
            seen.push_back(queue[i]);
        }
        if (i > 0 && queue[i] != queue[i - 1]) {
            ++stats.task_switches;
            ++runs;
        }
    }
    stats.distinct_tasks = static_cast<std::int64_t>(seen.size());
    stats.mean_run_length =
        static_cast<double>(stats.length) / static_cast<double>(runs);
    return stats;
}

std::vector<std::int64_t> task_major_order(
    const std::vector<std::int64_t>& queue) {
    std::vector<std::int64_t> sorted = queue;
    std::stable_sort(sorted.begin(), sorted.end());
    return sorted;
}

double queue_energy(const InferenceSimulator& simulator,
                    const std::vector<arch::LayerSpec>& layers,
                    Scheme scheme, const std::vector<std::int64_t>& queue,
                    const std::vector<SparsityProfile>& profiles,
                    double weight_sparsity) {
    SimulationOptions options;
    options.scheme = scheme;
    options.batch = queue;
    options.profiles = profiles;
    options.weight_sparsity =
        scheme == Scheme::pruned ? weight_sparsity : 0.0;
    options.preserve_arrival_order = true;
    return simulator.run(layers, options).total_energy.total();
}

}  // namespace mime::hw
