// Rendering and export of simulation results.
//
// The bench harness prints paper-style tables; this module additionally
// renders full per-layer breakdowns and exports CSV so results can be
// re-plotted against the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hw/simulator.h"

namespace mime::hw {

/// One named simulation run (e.g. "Case-1", "MIME").
struct NamedResult {
    std::string name;
    const SimulationResult* result = nullptr;
};

/// Renders a per-layer energy-breakdown table for several runs side by
/// side (layer-major, one row per (layer, run)).
std::string render_energy_table(const std::vector<NamedResult>& runs);

/// Renders a per-layer cycles table with speedups relative to the first
/// run.
std::string render_throughput_table(const std::vector<NamedResult>& runs);

/// Writes a CSV with one row per (run, layer):
/// run,layer,e_dram,e_cache,e_reg,e_mac,total,cycles,
/// dram_weight_words,dram_threshold_words,dram_act_in,dram_act_out,macs
void write_csv(const std::vector<NamedResult>& runs, std::ostream& out);

/// File convenience for write_csv.
void write_csv_file(const std::vector<NamedResult>& runs,
                    const std::string& path);

}  // namespace mime::hw
