#include "hw/dse.h"

#include <algorithm>

#include "common/check.h"

namespace mime::hw {

std::vector<DesignResult> explore(const DesignSweep& sweep,
                                  const std::vector<arch::LayerSpec>& layers,
                                  const SimulationOptions& options) {
    MIME_REQUIRE(!sweep.pe_array_sizes.empty() && !sweep.cache_bytes.empty(),
                 "sweep axes must be non-empty");
    std::vector<DesignResult> results;
    results.reserve(sweep.pe_array_sizes.size() * sweep.cache_bytes.size());
    for (const std::int64_t pe : sweep.pe_array_sizes) {
        for (const std::int64_t cache : sweep.cache_bytes) {
            SystolicConfig config = sweep.base;
            config.pe_array_size = pe;
            config.total_cache_bytes = cache;
            const InferenceSimulator sim{config};
            const SimulationResult run = sim.run(layers, options);

            DesignResult r;
            r.config = config;
            r.total_energy = run.total_energy.total();
            r.total_cycles = run.total_cycles;
            r.label = "pe=" + std::to_string(pe) + " cache=" +
                      std::to_string(cache / 1024) + "KB";
            results.push_back(r);
        }
    }
    return results;
}

std::vector<DesignResult> pareto_frontier(
    const std::vector<DesignResult>& results) {
    MIME_REQUIRE(!results.empty(), "no design results");
    std::vector<DesignResult> frontier;
    for (const auto& candidate : results) {
        bool dominated = false;
        for (const auto& other : results) {
            const bool no_worse = other.total_energy <= candidate.total_energy &&
                                  other.total_cycles <= candidate.total_cycles;
            const bool strictly_better =
                other.total_energy < candidate.total_energy ||
                other.total_cycles < candidate.total_cycles;
            if (no_worse && strictly_better) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            frontier.push_back(candidate);
        }
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const DesignResult& a, const DesignResult& b) {
                  return a.total_energy < b.total_energy;
              });
    return frontier;
}

const DesignResult& best_energy_delay(
    const std::vector<DesignResult>& results) {
    MIME_REQUIRE(!results.empty(), "no design results");
    const DesignResult* best = &results.front();
    for (const auto& r : results) {
        if (r.energy_delay() < best->energy_delay()) {
            best = &r;
        }
    }
    return *best;
}

}  // namespace mime::hw
