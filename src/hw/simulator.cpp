#include "hw/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "hw/cache_model.h"

namespace mime::hw {

std::string scheme_name(Scheme scheme) {
    switch (scheme) {
        case Scheme::baseline_dense: return "Case-1";
        case Scheme::baseline_sparse: return "Case-2";
        case Scheme::mime: return "MIME";
        case Scheme::pruned: return "Pruned";
    }
    return "?";
}

void SimulationOptions::validate(std::int64_t layer_count) const {
    MIME_REQUIRE(!batch.empty(), "batch must contain at least one image");
    MIME_REQUIRE(!profiles.empty(), "at least one sparsity profile needed");
    for (const auto task : batch) {
        MIME_REQUIRE(task >= 0 &&
                         task < static_cast<std::int64_t>(profiles.size()),
                     "batch references unknown task " + std::to_string(task));
    }
    for (const auto& p : profiles) {
        MIME_REQUIRE(p.layer_count() >= layer_count,
                     "profile '" + p.name() + "' covers " +
                         std::to_string(p.layer_count()) + " layers, need " +
                         std::to_string(layer_count));
    }
    MIME_REQUIRE(weight_sparsity >= 0.0 && weight_sparsity < 1.0,
                 "weight sparsity must be in [0, 1)");
    if (scheme != Scheme::pruned) {
        MIME_REQUIRE(weight_sparsity == 0.0,
                     "weight sparsity applies to the pruned scheme only");
    }
}

const LayerResult& SimulationResult::layer(const std::string& name) const {
    for (const auto& l : layers) {
        if (l.name == name) {
            return l;
        }
    }
    MIME_REQUIRE(false, "no layer named '" + name + "' in simulation result");
    return layers.front();  // unreachable
}

InferenceSimulator::InferenceSimulator(SystolicConfig config)
    : config_(config) {
    config_.validate();
}

namespace {

/// Number of distinct tasks in the batch (weight versions for the
/// conventional schemes, threshold sets for MIME).
std::int64_t distinct_tasks(const std::vector<std::int64_t>& batch) {
    std::set<std::int64_t> tasks(batch.begin(), batch.end());
    return static_cast<std::int64_t>(tasks.size());
}

/// Number of maximal same-task runs in arrival order (= task switches
/// + 1); each run forces a parameter reload when versions cannot
/// coexist in cache and the controller must preserve arrival order.
std::int64_t task_runs(const std::vector<std::int64_t>& batch) {
    std::int64_t runs = 1;
    for (std::size_t i = 1; i < batch.size(); ++i) {
        if (batch[i] != batch[i - 1]) {
            ++runs;
        }
    }
    return runs;
}

/// Parameter-set loads for a stream needing `versions` distinct sets of
/// `bytes_per_version` each: compulsory loads if they all fit the cache
/// or the controller may reorder task-major; otherwise one load per
/// same-task run.
double version_loads(std::int64_t versions, double bytes_per_version,
                     std::int64_t cache_bytes, bool preserve_order,
                     std::int64_t runs) {
    if (versions <= 1) {
        return static_cast<double>(versions);
    }
    const bool all_fit =
        bytes_per_version * static_cast<double>(versions) <=
        static_cast<double>(cache_bytes);
    if (all_fit || !preserve_order) {
        return static_cast<double>(versions);
    }
    return static_cast<double>(runs);
}

}  // namespace

LayerResult InferenceSimulator::simulate_layer(
    const arch::LayerSpec& layer, std::int64_t layer_index,
    const SimulationOptions& options, const Tiling& tiling) const {
    const auto w_words = static_cast<double>(layer.weight_count());
    const auto t_words = static_cast<double>(layer.neuron_count());
    const auto a_words = static_cast<double>(
        layer.in_channels * layer.in_height * layer.in_width);
    const auto o_words = static_cast<double>(layer.neuron_count());
    const auto m1 = static_cast<double>(layer.macs_per_neuron());
    const double word_bytes = static_cast<double>(config_.word_bytes());

    const bool zero_skip = options.scheme != Scheme::baseline_dense;
    const bool has_thresholds = options.scheme == Scheme::mime;
    const double keep_w = 1.0 - options.weight_sparsity;

    const std::int64_t tasks = distinct_tasks(options.batch);
    const std::int64_t weight_versions = has_thresholds ? 1 : tasks;
    const std::int64_t threshold_versions = has_thresholds ? tasks : 0;

    const double halo = tiling.halo_factor(layer);
    const auto n_cb = static_cast<double>(tiling.channel_blocks);
    const auto n_sb = static_cast<double>(tiling.spatial_blocks);

    AccessCounts counts;

    // ---- DRAM: weight versions ------------------------------------------
    // The controller knows each queued input's task (paper §IV). By
    // default it orders the per-tile image sweep task-major, so every
    // needed weight version streams from DRAM once per layer: V_w loads.
    // MIME's single shared version is the whole point — in Pipelined
    // task mode V_w = 1 for MIME vs. V_w = #tasks conventionally. Under
    // preserve_arrival_order, versions that cannot coexist in the weight
    // cache are reloaded at every task switch instead.
    const std::int64_t runs = task_runs(options.batch);
    counts.dram_weight_words =
        version_loads(weight_versions, w_words * word_bytes,
                      config_.weight_cache_bytes(),
                      options.preserve_arrival_order, runs) *
        w_words;

    // ---- DRAM: thresholds (MIME only) ------------------------------------
    counts.dram_threshold_words =
        version_loads(threshold_versions, t_words * word_bytes,
                      config_.threshold_cache_bytes(),
                      options.preserve_arrival_order, runs) *
        t_words;

    // ---- per-image streams -------------------------------------------------
    double compute_cycles = 0.0;
    for (const std::int64_t task : options.batch) {
        const SparsityProfile& profile =
            options.profiles[static_cast<std::size_t>(task)];
        const double s_in = profile.input_sparsity(layer_index);
        const double s_out = profile.output_sparsity(layer_index);
        // Compute-path skipping uses the real activation sparsity; the
        // dense baseline does not skip.
        const double s_comp = zero_skip ? s_in : 0.0;
        // DRAM layouts: zero-skipping schemes store activations
        // compressed (non-zeros only); Case-1 stores dense maps.
        const double s_storage_in = zero_skip ? s_in : 0.0;
        const double s_storage_out = zero_skip ? s_out : 0.0;

        // Input activations: loaded once if the (compressed) map stays
        // cache-resident across channel-block passes; spilled fractions
        // pay per-pass and halo re-fetches.
        const double stored_in = a_words * (1.0 - s_storage_in);
        const double resident = resident_fraction(
            static_cast<std::int64_t>(stored_in * word_bytes),
            config_.activation_cache_bytes());
        const double touches = std::max(1.0, n_cb * halo);
        counts.dram_activation_in_words +=
            stored_in * (resident + (1.0 - resident) * touches);

        // Output activations written back to DRAM (paper: outputs are
        // stored back to off-chip memory).
        counts.dram_activation_out_words += o_words * (1.0 - s_storage_out);
        counts.cache_output_words += o_words * (1.0 - s_storage_out);

        // Cache->PE operand traffic. A weight word is read once per
        // spatial block and broadcast along its channel's pixel lanes; an
        // activation word is read once per channel block (plus halo) and
        // broadcast across channel lanes. Zero-skipping suppresses reads
        // for zero activations and pruned weights.
        counts.cache_weight_words +=
            w_words * n_sb * (1.0 - s_comp) * keep_w;
        counts.cache_activation_words +=
            a_words * (1.0 - s_comp) * n_cb * halo;
        if (has_thresholds) {
            counts.cache_threshold_words += t_words;
        }

        // PE-local traffic and compute: 3 spad accesses per surviving MAC
        // (weight read, activation read, psum update), plus per output a
        // threshold read (MIME) and the masked-output write.
        const double macs = o_words * m1 * (1.0 - s_comp) * keep_w;
        counts.macs += macs;
        counts.cmps += o_words;
        counts.reg_words += 3.0 * macs + o_words * (has_thresholds ? 2.0 : 1.0);

        // Each PE executes its surviving MACs sequentially; tiles run
        // back-to-back with an array fill/drain bubble.
        const double fill = static_cast<double>(tiling.channels_per_tile +
                                                tiling.pixels_per_tile);
        compute_cycles += static_cast<double>(tiling.tile_count()) *
                          (m1 * (1.0 - s_comp) * keep_w + fill);
    }

    LayerResult result;
    result.name = layer.name;
    result.tiling = tiling;
    result.counts = counts;
    result.energy = energy_from_counts(counts, config_);
    result.compute_cycles = compute_cycles;
    result.memory_cycles = counts.dram_total() / config_.dram_words_per_cycle;
    result.cycles = std::max(result.compute_cycles, result.memory_cycles);
    return result;
}

SimulationResult InferenceSimulator::run(
    const std::vector<arch::LayerSpec>& layers,
    const SimulationOptions& options) const {
    MIME_REQUIRE(!layers.empty(), "need at least one layer");
    options.validate(static_cast<std::int64_t>(layers.size()));

    SimulationResult result;
    result.layers.reserve(layers.size());

    for (std::size_t li = 0; li < layers.size(); ++li) {
        const arch::LayerSpec& layer = layers[li];
        layer.validate();

        LayerResult best;
        if (options.optimize_tiling) {
            bool first = true;
            for (const Tiling& tiling :
                 enumerate_tilings(layer, config_.pe_array_size)) {
                LayerResult candidate = simulate_layer(
                    layer, static_cast<std::int64_t>(li), options, tiling);
                if (first || candidate.energy.total() < best.energy.total()) {
                    best = candidate;
                    first = false;
                }
            }
        } else {
            best = simulate_layer(layer, static_cast<std::int64_t>(li),
                                  options,
                                  default_tiling(layer,
                                                 config_.pe_array_size));
        }

        result.total_counts += best.counts;
        result.total_energy += best.energy;
        result.total_cycles += best.cycles;
        result.layers.push_back(std::move(best));
    }
    return result;
}

SimulationOptions singular_options(Scheme scheme, PaperTask task,
                                   std::int64_t batch_size) {
    MIME_REQUIRE(batch_size > 0, "batch size must be positive");
    SimulationOptions options;
    options.scheme = scheme;
    options.batch.assign(static_cast<std::size_t>(batch_size), 0);
    if (scheme == Scheme::mime) {
        options.profiles = {SparsityProfile::paper_mime(task)};
    } else {
        options.profiles = {SparsityProfile::paper_baseline(task)};
    }
    if (scheme == Scheme::pruned) {
        options.weight_sparsity = 0.9;
    }
    return options;
}

SimulationOptions pipelined_options(Scheme scheme) {
    SimulationOptions options;
    options.scheme = scheme;
    options.batch = {0, 1, 2};
    const PaperTask tasks[] = {PaperTask::cifar10, PaperTask::cifar100,
                               PaperTask::fmnist};
    for (const PaperTask t : tasks) {
        options.profiles.push_back(scheme == Scheme::mime
                                       ? SparsityProfile::paper_mime(t)
                                       : SparsityProfile::paper_baseline(t));
    }
    if (scheme == Scheme::pruned) {
        options.weight_sparsity = 0.9;
    }
    return options;
}

}  // namespace mime::hw
