#include "hw/sparsity_profile.h"

#include "common/check.h"

namespace mime::hw {

namespace {

// Paper Tables II / III report 11 of the 15 layers:
// conv2 conv4 conv5 conv7 conv8 conv9 conv10 conv12 conv13 conv14 conv15.
// Indices (0-based) of the reported layers in the 15-layer sequence:
constexpr int kReported[11] = {1, 3, 4, 6, 7, 8, 9, 11, 12, 13, 14};

// Table II: average layerwise neuronal sparsity due to MIME.
constexpr double kMime[3][11] = {
    // CIFAR10
    {0.6493, 0.6081, 0.6587, 0.6203, 0.6233, 0.6449, 0.6679, 0.6477, 0.6553,
     0.6855, 0.657},
    // CIFAR100
    {0.6522, 0.5951, 0.6373, 0.6100, 0.6121, 0.6279, 0.6580, 0.6374, 0.6388,
     0.6703, 0.6571},
    // F-MNIST
    {0.6075, 0.5634, 0.6138, 0.5991, 0.5959, 0.6017, 0.6204, 0.6014, 0.6125,
     0.6138, 0.6287},
};

// Table III: average layerwise neuronal sparsity due to ReLU (baselines).
constexpr double kBaseline[3][11] = {
    // CIFAR10
    {0.4983, 0.4506, 0.5390, 0.5015, 0.5097, 0.5341, 0.5635, 0.5358, 0.5420,
     0.5627, 0.5608},
    // CIFAR100
    {0.5030, 0.4586, 0.5399, 0.5069, 0.5129, 0.5333, 0.5633, 0.5345, 0.5449,
     0.5842, 0.6002},
    // F-MNIST
    {0.5114, 0.4796, 0.5488, 0.5230, 0.5260, 0.5329, 0.5503, 0.5280, 0.5343,
     0.5507, 0.5820},
};

std::vector<double> expand_reported(const double (&values)[11]) {
    // Fill the 15-layer vector; unreported layers take the value of the
    // nearest reported layer (ties resolve to the earlier layer).
    std::vector<double> full(15, 0.0);
    for (int layer = 0; layer < 15; ++layer) {
        int best = 0;
        int best_dist = 1 << 20;
        for (int r = 0; r < 11; ++r) {
            const int dist = layer >= kReported[r] ? layer - kReported[r]
                                                   : kReported[r] - layer;
            if (dist < best_dist) {
                best_dist = dist;
                best = r;
            }
        }
        full[static_cast<std::size_t>(layer)] = values[best];
    }
    return full;
}

const char* task_name(PaperTask task) {
    switch (task) {
        case PaperTask::cifar10: return "CIFAR10";
        case PaperTask::cifar100: return "CIFAR100";
        case PaperTask::fmnist: return "F-MNIST";
    }
    return "?";
}

}  // namespace

SparsityProfile::SparsityProfile(std::string name,
                                 std::vector<double> output_sparsity)
    : name_(std::move(name)), output_sparsity_(std::move(output_sparsity)) {
    MIME_REQUIRE(!output_sparsity_.empty(), "profile needs layers");
    for (const double s : output_sparsity_) {
        MIME_REQUIRE(s >= 0.0 && s < 1.0,
                     "sparsity values must be in [0, 1)");
    }
}

SparsityProfile SparsityProfile::uniform(std::string name, double sparsity,
                                         std::int64_t layers) {
    MIME_REQUIRE(layers > 0, "profile needs at least one layer");
    return SparsityProfile(
        std::move(name),
        std::vector<double>(static_cast<std::size_t>(layers), sparsity));
}

SparsityProfile SparsityProfile::paper_mime(PaperTask task) {
    return SparsityProfile(std::string("mime/") + task_name(task),
                           expand_reported(kMime[static_cast<int>(task)]));
}

SparsityProfile SparsityProfile::paper_baseline(PaperTask task) {
    return SparsityProfile(std::string("relu/") + task_name(task),
                           expand_reported(kBaseline[static_cast<int>(task)]));
}

double SparsityProfile::output_sparsity(std::int64_t index) const {
    MIME_REQUIRE(index >= 0 && index < layer_count(),
                 "layer index out of range");
    return output_sparsity_[static_cast<std::size_t>(index)];
}

double SparsityProfile::input_sparsity(std::int64_t index) const {
    MIME_REQUIRE(index >= 0 && index < layer_count(),
                 "layer index out of range");
    return index == 0 ? 0.0 : output_sparsity(index - 1);
}

double SparsityProfile::average() const {
    double acc = 0.0;
    for (const double s : output_sparsity_) {
        acc += s;
    }
    return acc / static_cast<double>(output_sparsity_.size());
}

}  // namespace mime::hw
