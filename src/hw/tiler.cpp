#include "hw/tiler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mime::hw {

double Tiling::halo_factor(const arch::LayerSpec& layer) const {
    if (layer.kind == arch::LayerKind::fc || layer.kernel == 1) {
        return 1.0;
    }
    const std::int64_t spatial = layer.out_height() * layer.out_width();
    if (pixels_per_tile >= spatial) {
        return 1.0;
    }
    // Model a square tile of side sqrt(S_t): its receptive field extends
    // (kernel - stride) beyond the tile on each side, so adjacent tiles
    // re-fetch the overlap. Clamped to the single-pixel worst case.
    const double side = std::sqrt(static_cast<double>(pixels_per_tile));
    const double extent =
        static_cast<double>(layer.kernel - layer.stride);
    const double grown = (side * static_cast<double>(layer.stride) + extent);
    const double factor =
        (grown * grown) / (side * side *
                           static_cast<double>(layer.stride * layer.stride));
    const double worst = static_cast<double>(layer.kernel * layer.kernel) /
                         static_cast<double>(layer.stride * layer.stride);
    return std::clamp(factor, 1.0, worst);
}

std::vector<Tiling> enumerate_tilings(const arch::LayerSpec& layer,
                                      std::int64_t pe_array_size) {
    MIME_REQUIRE(pe_array_size > 0, "PE array must be positive");
    layer.validate();

    const std::int64_t co = layer.out_channels;
    const std::int64_t spatial = layer.out_height() * layer.out_width();

    std::vector<std::int64_t> channel_candidates;
    for (std::int64_t c = 1; c < std::min(co, pe_array_size); c *= 2) {
        channel_candidates.push_back(c);
    }
    channel_candidates.push_back(std::min(co, pe_array_size));

    std::vector<Tiling> tilings;
    for (const std::int64_t ct : channel_candidates) {
        Tiling t;
        t.channels_per_tile = ct;
        t.pixels_per_tile =
            std::min(spatial, std::max<std::int64_t>(1, pe_array_size / ct));
        t.channel_blocks = (co + ct - 1) / ct;
        t.spatial_blocks =
            (spatial + t.pixels_per_tile - 1) / t.pixels_per_tile;
        MIME_ENSURE(t.pe_used() <= pe_array_size,
                    "tile exceeds the PE array");
        MIME_ENSURE(t.channel_blocks * t.channels_per_tile >= co &&
                        t.spatial_blocks * t.pixels_per_tile >= spatial,
                    "tiling must cover all output neurons");
        tilings.push_back(t);
    }
    return tilings;
}

Tiling default_tiling(const arch::LayerSpec& layer,
                      std::int64_t pe_array_size) {
    const auto tilings = enumerate_tilings(layer, pe_array_size);
    return tilings.back();  // largest channel block
}

}  // namespace mime::hw
