// Event counts and the normalized energy model (Table IV).
#pragma once

#include <cstdint>

#include "hw/systolic_config.h"

namespace mime::hw {

/// Raw event counts accumulated by the simulator for one layer (or
/// summed over layers).
struct AccessCounts {
    // DRAM word transfers, split by stream.
    double dram_weight_words = 0.0;
    double dram_threshold_words = 0.0;
    double dram_activation_in_words = 0.0;
    double dram_activation_out_words = 0.0;

    // Cache word accesses.
    double cache_weight_words = 0.0;
    double cache_threshold_words = 0.0;
    double cache_activation_words = 0.0;
    double cache_output_words = 0.0;

    // PE-local scratchpad accesses.
    double reg_words = 0.0;

    // Compute.
    double macs = 0.0;
    double cmps = 0.0;

    double dram_total() const {
        return dram_weight_words + dram_threshold_words +
               dram_activation_in_words + dram_activation_out_words;
    }
    double cache_total() const {
        return cache_weight_words + cache_threshold_words +
               cache_activation_words + cache_output_words;
    }

    AccessCounts& operator+=(const AccessCounts& other);
};

/// Normalized energies (units of one MAC op), mirroring the paper's four
/// stacked components E_DRAM / E_cache / E_reg / E_MAC.
struct EnergyBreakdown {
    double e_dram = 0.0;
    double e_cache = 0.0;
    double e_reg = 0.0;
    double e_mac = 0.0;

    double total() const { return e_dram + e_cache + e_reg + e_mac; }

    EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/// Applies the config's per-access energies to raw counts. CMP ops are
/// charged at e_cmp and folded into the e_mac component.
EnergyBreakdown energy_from_counts(const AccessCounts& counts,
                                   const SystolicConfig& config);

}  // namespace mime::hw
