#include "hw/energy_model.h"

namespace mime::hw {

AccessCounts& AccessCounts::operator+=(const AccessCounts& other) {
    dram_weight_words += other.dram_weight_words;
    dram_threshold_words += other.dram_threshold_words;
    dram_activation_in_words += other.dram_activation_in_words;
    dram_activation_out_words += other.dram_activation_out_words;
    cache_weight_words += other.cache_weight_words;
    cache_threshold_words += other.cache_threshold_words;
    cache_activation_words += other.cache_activation_words;
    cache_output_words += other.cache_output_words;
    reg_words += other.reg_words;
    macs += other.macs;
    cmps += other.cmps;
    return *this;
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
    e_dram += other.e_dram;
    e_cache += other.e_cache;
    e_reg += other.e_reg;
    e_mac += other.e_mac;
    return *this;
}

EnergyBreakdown energy_from_counts(const AccessCounts& counts,
                                   const SystolicConfig& config) {
    EnergyBreakdown energy;
    energy.e_dram = config.e_dram * counts.dram_total();
    energy.e_cache = config.e_cache * counts.cache_total();
    energy.e_reg = config.e_reg * counts.reg_words;
    energy.e_mac = config.e_mac * counts.macs + config.e_cmp * counts.cmps;
    return energy;
}

}  // namespace mime::hw
