// Per-layer neuronal-sparsity profiles driving the hardware simulator.
//
// The simulator consumes, for each of the 15 threshold-bearing VGG16
// layers, the average fraction of zero output activations. Profiles can
// come from: the paper's published Tables II/III (default, so the
// hardware reproduction does not depend on CPU training time), from a
// model trained in this repository (core::SparsityReport), or from a
// constant (ablations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mime::hw {

/// Child tasks of the paper's evaluation, in paper order.
enum class PaperTask { cifar10 = 0, cifar100 = 1, fmnist = 2 };

/// Output-activation sparsity per layer for one task/model pair.
class SparsityProfile {
public:
    /// Builds from explicit per-layer values (size must be 15).
    SparsityProfile(std::string name, std::vector<double> output_sparsity);

    /// Constant sparsity at every layer.
    static SparsityProfile uniform(std::string name, double sparsity,
                                   std::int64_t layers = 15);

    /// Paper Table II: MIME threshold-induced sparsity for `task`.
    /// Layers the table omits (conv1, conv3, conv6, conv11) are filled
    /// with the nearest reported neighbour.
    static SparsityProfile paper_mime(PaperTask task);

    /// Paper Table III: baseline ReLU sparsity for `task`.
    static SparsityProfile paper_baseline(PaperTask task);

    const std::string& name() const noexcept { return name_; }
    std::int64_t layer_count() const {
        return static_cast<std::int64_t>(output_sparsity_.size());
    }

    /// Sparsity of layer `index`'s outputs (0-based: conv1 is 0).
    double output_sparsity(std::int64_t index) const;

    /// Sparsity of layer `index`'s *inputs*: 0 for the first layer (raw
    /// images are dense), else the previous layer's output sparsity.
    double input_sparsity(std::int64_t index) const;

    /// Mean over layers.
    double average() const;

private:
    std::string name_;
    std::vector<double> output_sparsity_;
};

}  // namespace mime::hw
