#include "hw/systolic_config.h"

#include <cmath>

#include "common/check.h"

namespace mime::hw {

namespace {
std::int64_t carve(std::int64_t total, double fraction) {
    return static_cast<std::int64_t>(
        std::floor(static_cast<double>(total) * fraction));
}
}  // namespace

std::int64_t SystolicConfig::weight_cache_bytes() const {
    return carve(total_cache_bytes, weight_cache_fraction);
}

std::int64_t SystolicConfig::activation_cache_bytes() const {
    return carve(total_cache_bytes, activation_cache_fraction);
}

std::int64_t SystolicConfig::threshold_cache_bytes() const {
    return carve(total_cache_bytes, threshold_cache_fraction);
}

void SystolicConfig::validate() const {
    MIME_REQUIRE(pe_array_size > 0, "PE array must have at least one PE");
    MIME_REQUIRE(total_cache_bytes > 0, "cache budget must be positive");
    MIME_REQUIRE(weight_cache_fraction > 0.0 &&
                     activation_cache_fraction > 0.0 &&
                     threshold_cache_fraction > 0.0,
                 "cache fractions must be positive");
    MIME_REQUIRE(weight_cache_fraction + activation_cache_fraction +
                         threshold_cache_fraction <= 1.0 + 1e-9,
                 "cache fractions must sum to at most 1");
    MIME_REQUIRE(spad_bytes > 0, "spad must be non-empty");
    MIME_REQUIRE(precision_bits > 0 && precision_bits % 8 == 0,
                 "precision must be a positive multiple of 8 bits");
    MIME_REQUIRE(e_dram > 0 && e_cache > 0 && e_reg > 0 && e_mac > 0,
                 "energy constants must be positive");
    MIME_REQUIRE(e_cmp >= 0, "e_cmp must be non-negative");
    MIME_REQUIRE(dram_words_per_cycle > 0,
                 "DRAM bandwidth must be positive");
}

}  // namespace mime::hw
