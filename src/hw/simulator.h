// The systolic-array inference simulator.
//
// Reproduces the paper's hardware evaluation: a batch of images (each
// tagged with a task) streams through the network layer by layer under
// OS dataflow. Four schemes are modeled:
//
//  * baseline_dense  — Case-1: conventional per-task weights, no
//                      zero-skipping;
//  * baseline_sparse — Case-2: conventional per-task weights, compute and
//                      cache traffic skip zero activations (ReLU
//                      sparsity);
//  * mime            — Case-3: one shared W_parent + per-task thresholds,
//                      zero-skipping at MIME's (higher) sparsity;
//  * pruned          — Fig 8 comparators: conventional per-task weights
//                      with 90% weight sparsity exploited by the compute
//                      path (DRAM layouts stay dense, as in the paper's
//                      accounting — its stated advantage of the pruned
//                      models is the absence of threshold fetches, not
//                      weight compression in DRAM).
//
// In Pipelined task mode the batch interleaves tasks, so conventional
// schemes must keep one weight version per task; MIME keeps a single
// version plus per-task thresholds. Version residency, activation-map
// residency, tile-shape choice and halo re-fetching all follow from the
// cache capacities and PE-array size, which is what the Fig 9 ablations
// exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/layer_spec.h"
#include "hw/energy_model.h"
#include "hw/sparsity_profile.h"
#include "hw/systolic_config.h"
#include "hw/tiler.h"

namespace mime::hw {

/// Inference scheme (see file header).
enum class Scheme { baseline_dense, baseline_sparse, mime, pruned };

/// Returns the paper's name for a scheme ("Case-1", ...).
std::string scheme_name(Scheme scheme);

/// Options for one simulation run.
struct SimulationOptions {
    Scheme scheme = Scheme::mime;
    /// One entry per image in arrival order; the value indexes
    /// `profiles`. {0,0,0} is Singular task mode; {0,1,2} is Pipelined.
    std::vector<std::int64_t> batch{0, 0, 0};
    /// Per-task activation sparsity profiles (outputs per layer).
    std::vector<SparsityProfile> profiles;
    /// Layerwise weight sparsity exploited by the compute path
    /// (Scheme::pruned; 0 otherwise).
    double weight_sparsity = 0.0;
    /// Let the mapper pick the cheapest tile shape per layer; otherwise
    /// the largest-channel-block default is used.
    bool optimize_tiling = true;
    /// When false (default, the paper's assumption), the task-aware
    /// controller may reorder the batch window task-major, so each weight
    /// version streams from DRAM once per layer. When true, images are
    /// processed in arrival order and a version is reloaded at every task
    /// switch unless all needed versions fit the cache together — the
    /// lever behind the interleaving-granularity ablation
    /// (bench/ablation_interleaving).
    bool preserve_arrival_order = false;

    void validate(std::int64_t layer_count) const;
};

/// Per-layer simulation output.
struct LayerResult {
    std::string name;
    Tiling tiling;
    AccessCounts counts;
    EnergyBreakdown energy;
    double compute_cycles = 0.0;
    double memory_cycles = 0.0;
    /// max(compute, memory) — the layer's latency in PE cycles.
    double cycles = 0.0;
};

/// Whole-network simulation output.
struct SimulationResult {
    std::vector<LayerResult> layers;
    AccessCounts total_counts;
    EnergyBreakdown total_energy;
    double total_cycles = 0.0;

    const LayerResult& layer(const std::string& name) const;
};

/// Runs batches through layer stacks under a fixed hardware config.
class InferenceSimulator {
public:
    explicit InferenceSimulator(SystolicConfig config);

    const SystolicConfig& config() const noexcept { return config_; }

    /// Simulates one batch through `layers` (threshold-bearing layers of
    /// the network, classifier excluded as in the paper's figures).
    SimulationResult run(const std::vector<arch::LayerSpec>& layers,
                         const SimulationOptions& options) const;

private:
    LayerResult simulate_layer(const arch::LayerSpec& layer,
                               std::int64_t layer_index,
                               const SimulationOptions& options,
                               const Tiling& tiling) const;

    SystolicConfig config_;
};

/// Convenience: builds the canonical three-task batches of the paper.
SimulationOptions singular_options(Scheme scheme, PaperTask task,
                                   std::int64_t batch_size = 3);
SimulationOptions pipelined_options(Scheme scheme);

}  // namespace mime::hw
