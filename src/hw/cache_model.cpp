#include "hw/cache_model.h"

#include "common/check.h"

namespace mime::hw {

LruCache::LruCache(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {
    MIME_REQUIRE(capacity_bytes >= 0, "capacity must be non-negative");
}

bool LruCache::touch(std::uint64_t key, std::int64_t size_bytes) {
    MIME_REQUIRE(size_bytes > 0, "block size must be positive");
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Hit: move to front.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return true;
    }
    ++misses_;
    if (size_bytes > capacity_) {
        return false;  // cannot ever be resident
    }
    while (used_ + size_bytes > capacity_) {
        const Block& victim = lru_.back();
        used_ -= victim.size;
        index_.erase(victim.key);
        lru_.pop_back();
    }
    lru_.push_front(Block{key, size_bytes});
    index_[key] = lru_.begin();
    used_ += size_bytes;
    return false;
}

void LruCache::clear() {
    lru_.clear();
    index_.clear();
    used_ = 0;
}

double resident_fraction(std::int64_t bytes_needed,
                         std::int64_t capacity_bytes) {
    MIME_REQUIRE(bytes_needed >= 0 && capacity_bytes >= 0,
                 "sizes must be non-negative");
    if (bytes_needed == 0) {
        return 1.0;
    }
    if (bytes_needed <= capacity_bytes) {
        return 1.0;
    }
    return static_cast<double>(capacity_bytes) /
           static_cast<double>(bytes_needed);
}

}  // namespace mime::hw
