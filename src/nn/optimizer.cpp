#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace mime::nn {

Optimizer::Optimizer(std::vector<Parameter*> parameters)
    : parameters_(std::move(parameters)) {
    for (const Parameter* p : parameters_) {
        MIME_REQUIRE(p != nullptr, "optimizer received a null parameter");
    }
}

void Optimizer::zero_grad() {
    for (Parameter* p : parameters_) {
        p->zero_grad();
    }
}

Sgd::Sgd(std::vector<Parameter*> parameters, float learning_rate,
         float momentum, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
    MIME_REQUIRE(learning_rate > 0.0f, "learning rate must be positive");
    MIME_REQUIRE(momentum >= 0.0f && momentum < 1.0f,
                 "momentum must be in [0, 1)");
}

void Sgd::step() {
    for (Parameter* p : parameters_) {
        if (!p->trainable) {
            continue;
        }
        Tensor& value = p->value;
        const Tensor& grad = p->grad;
        if (momentum_ > 0.0f) {
            auto [it, inserted] =
                velocity_.try_emplace(p, Tensor(value.shape()));
            Tensor& v = it->second;
            for (std::int64_t i = 0; i < value.numel(); ++i) {
                const float g =
                    grad[i] + weight_decay_ * value[i];
                v[i] = momentum_ * v[i] + g;
                value[i] -= learning_rate_ * v[i];
            }
        } else {
            for (std::int64_t i = 0; i < value.numel(); ++i) {
                const float g = grad[i] + weight_decay_ * value[i];
                value[i] -= learning_rate_ * g;
            }
        }
    }
}

Adam::Adam(std::vector<Parameter*> parameters, float learning_rate,
           float beta1, float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
    MIME_REQUIRE(learning_rate > 0.0f, "learning rate must be positive");
    MIME_REQUIRE(beta1 >= 0.0f && beta1 < 1.0f, "beta1 must be in [0, 1)");
    MIME_REQUIRE(beta2 >= 0.0f && beta2 < 1.0f, "beta2 must be in [0, 1)");
    MIME_REQUIRE(epsilon > 0.0f, "epsilon must be positive");
}

void Adam::step() {
    ++step_count_;
    const double bias1 =
        1.0 - std::pow(static_cast<double>(beta1_), step_count_);
    const double bias2 =
        1.0 - std::pow(static_cast<double>(beta2_), step_count_);

    for (Parameter* p : parameters_) {
        if (!p->trainable) {
            continue;
        }
        Tensor& value = p->value;
        const Tensor& grad = p->grad;
        auto [mit, m_ins] = first_moment_.try_emplace(p, Tensor(value.shape()));
        auto [vit, v_ins] =
            second_moment_.try_emplace(p, Tensor(value.shape()));
        Tensor& m = mit->second;
        Tensor& v = vit->second;

        for (std::int64_t i = 0; i < value.numel(); ++i) {
            const float g = grad[i] + weight_decay_ * value[i];
            m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
            v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
            const double m_hat = m[i] / bias1;
            const double v_hat = v[i] / bias2;
            value[i] -= static_cast<float>(
                learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_));
        }
    }
}

}  // namespace mime::nn
