// Learning-rate schedules.
//
// The paper trains thresholds with a flat Adam lr of 1e-3; schedules are
// provided for the longer backbone/fine-tuning runs where step decay or
// cosine annealing measurably improves the mini-scale baselines.
#pragma once

#include <cstdint>
#include <functional>

namespace mime::nn {

/// Maps (epoch index from 0, base lr) -> lr for that epoch.
using LrSchedule = std::function<float(std::int64_t, float)>;

/// Always the base learning rate.
LrSchedule constant_lr();

/// Multiplies the lr by `gamma` every `step_epochs` epochs.
LrSchedule step_decay(std::int64_t step_epochs, float gamma);

/// Cosine annealing from base lr to `min_lr` over `total_epochs`.
LrSchedule cosine_annealing(std::int64_t total_epochs, float min_lr = 0.0f);

/// Linear warmup over `warmup_epochs` then the inner schedule.
LrSchedule with_warmup(std::int64_t warmup_epochs, LrSchedule inner);

}  // namespace mime::nn
