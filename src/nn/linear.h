// Fully-connected layer.
#pragma once

#include <optional>

#include "nn/module.h"
#include "nn/quantize.h"
#include "nn/sparse.h"
#include "tensor/workspace.h"

namespace mime::nn {

/// y[N, out] = x[N, in] * W^T + b. Weight layout [out_features,
/// in_features] (row per output neuron, matching Conv2d's channel-major
/// convention).
class Linear : public Module {
public:
    /// He-normal weight init (fan-in), zero bias.
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
           bool bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Linear"; }
    std::vector<Parameter*> parameters() override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: writes into the caller-preallocated
    /// `output` ([N, out_features]); no heap allocation, no backward
    /// caching. Bit-identical to forward().
    ///
    /// `live_features`, when given, lists the input features that can be
    /// nonzero (the rest were provably zeroed by an upstream threshold
    /// mask); if its density is at or below the cutoff the layer runs
    /// the row-compacted GEMM over just those features — bit-identical
    /// to the dense product because the skipped features contribute
    /// exact zeros. Returns whether the compacted path ran (false means
    /// dense fallback: null/all-live view or density above cutoff).
    bool forward_into(const Tensor& input, Tensor& output,
                      const ActiveIndexView* live_features = nullptr);

    /// Int8 planned forward: quantizes the activations ([N, in], one
    /// dynamic scale per sample row) into workspace scratch, contracts them
    /// against `qweight` — the weight matrix quantized and then
    /// *transposed* to [in, out] (see transpose_quantized; scales stay
    /// per output channel) — with the int8 kernel into int32, and
    /// dequantizes + bias into the float `output`. Same live-feature
    /// compaction and return semantics as forward_into.
    bool forward_into_quantized(const Tensor& input, Workspace& workspace,
                                Tensor& output,
                                const nn::QuantizedTensor& qweight,
                                const ActiveIndexView* live_features =
                                    nullptr);

    /// Workspace bytes forward_into_quantized() allocates for one
    /// forward at this batch size (alignment-rounded): the int8
    /// activation slab plus the int32 accumulator tile.
    std::size_t quantized_workspace_bytes(std::int64_t batch) const;

    /// Density above which forward_into ignores `live_features` and
    /// runs dense (compaction bookkeeping beats the win near 1.0).
    void set_sparse_density_cutoff(double cutoff) noexcept {
        sparse_density_cutoff_ = cutoff;
    }
    double sparse_density_cutoff() const noexcept {
        return sparse_density_cutoff_;
    }

    Parameter& weight() noexcept { return weight_; }
    Parameter& bias() { return bias_.value(); }
    bool has_bias() const noexcept { return bias_.has_value(); }

    std::int64_t in_features() const noexcept { return in_features_; }
    std::int64_t out_features() const noexcept { return out_features_; }

private:
    bool forward_compute(const Tensor& input, Tensor& output,
                         const ActiveIndexView* live_features);

    std::int64_t in_features_;
    std::int64_t out_features_;
    Parameter weight_;
    std::optional<Parameter> bias_;
    Tensor cached_input_;
    double sparse_density_cutoff_ = kDefaultSparseDensityCutoff;
};

}  // namespace mime::nn
