#include "nn/batchnorm.h"

#include <cmath>

#include "common/check.h"

namespace mime::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", Tensor::ones({channels})),
      beta_("beta", Tensor::zeros({channels})),
      running_mean_("running_mean", Tensor::zeros({channels})),
      running_var_("running_var", Tensor::ones({channels})) {
    running_mean_.trainable = false;
    running_var_.trainable = false;
    MIME_REQUIRE(channels > 0, "BatchNorm2d channels must be positive");
    MIME_REQUIRE(momentum > 0.0f && momentum <= 1.0f,
                 "BatchNorm2d momentum must be in (0, 1]");
}

void BatchNorm2d::forward_into(const Tensor& input, Tensor& output) {
    MIME_REQUIRE(input.shape().rank() == 4 &&
                     input.shape().dim(1) == channels_,
                 "BatchNorm2d expects [N, " + std::to_string(channels_) +
                     ", H, W], got " + input.shape().to_string());
    MIME_REQUIRE(output.shape() == input.shape(),
                 "BatchNorm2d::forward_into output shape mismatch: " +
                     output.shape().to_string());
    // Eval mode alone is enough: it declares inference-only execution,
    // which implies the frozen running-statistics path regardless of
    // the training flag (matching every other layer's eval behavior).
    MIME_REQUIRE(!training() || eval_mode(),
                 "BatchNorm2d::forward_into runs on frozen running "
                 "statistics; set_training(false) or set_eval_mode(true) "
                 "first");
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t plane = input.shape().dim(2) * input.shape().dim(3);
    for (std::int64_t c = 0; c < channels_; ++c) {
        const float mean_value = running_mean_.value[c];
        const float inv_std =
            1.0f / std::sqrt(running_var_.value[c] + epsilon_);
        const float g = gamma_.value[c];
        const float b = beta_.value[c];
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* p = input.data() + (n * channels_ + c) * plane;
            float* o = output.data() + (n * channels_ + c) * plane;
            for (std::int64_t s = 0; s < plane; ++s) {
                // Same intermediate rounding as forward()'s cached
                // `norm[s]`, so planned and legacy outputs bit-match.
                const float norm = (p[s] - mean_value) * inv_std;
                o[s] = g * norm + b;
            }
        }
    }
}

void BatchNorm2d::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_input_ = Tensor();
        cached_normalized_ = Tensor();
        cached_inv_std_ = Tensor();
        cached_mean_ = Tensor();
    }
}

std::int64_t BatchNorm2d::cached_state_bytes() const {
    return cached_tensor_bytes(cached_input_) +
           cached_tensor_bytes(cached_normalized_) +
           cached_tensor_bytes(cached_inv_std_) +
           cached_tensor_bytes(cached_mean_);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
    MIME_REQUIRE(input.shape().rank() == 4 &&
                     input.shape().dim(1) == channels_,
                 "BatchNorm2d expects [N, " + std::to_string(channels_) +
                     ", H, W], got " + input.shape().to_string());
    if (eval_mode()) {
        // Inference-only: no batch statistics, no backward caches.
        Tensor output(input.shape());
        forward_into(input, output);
        return output;
    }
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t h = input.shape().dim(2);
    const std::int64_t w = input.shape().dim(3);
    const std::int64_t plane = h * w;
    const std::int64_t per_channel = batch * plane;

    cached_input_ = input;
    cached_mean_ = Tensor({channels_});
    cached_inv_std_ = Tensor({channels_});
    Tensor output(input.shape());
    cached_normalized_ = Tensor(input.shape());

    for (std::int64_t c = 0; c < channels_; ++c) {
        double mean_acc = 0.0;
        double var_acc = 0.0;
        float mean_value;
        float var_value;
        if (training()) {
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* p = input.data() + (n * channels_ + c) * plane;
                for (std::int64_t s = 0; s < plane; ++s) {
                    mean_acc += p[s];
                }
            }
            mean_value =
                static_cast<float>(mean_acc / static_cast<double>(per_channel));
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* p = input.data() + (n * channels_ + c) * plane;
                for (std::int64_t s = 0; s < plane; ++s) {
                    const double d = p[s] - mean_value;
                    var_acc += d * d;
                }
            }
            var_value =
                static_cast<float>(var_acc / static_cast<double>(per_channel));
            running_mean_.value[c] = (1.0f - momentum_) * running_mean_.value[c] +
                               momentum_ * mean_value;
            running_var_.value[c] =
                (1.0f - momentum_) * running_var_.value[c] + momentum_ * var_value;
        } else {
            mean_value = running_mean_.value[c];
            var_value = running_var_.value[c];
        }

        const float inv_std = 1.0f / std::sqrt(var_value + epsilon_);
        cached_mean_[c] = mean_value;
        cached_inv_std_[c] = inv_std;
        const float g = gamma_.value[c];
        const float b = beta_.value[c];
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* p = input.data() + (n * channels_ + c) * plane;
            float* norm =
                cached_normalized_.data() + (n * channels_ + c) * plane;
            float* o = output.data() + (n * channels_ + c) * plane;
            for (std::int64_t s = 0; s < plane; ++s) {
                norm[s] = (p[s] - mean_value) * inv_std;
                o[s] = g * norm[s] + b;
            }
        }
    }
    return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
    MIME_REQUIRE(grad_output.shape() == cached_input_.shape(),
                 "BatchNorm2d::backward grad shape mismatch");
    const std::int64_t batch = cached_input_.shape().dim(0);
    const std::int64_t plane =
        cached_input_.shape().dim(2) * cached_input_.shape().dim(3);
    const auto m = static_cast<double>(batch * plane);

    Tensor grad_input(cached_input_.shape());
    for (std::int64_t c = 0; c < channels_; ++c) {
        double sum_gout = 0.0;
        double sum_gout_norm = 0.0;
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* go = grad_output.data() + (n * channels_ + c) * plane;
            const float* norm =
                cached_normalized_.data() + (n * channels_ + c) * plane;
            for (std::int64_t s = 0; s < plane; ++s) {
                sum_gout += go[s];
                sum_gout_norm += static_cast<double>(go[s]) * norm[s];
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_gout_norm);
        beta_.grad[c] += static_cast<float>(sum_gout);

        const float g = gamma_.value[c];
        const float inv_std = cached_inv_std_[c];
        if (training()) {
            // Full batch-statistics adjoint.
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* go =
                    grad_output.data() + (n * channels_ + c) * plane;
                const float* norm =
                    cached_normalized_.data() + (n * channels_ + c) * plane;
                float* gi = grad_input.data() + (n * channels_ + c) * plane;
                for (std::int64_t s = 0; s < plane; ++s) {
                    const double term = static_cast<double>(go[s]) -
                                        sum_gout / m -
                                        norm[s] * sum_gout_norm / m;
                    gi[s] = static_cast<float>(g * inv_std * term);
                }
            }
        } else {
            // Running statistics are constants in inference mode.
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* go =
                    grad_output.data() + (n * channels_ + c) * plane;
                float* gi = grad_input.data() + (n * channels_ + c) * plane;
                for (std::int64_t s = 0; s < plane; ++s) {
                    gi[s] = g * inv_std * go[s];
                }
            }
        }
    }
    return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() {
    return {&gamma_, &beta_};
}

std::vector<Parameter*> BatchNorm2d::buffers() {
    return {&running_mean_, &running_var_};
}

}  // namespace mime::nn
