// Fixed-point (fake) quantization.
//
// The paper's accelerator stores W, X, A and T at 16-bit precision
// (Table IV); training here runs in float32. These utilities quantize
// tensors to b-bit signed fixed point (symmetric, per-tensor scale) and
// back, so tests and benches can verify that 16-bit deployment precision
// does not change model behavior — validating the Table IV assumption
// for our trained models.
#pragma once

#include <cstdint>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace mime::nn {

/// Result of quantizing one tensor.
struct QuantizationStats {
    double scale = 0.0;          ///< LSB step size
    double max_abs_error = 0.0;  ///< max |x - q(x)|
    double mean_abs_error = 0.0;
    std::int64_t saturated = 0;  ///< values clipped at the integer range
};

/// Quantizes `t` in place to `bits`-bit signed symmetric fixed point
/// (scale = max|x| / (2^(bits-1) - 1)) and dequantizes back. A zero
/// tensor is left unchanged (scale 0).
QuantizationStats fake_quantize(Tensor& t, int bits);

/// Applies fake_quantize to every parameter of `module`; returns the
/// worst per-parameter max_abs_error.
double fake_quantize_parameters(Module& module, int bits);

/// Relative L2 error between the original and quantized copies of `t`
/// at the given precision (non-destructive helper for sweeps).
double quantization_relative_error(const Tensor& t, int bits);

}  // namespace mime::nn
