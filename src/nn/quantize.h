// Fixed-point quantization: fake (validation) and real (execution).
//
// The paper's accelerator stores W, X, A and T at reduced fixed-point
// precision (Table IV); training here runs in float32. Two families
// live here:
//
//   * fake_quantize* round-trips a float tensor through b-bit signed
//     fixed point in place, so tests and benches can verify that the
//     deployment precision does not change model behavior — validating
//     the Table IV assumption for our trained models. Per-tensor and
//     per-output-channel scale variants.
//
//   * The real path the quantized planned executor runs on:
//     quantize_weights_per_channel materializes an int8 weight matrix
//     with one symmetric scale per output channel (row), and
//     quantize_activations writes dynamically scaled int8 activations
//     into caller scratch (the executor applies it per sample, one
//     scale per image/row). real = q * scale throughout
//     (symmetric, zero-point-free), so dequantization after the int32
//     GEMM is one multiply per output element.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace mime::nn {

/// Result of quantizing one tensor.
struct QuantizationStats {
    double scale = 0.0;          ///< LSB step size (largest, if per-channel)
    double max_abs_error = 0.0;  ///< max |x - q(x)|
    double mean_abs_error = 0.0;
    std::int64_t saturated = 0;  ///< values clipped at the integer range
    /// Worst per-channel relative error: max over channels of
    /// (channel max |x - q(x)|) / (channel max |x|). The per-tensor
    /// variant reports its single global ratio here.
    double max_channel_rel_error = 0.0;
};

/// Quantizes `t` in place to `bits`-bit signed symmetric fixed point
/// (scale = max|x| / (2^(bits-1) - 1)) and dequantizes back. A zero
/// tensor is left unchanged (scale 0).
QuantizationStats fake_quantize(Tensor& t, int bits);

/// Per-output-channel variant: `t` must have rank >= 2; each slice along
/// dim 0 (the output channel, for conv and linear weight layouts) gets
/// its own symmetric scale. Strictly no worse per channel than the
/// per-tensor scale. Zero channels are left unchanged.
QuantizationStats fake_quantize_per_channel(Tensor& t, int bits);

/// Applies fake_quantize to every parameter of `module`; returns the
/// worst per-parameter max_abs_error.
double fake_quantize_parameters(Module& module, int bits);

/// Relative L2 error between the original and quantized copies of `t`
/// at the given precision (non-destructive helper for sweeps).
double quantization_relative_error(const Tensor& t, int bits);

// ---------------------------------------------------------------------------
// Real int8 path (quantized planned executor)
// ---------------------------------------------------------------------------

/// An int8 weight matrix with per-output-channel symmetric scales:
/// real[r, c] ~= data[r * cols + c] * scales[r]. Built once per
/// ForwardPlan from the float master weights (which stay untouched).
struct QuantizedTensor {
    std::vector<std::int8_t> data;  ///< row-major [rows, cols]
    std::vector<float> scales;      ///< one per row (output channel)
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    /// Worst per-channel relative quantization error (metrics surface).
    double max_rel_error = 0.0;

    bool empty() const noexcept { return rows == 0; }
};

/// Quantizes a weight tensor (rank >= 2; dim 0 = output channel, the
/// remaining dims flatten into columns) to int8 [-127, 127] with one
/// symmetric scale per output channel (row absmax / 127). All-zero
/// channels get scale 0 and all-zero data, dequantizing to exactly 0.
QuantizedTensor quantize_weights_per_channel(const Tensor& weight);

/// Returns `q` with its data transposed (row-major [cols, rows]).
/// `scales` are copied unchanged — they stay indexed by the original
/// row (= the transposed matrix's column), i.e. still per output
/// channel. Linear layers store their plan snapshot this way so the
/// int8 GEMM runs activations-major ([batch, in] x [in, out]) with the
/// 16-wide column tiles on out_features instead of the batch.
QuantizedTensor transpose_quantized(const QuantizedTensor& q);

/// Quantizes `count` activations into int8 [-127, 127] with one dynamic
/// symmetric scale (absmax / 127, computed over this call's data).
/// Returns the scale; an all-zero input
/// returns scale 0 with all-zero output. Deterministic: same input
/// bytes give the same output bytes regardless of threading (callers
/// quantize on the dispatch thread before any banding).
float quantize_activations(const float* x, std::int64_t count,
                           std::int8_t* out);

/// The two phases of quantize_activations, split so the conv path can
/// compute the batch scale once on the dispatch thread and then let
/// each band worker quantize its own (disjoint) sample slice — the
/// scale is fixed before any banding, so thread count never changes
/// the produced bytes.
float activation_absmax(const float* x, std::int64_t count);
/// Writes round-to-nearest int8 of x * inv_scale (inv_scale = 127 /
/// absmax, or 0 for an all-zero tensor, which zero-fills).
void quantize_with_scale(const float* x, std::int64_t count, float inv_scale,
                         std::int8_t* out);

/// out[i] = float(acc[i]) * scale + add — the dequantize epilogue that
/// turns one output channel's int32 accumulator row back into floats
/// (scale = weight-channel scale * activation scale, add = bias).
/// Lives here so it compiles in the SIMD-flagged translation unit.
void dequantize_affine(const std::int32_t* acc, std::int64_t count,
                       float scale, float add, float* out);

}  // namespace mime::nn
