#include "nn/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime::nn {

ConfusionMatrix::ConfusionMatrix(std::int64_t classes)
    : classes_(classes),
      counts_(static_cast<std::size_t>(classes * classes), 0) {
    MIME_REQUIRE(classes > 0, "confusion matrix needs classes");
}

void ConfusionMatrix::add(std::int64_t true_label,
                          std::int64_t predicted_label) {
    MIME_REQUIRE(true_label >= 0 && true_label < classes_,
                 "true label out of range");
    MIME_REQUIRE(predicted_label >= 0 && predicted_label < classes_,
                 "predicted label out of range");
    ++counts_[static_cast<std::size_t>(true_label * classes_ +
                                       predicted_label)];
    ++total_;
}

void ConfusionMatrix::add_batch(const Tensor& logits,
                                const std::vector<std::int64_t>& labels) {
    MIME_REQUIRE(logits.shape().rank() == 2 &&
                     logits.shape().dim(1) >= classes_,
                 "logits shape incompatible with confusion matrix");
    MIME_REQUIRE(static_cast<std::int64_t>(labels.size()) ==
                     logits.shape().dim(0),
                 "label count mismatch");
    const std::int64_t cols = logits.shape().dim(1);
    for (std::int64_t n = 0; n < logits.shape().dim(0); ++n) {
        const float* row = logits.data() + n * cols;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes_; ++c) {
            if (row[c] > row[best]) {
                best = c;
            }
        }
        add(labels[static_cast<std::size_t>(n)], best);
    }
}

std::int64_t ConfusionMatrix::count(std::int64_t true_label,
                                    std::int64_t predicted_label) const {
    MIME_REQUIRE(true_label >= 0 && true_label < classes_ &&
                     predicted_label >= 0 && predicted_label < classes_,
                 "label out of range");
    return counts_[static_cast<std::size_t>(true_label * classes_ +
                                            predicted_label)];
}

double ConfusionMatrix::accuracy() const {
    MIME_REQUIRE(total_ > 0, "empty confusion matrix");
    std::int64_t diagonal = 0;
    for (std::int64_t c = 0; c < classes_; ++c) {
        diagonal += count(c, c);
    }
    return static_cast<double>(diagonal) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::recall() const {
    std::vector<double> result(static_cast<std::size_t>(classes_), 0.0);
    for (std::int64_t c = 0; c < classes_; ++c) {
        std::int64_t row_sum = 0;
        for (std::int64_t p = 0; p < classes_; ++p) {
            row_sum += count(c, p);
        }
        if (row_sum > 0) {
            result[static_cast<std::size_t>(c)] =
                static_cast<double>(count(c, c)) /
                static_cast<double>(row_sum);
        }
    }
    return result;
}

std::vector<double> ConfusionMatrix::precision() const {
    std::vector<double> result(static_cast<std::size_t>(classes_), 0.0);
    for (std::int64_t p = 0; p < classes_; ++p) {
        std::int64_t col_sum = 0;
        for (std::int64_t c = 0; c < classes_; ++c) {
            col_sum += count(c, p);
        }
        if (col_sum > 0) {
            result[static_cast<std::size_t>(p)] =
                static_cast<double>(count(p, p)) /
                static_cast<double>(col_sum);
        }
    }
    return result;
}

double ConfusionMatrix::macro_f1() const {
    const auto r = recall();
    const auto p = precision();
    double acc = 0.0;
    for (std::int64_t c = 0; c < classes_; ++c) {
        const double denom = r[static_cast<std::size_t>(c)] +
                             p[static_cast<std::size_t>(c)];
        if (denom > 0.0) {
            acc += 2.0 * r[static_cast<std::size_t>(c)] *
                   p[static_cast<std::size_t>(c)] / denom;
        }
    }
    return acc / static_cast<double>(classes_);
}

std::string ConfusionMatrix::to_string() const {
    std::string out = "true\\pred";
    for (std::int64_t p = 0; p < classes_; ++p) {
        out += '\t';
        out += std::to_string(p);
    }
    out += '\n';
    for (std::int64_t c = 0; c < classes_; ++c) {
        out += std::to_string(c);
        for (std::int64_t p = 0; p < classes_; ++p) {
            out += '\t';
            out += std::to_string(count(c, p));
        }
        out += '\n';
    }
    return out;
}

double top_k_accuracy(const Tensor& logits,
                      const std::vector<std::int64_t>& labels,
                      std::int64_t k) {
    MIME_REQUIRE(logits.shape().rank() == 2, "logits must be [N, classes]");
    MIME_REQUIRE(k > 0 && k <= logits.shape().dim(1),
                 "k out of range for logit width");
    const std::int64_t batch = logits.shape().dim(0);
    MIME_REQUIRE(static_cast<std::int64_t>(labels.size()) == batch,
                 "label count mismatch");
    const std::int64_t cols = logits.shape().dim(1);

    std::int64_t hits = 0;
    std::vector<std::int64_t> order(static_cast<std::size_t>(cols));
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* row = logits.data() + n * cols;
        for (std::int64_t c = 0; c < cols; ++c) {
            order[static_cast<std::size_t>(c)] = c;
        }
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [row](std::int64_t a, std::int64_t b) {
                              return row[a] > row[b];
                          });
        for (std::int64_t i = 0; i < k; ++i) {
            if (order[static_cast<std::size_t>(i)] ==
                labels[static_cast<std::size_t>(n)]) {
                ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) / static_cast<double>(batch);
}

}  // namespace mime::nn
