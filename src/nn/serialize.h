// Binary (de)serialization of module parameters.
//
// Format: magic "MIMEPAR2", u64 record count, then per record
// (parameters first, then buffers such as BatchNorm running stats):
// u64 name length, name bytes, u64 rank, u64 extents..., f32 data.
// Parameters are matched positionally with name verification so a loaded
// file must come from an identically-structured module.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.h"

namespace mime::nn {

/// Writes all parameters of `module` to `out`.
void save_parameters(Module& module, std::ostream& out);

/// Reads parameters into `module`; throws if structure or shapes differ.
void load_parameters(Module& module, std::istream& in);

/// Convenience file wrappers.
void save_parameters_file(Module& module, const std::string& path);
void load_parameters_file(Module& module, const std::string& path);

}  // namespace mime::nn
