#include "nn/pooling.h"

#include "common/check.h"

namespace mime::nn {

namespace {
struct PoolGeometry {
    std::int64_t batch, channels, in_h, in_w, out_h, out_w;
};

PoolGeometry pool_geometry(const Shape& shape, std::int64_t kernel,
                           std::int64_t stride, const char* who) {
    MIME_REQUIRE(shape.rank() == 4,
                 std::string(who) + " expects [N, C, H, W], got " +
                     shape.to_string());
    PoolGeometry g;
    g.batch = shape.dim(0);
    g.channels = shape.dim(1);
    g.in_h = shape.dim(2);
    g.in_w = shape.dim(3);
    MIME_REQUIRE(kernel <= g.in_h && kernel <= g.in_w,
                 std::string(who) + ": window larger than input");
    g.out_h = (g.in_h - kernel) / stride + 1;
    g.out_w = (g.in_w - kernel) / stride + 1;
    MIME_REQUIRE(g.out_h > 0 && g.out_w > 0,
                 std::string(who) + ": window larger than input");
    return g;
}

PoolGeometry pool_geometry(const Tensor& input, std::int64_t kernel,
                           std::int64_t stride, const char* who) {
    return pool_geometry(input.shape(), kernel, stride, who);
}

/// The one window-max loop nest shared by MaxPool2d::forward (argmax
/// recorded for backward) and forward_into (argmax null): legacy and
/// planned paths cannot diverge.
void max_pool_compute(const PoolGeometry& g, std::int64_t kernel,
                      std::int64_t stride, const Tensor& input,
                      Tensor& output, std::int64_t* argmax) {
    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
            const float* plane =
                input.data() + (n * g.channels + c) * g.in_h * g.in_w;
            const std::int64_t plane_base =
                (n * g.channels + c) * g.in_h * g.in_w;
            for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
                for (std::int64_t ox = 0; ox < g.out_w; ++ox, ++out_idx) {
                    const std::int64_t y0 = oy * stride;
                    const std::int64_t x0 = ox * stride;
                    float best = plane[y0 * g.in_w + x0];
                    std::int64_t best_idx = y0 * g.in_w + x0;
                    for (std::int64_t ky = 0; ky < kernel; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            const std::int64_t idx =
                                (y0 + ky) * g.in_w + (x0 + kx);
                            if (plane[idx] > best) {
                                best = plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    output[out_idx] = best;
                    if (argmax != nullptr) {
                        argmax[out_idx] = plane_base + best_idx;
                    }
                }
            }
        }
    }
}
}  // namespace

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
    MIME_REQUIRE(kernel > 0 && stride > 0,
                 "MaxPool2d kernel/stride must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input) {
    const PoolGeometry g = pool_geometry(input, kernel_, stride_, "MaxPool2d");
    cached_input_shape_ = input.shape();
    Tensor output({g.batch, g.channels, g.out_h, g.out_w});
    std::int64_t* argmax = nullptr;
    if (!eval_mode()) {
        cached_argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
        argmax = cached_argmax_.data();
    }
    max_pool_compute(g, kernel_, stride_, input, output, argmax);
    return output;
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
    const PoolGeometry g =
        pool_geometry(input_shape, kernel_, stride_, "MaxPool2d");
    return Shape({g.batch, g.channels, g.out_h, g.out_w});
}

void MaxPool2d::forward_into(const Tensor& input, Tensor& output) {
    const PoolGeometry g = pool_geometry(input, kernel_, stride_, "MaxPool2d");
    MIME_REQUIRE(eval_mode(),
                 "MaxPool2d::forward_into is inference-only; set_eval_mode "
                 "first");
    MIME_REQUIRE(output.shape() ==
                     Shape({g.batch, g.channels, g.out_h, g.out_w}),
                 "MaxPool2d::forward_into output shape mismatch: " +
                     output.shape().to_string());
    max_pool_compute(g, kernel_, stride_, input, output, /*argmax=*/nullptr);
}

void MaxPool2d::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_argmax_.clear();
        cached_argmax_.shrink_to_fit();
    }
}

std::int64_t MaxPool2d::cached_state_bytes() const {
    return static_cast<std::int64_t>(cached_argmax_.size() *
                                     sizeof(std::int64_t));
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    MIME_REQUIRE(
        static_cast<std::size_t>(grad_output.numel()) == cached_argmax_.size(),
        "MaxPool2d::backward grad size mismatch");
    Tensor grad_input(cached_input_shape_);
    for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
        grad_input[cached_argmax_[static_cast<std::size_t>(i)]] +=
            grad_output[i];
    }
    return grad_input;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
    MIME_REQUIRE(kernel > 0 && stride > 0,
                 "AvgPool2d kernel/stride must be positive");
}

Tensor AvgPool2d::forward(const Tensor& input) {
    const PoolGeometry g = pool_geometry(input, kernel_, stride_, "AvgPool2d");
    cached_input_shape_ = input.shape();
    Tensor output({g.batch, g.channels, g.out_h, g.out_w});
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t c = 0; c < g.channels; ++c) {
            const float* plane =
                input.data() + (n * g.channels + c) * g.in_h * g.in_w;
            for (std::int64_t oy = 0; oy < g.out_h; ++oy) {
                for (std::int64_t ox = 0; ox < g.out_w; ++ox, ++out_idx) {
                    double acc = 0.0;
                    for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                            acc += plane[(oy * stride_ + ky) * g.in_w +
                                         (ox * stride_ + kx)];
                        }
                    }
                    output[out_idx] = static_cast<float>(acc) * inv;
                }
            }
        }
    }
    return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
    const std::int64_t batch = cached_input_shape_.dim(0);
    const std::int64_t channels = cached_input_shape_.dim(1);
    const std::int64_t in_h = cached_input_shape_.dim(2);
    const std::int64_t in_w = cached_input_shape_.dim(3);
    const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
    const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
    MIME_REQUIRE(grad_output.shape() == Shape({batch, channels, out_h, out_w}),
                 "AvgPool2d::backward grad shape mismatch");

    Tensor grad_input(cached_input_shape_);
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            float* plane = grad_input.data() + (n * channels + c) * in_h * in_w;
            for (std::int64_t oy = 0; oy < out_h; ++oy) {
                for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
                    const float share = grad_output[out_idx] * inv;
                    for (std::int64_t ky = 0; ky < kernel_; ++ky) {
                        for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                            plane[(oy * stride_ + ky) * in_w +
                                  (ox * stride_ + kx)] += share;
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

}  // namespace mime::nn
