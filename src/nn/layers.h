// Stateless / lightweight layers: ReLU, Flatten, Dropout, Identity.
#pragma once

#include "nn/module.h"

namespace mime::nn {

/// Elementwise max(x, 0). The baseline activation whose induced zero
/// fraction is the "sparsity due to ReLU" of the paper's Table III.
class ReLU : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "ReLU"; }
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: rectifies `activations` in place in one
    /// pass (no output tensor, no mask), counting zeros for
    /// last_sparsity(). Bit-identical to forward().
    void forward_eval_inplace(Tensor& activations);

    /// Zero fraction of the most recent forward output (layerwise
    /// neuronal sparsity of the batch).
    double last_sparsity() const noexcept { return last_sparsity_; }

private:
    Tensor cached_mask_;  ///< 1 where input > 0
    double last_sparsity_ = 0.0;
};

/// Collapses [N, ...] to [N, features].
class Flatten : public Module {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Flatten"; }

private:
    Shape cached_input_shape_;
};

/// Inverted dropout; active only in training mode.
class Dropout : public Module {
public:
    Dropout(double drop_probability, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Dropout"; }
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    double drop_probability() const noexcept { return drop_probability_; }

private:
    double drop_probability_;
    Rng rng_;
    Tensor cached_scale_;  ///< 0 or 1/(1-p) per element
};

/// Pass-through; useful as a placeholder when composing variants.
class Identity : public Module {
public:
    Tensor forward(const Tensor& input) override { return input; }
    Tensor backward(const Tensor& grad_output) override { return grad_output; }
    std::string kind() const override { return "Identity"; }
};

}  // namespace mime::nn
