#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"

namespace mime::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
    MIME_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
                 "Conv2d extents must be positive");
    MIME_REQUIRE(stride > 0 && padding >= 0, "Conv2d stride/padding invalid");
    const std::int64_t fan_in = in_channels * kernel * kernel;
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    weight_ = Parameter(
        "weight",
        Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, 0.0f,
                      stddev));
    if (bias) {
        bias_.emplace("bias", Tensor::zeros({out_channels}));
    }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
    MIME_REQUIRE(input.shape().rank() == 4,
                 "Conv2d expects [N, C, H, W], got " +
                     input.shape().to_string());
    MIME_REQUIRE(input.shape().dim(1) == in_channels_,
                 "Conv2d channel mismatch: layer expects " +
                     std::to_string(in_channels_) + ", input has " +
                     std::to_string(input.shape().dim(1)));
    return geometry(input.shape().dim(2), input.shape().dim(3));
}

Tensor Conv2d::forward(const Tensor& input) {
    const ConvGeometry g = geometry_for(input);
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();

    if (!eval_mode()) {
        cached_input_ = input;
    }
    Tensor output({batch, out_channels_, ho, wo});

    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    auto run_sample = [&](std::int64_t n, std::vector<float>& cols,
                          ThreadPool* gemm_pool) {
        im2col(g, input.data() + n * in_stride, cols.data());
        float* out = output.data() + n * out_stride;
        gemm(false, false, out_channels_, spatial, ckk, 1.0f,
             weight_.value.data(), ckk, cols.data(), spatial, 0.0f, out,
             spatial, gemm_pool);
        if (bias_) {
            const float* b = bias_->value.data();
            for (std::int64_t c = 0; c < out_channels_; ++c) {
                float* row = out + c * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    row[s] += b[c];
                }
            }
        }
    };

    if (pool_ != nullptr && batch > 1) {
        // Parallelize across samples; each sample's GEMM stays
        // single-threaded to avoid nested pool usage.
        parallel_for(
            *pool_, static_cast<std::size_t>(batch),
            [&](std::size_t begin, std::size_t end) {
                std::vector<float> cols(
                    static_cast<std::size_t>(ckk * spatial));
                for (std::size_t n = begin; n < end; ++n) {
                    run_sample(static_cast<std::int64_t>(n), cols, nullptr);
                }
            },
            /*min_chunk=*/1);
    } else {
        std::vector<float> cols(static_cast<std::size_t>(ckk * spatial));
        for (std::int64_t n = 0; n < batch; ++n) {
            run_sample(n, cols, pool_);
        }
    }
    return output;
}

void Conv2d::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_input_ = Tensor();
    }
}

std::int64_t Conv2d::cached_state_bytes() const {
    return cached_tensor_bytes(cached_input_);
}

ConvGeometry Conv2d::geometry(std::int64_t in_height,
                              std::int64_t in_width) const {
    ConvGeometry g;
    g.in_channels = in_channels_;
    g.in_height = in_height;
    g.in_width = in_width;
    g.kernel = kernel_;
    g.stride = stride_;
    g.padding = padding_;
    g.validate();
    return g;
}

std::int64_t Conv2d::conv_bands(std::int64_t batch) const {
    if (pool_ == nullptr || batch <= 1) {
        return 1;
    }
    return std::min<std::int64_t>(
        static_cast<std::int64_t>(pool_->size()), batch);
}

std::int64_t Conv2d::workspace_floats(std::int64_t in_height,
                                      std::int64_t in_width,
                                      std::int64_t batch) const {
    const ConvGeometry g = geometry(in_height, in_width);
    return conv_bands(batch) *
           static_cast<std::int64_t>(
               Workspace::aligned_floats(g.col_rows() * g.col_cols()));
}

bool Conv2d::forward_into(const Tensor& input, Workspace& workspace,
                          Tensor& output,
                          const ActiveIndexView* live_in_channels) {
    const ConvGeometry g = geometry_for(input);
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();
    MIME_REQUIRE(eval_mode(),
                 "Conv2d::forward_into is inference-only; set_eval_mode "
                 "first");
    MIME_REQUIRE(output.shape() == Shape({batch, out_channels_, ho, wo}),
                 "Conv2d::forward_into output must be preallocated to " +
                     Shape({batch, out_channels_, ho, wo}).to_string() +
                     ", got " + output.shape().to_string());

    const bool sparse = live_in_channels != nullptr &&
                        live_in_channels->indices != nullptr &&
                        !live_in_channels->all_live() &&
                        live_in_channels->density() <= sparse_density_cutoff_;
    const std::int64_t* rows = nullptr;
    std::int64_t row_count = ckk;
    if (sparse) {
        MIME_REQUIRE(live_in_channels->total == in_channels_,
                     "Conv2d live-channel view covers " +
                         std::to_string(live_in_channels->total) +
                         " channels, layer has " +
                         std::to_string(in_channels_));
        // Expand live channels to the K*K GEMM rows each one owns in
        // the column matrix; ascending channels give ascending rows.
        live_rows_.clear();
        const std::int64_t kk = kernel_ * kernel_;
        for (std::int64_t i = 0; i < live_in_channels->count; ++i) {
            const std::int64_t base = live_in_channels->indices[i] * kk;
            for (std::int64_t t = 0; t < kk; ++t) {
                live_rows_.push_back(base + t);
            }
        }
        rows = live_rows_.data();
        row_count = static_cast<std::int64_t>(live_rows_.size());
    }

    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    auto run_sample = [&](std::int64_t n, float* cols,
                          ThreadPool* gemm_pool) {
        float* out = output.data() + n * out_stride;
        if (sparse) {
            // Lower only the live channels; the dead channels' rows of
            // `cols` keep stale garbage the compacted GEMM never reads.
            im2col(g, input.data() + n * in_stride, cols,
                   live_in_channels->indices, live_in_channels->count);
            gemm_rows(false, false, out_channels_, spatial, ckk, rows,
                      row_count, 1.0f, weight_.value.data(), ckk, cols,
                      spatial, 0.0f, out, spatial, gemm_pool);
        } else {
            im2col(g, input.data() + n * in_stride, cols);
            gemm(false, false, out_channels_, spatial, ckk, 1.0f,
                 weight_.value.data(), ckk, cols, spatial, 0.0f, out,
                 spatial, gemm_pool);
        }
        if (bias_) {
            const float* b = bias_->value.data();
            for (std::int64_t c = 0; c < out_channels_; ++c) {
                float* row = out + c * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    row[s] += b[c];
                }
            }
        }
    };

    const Workspace::Checkpoint mark = workspace.checkpoint();
    const std::int64_t bands = conv_bands(batch);
    const std::int64_t band_stride =
        static_cast<std::int64_t>(Workspace::aligned_floats(ckk * spatial));
    // One carve for all bands, on this thread — Workspace is not
    // thread-safe, so workers must never touch it.
    float* cols_base = workspace.alloc_floats(bands * band_stride);
    if (bands > 1) {
        const std::int64_t per_band = (batch + bands - 1) / bands;
        for (std::int64_t band = 0; band < bands; ++band) {
            const std::int64_t n0 = band * per_band;
            const std::int64_t n1 = std::min(n0 + per_band, batch);
            if (n0 >= n1) {
                break;
            }
            float* cols = cols_base + band * band_stride;
            pool_->submit([&run_sample, cols, n0, n1] {
                for (std::int64_t n = n0; n < n1; ++n) {
                    // Workers keep their sample GEMMs single-threaded;
                    // the parallelism is the per-sample banding itself.
                    run_sample(n, cols, nullptr);
                }
            });
        }
        pool_->wait_idle();
    } else {
        for (std::int64_t n = 0; n < batch; ++n) {
            run_sample(n, cols_base, pool_);
        }
    }
    workspace.rewind(mark);
    return sparse;
}

std::size_t Conv2d::quantized_workspace_bytes(std::int64_t in_height,
                                              std::int64_t in_width,
                                              std::int64_t batch) const {
    const ConvGeometry g = geometry(in_height, in_width);
    const auto cols = static_cast<std::size_t>(g.col_rows() * g.col_cols());
    const auto acc =
        static_cast<std::size_t>(out_channels_ * g.col_cols()) *
        sizeof(std::int32_t);
    const auto slab = static_cast<std::size_t>(batch * in_channels_ *
                                               in_height * in_width);
    return Workspace::aligned_bytes(slab) +
           Workspace::aligned_bytes(static_cast<std::size_t>(batch) *
                                    sizeof(float)) +
           static_cast<std::size_t>(conv_bands(batch)) *
               (Workspace::aligned_bytes(cols) +
                Workspace::aligned_bytes(acc));
}

bool Conv2d::forward_into_quantized(const Tensor& input,
                                    Workspace& workspace, Tensor& output,
                                    const nn::QuantizedTensor& qweight,
                                    const ActiveIndexView* live_in_channels) {
    const ConvGeometry g = geometry_for(input);
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();
    MIME_REQUIRE(eval_mode(),
                 "Conv2d::forward_into_quantized is inference-only; "
                 "set_eval_mode first");
    MIME_REQUIRE(output.shape() == Shape({batch, out_channels_, ho, wo}),
                 "Conv2d::forward_into_quantized output must be "
                 "preallocated to " +
                     Shape({batch, out_channels_, ho, wo}).to_string() +
                     ", got " + output.shape().to_string());
    MIME_REQUIRE(qweight.rows == out_channels_ && qweight.cols == ckk,
                 "quantized weights are [" + std::to_string(qweight.rows) +
                     ", " + std::to_string(qweight.cols) +
                     "], layer needs [" + std::to_string(out_channels_) +
                     ", " + std::to_string(ckk) + "]");

    const bool sparse = live_in_channels != nullptr &&
                        live_in_channels->indices != nullptr &&
                        !live_in_channels->all_live() &&
                        live_in_channels->density() <= sparse_density_cutoff_;
    const std::int64_t* rows = nullptr;
    std::int64_t row_count = ckk;
    if (sparse) {
        MIME_REQUIRE(live_in_channels->total == in_channels_,
                     "Conv2d live-channel view covers " +
                         std::to_string(live_in_channels->total) +
                         " channels, layer has " +
                         std::to_string(in_channels_));
        live_rows_.clear();
        const std::int64_t kk = kernel_ * kernel_;
        for (std::int64_t i = 0; i < live_in_channels->count; ++i) {
            const std::int64_t base = live_in_channels->indices[i] * kk;
            for (std::int64_t t = 0; t < kk; ++t) {
                live_rows_.push_back(base + t);
            }
        }
        rows = live_rows_.data();
        row_count = static_cast<std::int64_t>(live_rows_.size());
    }

    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    const Workspace::Checkpoint mark = workspace.checkpoint();
    // One dynamic scale *per sample*: a hot outlier in one image must
    // not inflate the quantization step of the rest of the batch. Each
    // sample's scale depends only on its own bytes, so the band workers
    // can quantize their own (disjoint) sample slices and thread count
    // never changes the produced bytes.
    auto* qinput = workspace.alloc<std::int8_t>(batch * in_stride);
    auto* x_scales = workspace.alloc<float>(batch);

    const std::int64_t bands = conv_bands(batch);
    const std::size_t cols_stride =
        Workspace::aligned_bytes(static_cast<std::size_t>(ckk * spatial));
    const std::size_t acc_stride =
        Workspace::aligned_bytes(static_cast<std::size_t>(
            out_channels_ * spatial * sizeof(std::int32_t)));
    auto* cols_base = static_cast<std::int8_t*>(
        workspace.alloc_bytes(static_cast<std::size_t>(bands) * cols_stride));
    auto* acc_base = static_cast<std::int32_t*>(
        workspace.alloc_bytes(static_cast<std::size_t>(bands) * acc_stride));

    const float* bias = bias_ ? bias_->value.data() : nullptr;
    const float* w_scales = qweight.scales.data();
    const std::int8_t* w_data = qweight.data.data();

    auto run_sample = [&](std::int64_t n, std::int8_t* cols,
                          std::int32_t* acc, ThreadPool* gemm_pool) {
        const float* x = input.data() + n * in_stride;
        const float absmax = nn::activation_absmax(x, in_stride);
        x_scales[n] = absmax == 0.0f ? 0.0f : absmax / 127.0f;
        nn::quantize_with_scale(x, in_stride,
                                absmax == 0.0f ? 0.0f : 127.0f / absmax,
                                qinput + n * in_stride);
        if (sparse) {
            im2col(g, qinput + n * in_stride, cols,
                   live_in_channels->indices, live_in_channels->count);
            qgemm_rows(out_channels_, spatial, ckk, rows, row_count, w_data,
                       ckk, cols, spatial, acc, spatial, gemm_pool);
        } else {
            im2col(g, qinput + n * in_stride, cols);
            qgemm(out_channels_, spatial, ckk, w_data, ckk, cols, spatial,
                  acc, spatial, gemm_pool);
        }
        float* out = output.data() + n * out_stride;
        for (std::int64_t c = 0; c < out_channels_; ++c) {
            nn::dequantize_affine(acc + c * spatial, spatial,
                                  w_scales[c] * x_scales[n],
                                  bias != nullptr ? bias[c] : 0.0f,
                                  out + c * spatial);
        }
    };

    if (bands > 1) {
        const std::int64_t per_band = (batch + bands - 1) / bands;
        for (std::int64_t band = 0; band < bands; ++band) {
            const std::int64_t n0 = band * per_band;
            const std::int64_t n1 = std::min(n0 + per_band, batch);
            if (n0 >= n1) {
                break;
            }
            std::int8_t* cols =
                cols_base + static_cast<std::size_t>(band) * cols_stride;
            auto* acc = reinterpret_cast<std::int32_t*>(
                reinterpret_cast<std::int8_t*>(acc_base) +
                static_cast<std::size_t>(band) * acc_stride);
            pool_->submit([&run_sample, cols, acc, n0, n1] {
                for (std::int64_t n = n0; n < n1; ++n) {
                    run_sample(n, cols, acc, nullptr);
                }
            });
        }
        pool_->wait_idle();
    } else {
        for (std::int64_t n = 0; n < batch; ++n) {
            run_sample(n, cols_base, acc_base, pool_);
        }
    }
    workspace.rewind(mark);
    return sparse;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_input_.shape().rank() == 4,
                 "Conv2d::backward called before forward");
    const ConvGeometry g = geometry_for(cached_input_);
    const std::int64_t batch = cached_input_.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();

    MIME_REQUIRE(grad_output.shape() ==
                     Shape({batch, out_channels_, ho, wo}),
                 "Conv2d::backward grad shape mismatch: " +
                     grad_output.shape().to_string());

    Tensor grad_input(cached_input_.shape());
    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    Mutex accumulate_mutex;

    auto run_range = [&](std::size_t begin, std::size_t end) {
        std::vector<float> cols(static_cast<std::size_t>(ckk * spatial));
        std::vector<float> grad_cols(static_cast<std::size_t>(ckk * spatial));
        Tensor local_grad_w(weight_.grad.shape());
        Tensor local_grad_b =
            bias_ ? Tensor(bias_->grad.shape()) : Tensor();

        for (std::size_t un = begin; un < end; ++un) {
            const auto n = static_cast<std::int64_t>(un);
            const float* gout = grad_output.data() + n * out_stride;

            // grad_W += gout [Cout, S] x cols^T [S, CKK]
            im2col(g, cached_input_.data() + n * in_stride, cols.data());
            gemm(false, true, out_channels_, ckk, spatial, 1.0f, gout, spatial,
                 cols.data(), spatial, 1.0f, local_grad_w.data(), ckk,
                 nullptr);

            if (bias_) {
                float* gb = local_grad_b.data();
                for (std::int64_t c = 0; c < out_channels_; ++c) {
                    const float* row = gout + c * spatial;
                    double acc = 0.0;
                    for (std::int64_t s = 0; s < spatial; ++s) {
                        acc += row[s];
                    }
                    gb[c] += static_cast<float>(acc);
                }
            }

            // grad_cols = W^T [CKK, Cout] x gout [Cout, S]
            gemm(true, false, ckk, spatial, out_channels_, 1.0f,
                 weight_.value.data(), ckk, gout, spatial, 0.0f,
                 grad_cols.data(), spatial, nullptr);
            col2im(g, grad_cols.data(), grad_input.data() + n * in_stride);
        }

        MutexLock lock(accumulate_mutex);
        weight_.grad.axpy(1.0f, local_grad_w);
        if (bias_) {
            bias_->grad.axpy(1.0f, local_grad_b);
        }
    };

    if (pool_ != nullptr && batch > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(batch), run_range,
                     /*min_chunk=*/1);
    } else {
        run_range(0, static_cast<std::size_t>(batch));
    }
    return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
    std::vector<Parameter*> params{&weight_};
    if (bias_) {
        params.push_back(&*bias_);
    }
    return params;
}

}  // namespace mime::nn
