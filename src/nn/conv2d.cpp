#include "nn/conv2d.h"

#include <cmath>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "tensor/gemm.h"

namespace mime::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
    MIME_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
                 "Conv2d extents must be positive");
    MIME_REQUIRE(stride > 0 && padding >= 0, "Conv2d stride/padding invalid");
    const std::int64_t fan_in = in_channels * kernel * kernel;
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    weight_ = Parameter(
        "weight",
        Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, 0.0f,
                      stddev));
    if (bias) {
        bias_.emplace("bias", Tensor::zeros({out_channels}));
    }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
    MIME_REQUIRE(input.shape().rank() == 4,
                 "Conv2d expects [N, C, H, W], got " +
                     input.shape().to_string());
    MIME_REQUIRE(input.shape().dim(1) == in_channels_,
                 "Conv2d channel mismatch: layer expects " +
                     std::to_string(in_channels_) + ", input has " +
                     std::to_string(input.shape().dim(1)));
    return geometry(input.shape().dim(2), input.shape().dim(3));
}

Tensor Conv2d::forward(const Tensor& input) {
    const ConvGeometry g = geometry_for(input);
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();

    if (!eval_mode()) {
        cached_input_ = input;
    }
    Tensor output({batch, out_channels_, ho, wo});

    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    auto run_sample = [&](std::int64_t n, std::vector<float>& cols,
                          ThreadPool* gemm_pool) {
        im2col(g, input.data() + n * in_stride, cols.data());
        float* out = output.data() + n * out_stride;
        gemm(false, false, out_channels_, spatial, ckk, 1.0f,
             weight_.value.data(), ckk, cols.data(), spatial, 0.0f, out,
             spatial, gemm_pool);
        if (bias_) {
            const float* b = bias_->value.data();
            for (std::int64_t c = 0; c < out_channels_; ++c) {
                float* row = out + c * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    row[s] += b[c];
                }
            }
        }
    };

    if (pool_ != nullptr && batch > 1) {
        // Parallelize across samples; each sample's GEMM stays
        // single-threaded to avoid nested pool usage.
        parallel_for(
            *pool_, static_cast<std::size_t>(batch),
            [&](std::size_t begin, std::size_t end) {
                std::vector<float> cols(
                    static_cast<std::size_t>(ckk * spatial));
                for (std::size_t n = begin; n < end; ++n) {
                    run_sample(static_cast<std::int64_t>(n), cols, nullptr);
                }
            },
            /*min_chunk=*/1);
    } else {
        std::vector<float> cols(static_cast<std::size_t>(ckk * spatial));
        for (std::int64_t n = 0; n < batch; ++n) {
            run_sample(n, cols, pool_);
        }
    }
    return output;
}

void Conv2d::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_input_ = Tensor();
    }
}

std::int64_t Conv2d::cached_state_bytes() const {
    return cached_tensor_bytes(cached_input_);
}

ConvGeometry Conv2d::geometry(std::int64_t in_height,
                              std::int64_t in_width) const {
    ConvGeometry g;
    g.in_channels = in_channels_;
    g.in_height = in_height;
    g.in_width = in_width;
    g.kernel = kernel_;
    g.stride = stride_;
    g.padding = padding_;
    g.validate();
    return g;
}

std::int64_t Conv2d::workspace_floats(std::int64_t in_height,
                                      std::int64_t in_width) const {
    const ConvGeometry g = geometry(in_height, in_width);
    return static_cast<std::int64_t>(
        Workspace::aligned_floats(g.col_rows() * g.col_cols()));
}

void Conv2d::forward_into(const Tensor& input, Workspace& workspace,
                          Tensor& output) {
    const ConvGeometry g = geometry_for(input);
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();
    MIME_REQUIRE(eval_mode(),
                 "Conv2d::forward_into is inference-only; set_eval_mode "
                 "first");
    MIME_REQUIRE(output.shape() == Shape({batch, out_channels_, ho, wo}),
                 "Conv2d::forward_into output must be preallocated to " +
                     Shape({batch, out_channels_, ho, wo}).to_string() +
                     ", got " + output.shape().to_string());

    const Workspace::Checkpoint mark = workspace.checkpoint();
    float* cols = workspace.alloc_floats(ckk * spatial);
    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;
    for (std::int64_t n = 0; n < batch; ++n) {
        im2col(g, input.data() + n * in_stride, cols);
        float* out = output.data() + n * out_stride;
        gemm(false, false, out_channels_, spatial, ckk, 1.0f,
             weight_.value.data(), ckk, cols, spatial, 0.0f, out, spatial,
             pool_);
        if (bias_) {
            const float* b = bias_->value.data();
            for (std::int64_t c = 0; c < out_channels_; ++c) {
                float* row = out + c * spatial;
                for (std::int64_t s = 0; s < spatial; ++s) {
                    row[s] += b[c];
                }
            }
        }
    }
    workspace.rewind(mark);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_input_.shape().rank() == 4,
                 "Conv2d::backward called before forward");
    const ConvGeometry g = geometry_for(cached_input_);
    const std::int64_t batch = cached_input_.shape().dim(0);
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t spatial = ho * wo;
    const std::int64_t ckk = g.col_rows();

    MIME_REQUIRE(grad_output.shape() ==
                     Shape({batch, out_channels_, ho, wo}),
                 "Conv2d::backward grad shape mismatch: " +
                     grad_output.shape().to_string());

    Tensor grad_input(cached_input_.shape());
    const std::int64_t in_stride = in_channels_ * g.in_height * g.in_width;
    const std::int64_t out_stride = out_channels_ * spatial;

    std::mutex accumulate_mutex;

    auto run_range = [&](std::size_t begin, std::size_t end) {
        std::vector<float> cols(static_cast<std::size_t>(ckk * spatial));
        std::vector<float> grad_cols(static_cast<std::size_t>(ckk * spatial));
        Tensor local_grad_w(weight_.grad.shape());
        Tensor local_grad_b =
            bias_ ? Tensor(bias_->grad.shape()) : Tensor();

        for (std::size_t un = begin; un < end; ++un) {
            const auto n = static_cast<std::int64_t>(un);
            const float* gout = grad_output.data() + n * out_stride;

            // grad_W += gout [Cout, S] x cols^T [S, CKK]
            im2col(g, cached_input_.data() + n * in_stride, cols.data());
            gemm(false, true, out_channels_, ckk, spatial, 1.0f, gout, spatial,
                 cols.data(), spatial, 1.0f, local_grad_w.data(), ckk,
                 nullptr);

            if (bias_) {
                float* gb = local_grad_b.data();
                for (std::int64_t c = 0; c < out_channels_; ++c) {
                    const float* row = gout + c * spatial;
                    double acc = 0.0;
                    for (std::int64_t s = 0; s < spatial; ++s) {
                        acc += row[s];
                    }
                    gb[c] += static_cast<float>(acc);
                }
            }

            // grad_cols = W^T [CKK, Cout] x gout [Cout, S]
            gemm(true, false, ckk, spatial, out_channels_, 1.0f,
                 weight_.value.data(), ckk, gout, spatial, 0.0f,
                 grad_cols.data(), spatial, nullptr);
            col2im(g, grad_cols.data(), grad_input.data() + n * in_stride);
        }

        std::lock_guard lock(accumulate_mutex);
        weight_.grad.axpy(1.0f, local_grad_w);
        if (bias_) {
            bias_->grad.axpy(1.0f, local_grad_b);
        }
    };

    if (pool_ != nullptr && batch > 1) {
        parallel_for(*pool_, static_cast<std::size_t>(batch), run_range,
                     /*min_chunk=*/1);
    } else {
        run_range(0, static_cast<std::size_t>(batch));
    }
    return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
    std::vector<Parameter*> params{&weight_};
    if (bias_) {
        params.push_back(&*bias_);
    }
    return params;
}

}  // namespace mime::nn
