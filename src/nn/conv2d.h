// 2-D convolution layer (NCHW, square kernels, symmetric padding).
#pragma once

#include <optional>
#include <vector>

#include "nn/module.h"
#include "nn/quantize.h"
#include "nn/sparse.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace mime::nn {

/// Conv2d lowered to GEMM via im2col. Weight layout is
/// [out_channels, in_channels, k, k]; contiguity makes the same buffer a
/// [out_channels, in_channels*k*k] row-major matrix for the GEMM.
class Conv2d : public Module {
public:
    /// He-normal weight init (fan-in), zero bias.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels,
           std::int64_t kernel, std::int64_t stride, std::int64_t padding,
           Rng& rng, bool bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Conv2d"; }
    std::vector<Parameter*> parameters() override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: writes into the caller-preallocated
    /// `output` ([N, Cout, Ho, Wo]) using `workspace` for the im2col
    /// scratch — no tensor-storage allocation, no backward caching.
    /// When this module has a pool and batch > 1, samples are split
    /// across conv_bands() workers, each with its own pre-carved
    /// workspace slice (the band scratch is allocated up front on the
    /// calling thread because Workspace is not thread-safe); outputs
    /// are bit-identical to the sequential order because each output
    /// row's FMA chain is the same either way.
    ///
    /// `live_in_channels`, when given, lists the input channels that can
    /// be nonzero (the rest were structurally pruned by an upstream
    /// threshold mask); if its density is at or below the cutoff, im2col
    /// lowers only the live channels and the GEMM contracts over their
    /// rows only — bit-identical to dense because the skipped rows
    /// contribute exact zeros. Returns whether that compacted path ran.
    bool forward_into(const Tensor& input, Workspace& workspace,
                      Tensor& output,
                      const ActiveIndexView* live_in_channels = nullptr);

    /// Int8 planned forward: quantizes each sample of the input (one
    /// dynamic scale per sample, so a hot outlier in one image never
    /// inflates the others' step size — and each sample's bytes depend
    /// only on its own data, so banding never changes them), lowers to
    /// an int8 column matrix, contracts against `qweight`
    /// (per-output-channel scales, prebuilt by the plan from the float
    /// master weights) into int32 accumulators, and dequantizes + bias
    /// into the float `output`.
    /// Same live-channel compaction and return semantics as
    /// forward_into; scratch comes from `workspace`
    /// (quantized_workspace_bytes), so steady state allocates nothing.
    bool forward_into_quantized(const Tensor& input, Workspace& workspace,
                                Tensor& output,
                                const nn::QuantizedTensor& qweight,
                                const ActiveIndexView* live_in_channels =
                                    nullptr);

    /// Validated convolution geometry for an input of the given spatial
    /// extents — the single source of truth for output sizes that both
    /// the forwards and ForwardPlan's buffer pre-sizing derive from.
    ConvGeometry geometry(std::int64_t in_height, std::int64_t in_width) const;

    /// Workspace floats forward_into() allocates for one forward at
    /// this input geometry and batch size (already alignment-rounded):
    /// one im2col scratch slice per band.
    std::int64_t workspace_floats(std::int64_t in_height,
                                  std::int64_t in_width,
                                  std::int64_t batch = 1) const;

    /// Workspace bytes forward_into_quantized() allocates at this input
    /// geometry and batch size (alignment-rounded): the int8 input
    /// slab plus, per band, an int8 column matrix and an int32
    /// accumulator tile.
    std::size_t quantized_workspace_bytes(std::int64_t in_height,
                                          std::int64_t in_width,
                                          std::int64_t batch = 1) const;

    /// Number of per-sample bands forward_into() splits a batch of the
    /// given size into: min(pool size, batch) with a pool, else 1.
    std::int64_t conv_bands(std::int64_t batch) const;

    /// Density above which forward_into ignores `live_in_channels` and
    /// runs dense (compaction bookkeeping beats the win near 1.0).
    void set_sparse_density_cutoff(double cutoff) noexcept {
        sparse_density_cutoff_ = cutoff;
    }
    double sparse_density_cutoff() const noexcept {
        return sparse_density_cutoff_;
    }

    Parameter& weight() noexcept { return weight_; }
    Parameter& bias() { return bias_.value(); }
    bool has_bias() const noexcept { return bias_.has_value(); }

    std::int64_t in_channels() const noexcept { return in_channels_; }
    std::int64_t out_channels() const noexcept { return out_channels_; }
    std::int64_t kernel() const noexcept { return kernel_; }
    std::int64_t stride() const noexcept { return stride_; }
    std::int64_t padding() const noexcept { return padding_; }

private:
    ConvGeometry geometry_for(const Tensor& input) const;

    std::int64_t in_channels_;
    std::int64_t out_channels_;
    std::int64_t kernel_;
    std::int64_t stride_;
    std::int64_t padding_;
    Parameter weight_;
    std::optional<Parameter> bias_;
    Tensor cached_input_;  ///< saved by forward for the backward pass
    double sparse_density_cutoff_ = kDefaultSparseDensityCutoff;
    /// Scratch for the live-channel -> live-GEMM-row (c*K*K + t)
    /// expansion; member so steady-state sparse forwards reuse its
    /// capacity instead of reallocating.
    std::vector<std::int64_t> live_rows_;
};

}  // namespace mime::nn
