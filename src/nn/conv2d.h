// 2-D convolution layer (NCHW, square kernels, symmetric padding).
#pragma once

#include <optional>

#include "nn/module.h"
#include "tensor/im2col.h"

namespace mime::nn {

/// Conv2d lowered to GEMM via im2col. Weight layout is
/// [out_channels, in_channels, k, k]; contiguity makes the same buffer a
/// [out_channels, in_channels*k*k] row-major matrix for the GEMM.
class Conv2d : public Module {
public:
    /// He-normal weight init (fan-in), zero bias.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels,
           std::int64_t kernel, std::int64_t stride, std::int64_t padding,
           Rng& rng, bool bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Conv2d"; }
    std::vector<Parameter*> parameters() override;

    Parameter& weight() noexcept { return weight_; }
    Parameter& bias() { return bias_.value(); }
    bool has_bias() const noexcept { return bias_.has_value(); }

    std::int64_t in_channels() const noexcept { return in_channels_; }
    std::int64_t out_channels() const noexcept { return out_channels_; }
    std::int64_t kernel() const noexcept { return kernel_; }
    std::int64_t stride() const noexcept { return stride_; }
    std::int64_t padding() const noexcept { return padding_; }

private:
    ConvGeometry geometry_for(const Tensor& input) const;

    std::int64_t in_channels_;
    std::int64_t out_channels_;
    std::int64_t kernel_;
    std::int64_t stride_;
    std::int64_t padding_;
    Parameter weight_;
    std::optional<Parameter> bias_;
    Tensor cached_input_;  ///< saved by forward for the backward pass
};

}  // namespace mime::nn
