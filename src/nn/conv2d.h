// 2-D convolution layer (NCHW, square kernels, symmetric padding).
#pragma once

#include <optional>

#include "nn/module.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace mime::nn {

/// Conv2d lowered to GEMM via im2col. Weight layout is
/// [out_channels, in_channels, k, k]; contiguity makes the same buffer a
/// [out_channels, in_channels*k*k] row-major matrix for the GEMM.
class Conv2d : public Module {
public:
    /// He-normal weight init (fan-in), zero bias.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels,
           std::int64_t kernel, std::int64_t stride, std::int64_t padding,
           Rng& rng, bool bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Conv2d"; }
    std::vector<Parameter*> parameters() override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: writes into the caller-preallocated
    /// `output` ([N, Cout, Ho, Wo]) using `workspace` for the im2col
    /// scratch — no heap allocation, no backward caching. Samples run
    /// sequentially with the GEMM on this module's pool (the legacy
    /// forward instead splits samples across the pool with per-thread
    /// heap scratch); both orders produce bit-identical outputs because
    /// each output row's FMA chain is the same either way.
    void forward_into(const Tensor& input, Workspace& workspace,
                      Tensor& output);

    /// Validated convolution geometry for an input of the given spatial
    /// extents — the single source of truth for output sizes that both
    /// the forwards and ForwardPlan's buffer pre-sizing derive from.
    ConvGeometry geometry(std::int64_t in_height, std::int64_t in_width) const;

    /// Workspace floats forward_into() allocates for one forward at
    /// this input geometry (already alignment-rounded).
    std::int64_t workspace_floats(std::int64_t in_height,
                                  std::int64_t in_width) const;

    Parameter& weight() noexcept { return weight_; }
    Parameter& bias() { return bias_.value(); }
    bool has_bias() const noexcept { return bias_.has_value(); }

    std::int64_t in_channels() const noexcept { return in_channels_; }
    std::int64_t out_channels() const noexcept { return out_channels_; }
    std::int64_t kernel() const noexcept { return kernel_; }
    std::int64_t stride() const noexcept { return stride_; }
    std::int64_t padding() const noexcept { return padding_; }

private:
    ConvGeometry geometry_for(const Tensor& input) const;

    std::int64_t in_channels_;
    std::int64_t out_channels_;
    std::int64_t kernel_;
    std::int64_t stride_;
    std::int64_t padding_;
    Parameter weight_;
    std::optional<Parameter> bias_;
    Tensor cached_input_;  ///< saved by forward for the backward pass
};

}  // namespace mime::nn
