#include "nn/loss.h"

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime::nn {

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<std::int64_t>& labels) {
    MIME_REQUIRE(logits.shape().rank() == 2,
                 "SoftmaxCrossEntropy expects [N, classes], got " +
                     logits.shape().to_string());
    const std::int64_t batch = logits.shape().dim(0);
    const std::int64_t classes = logits.shape().dim(1);
    MIME_REQUIRE(static_cast<std::int64_t>(labels.size()) == batch,
                 "label count " + std::to_string(labels.size()) +
                     " does not match batch " + std::to_string(batch));

    const Tensor log_probs = log_softmax_rows(logits);
    cached_probabilities_ = Tensor(logits.shape());
    cached_labels_ = labels;
    last_correct_ = 0;

    double loss = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t label = labels[static_cast<std::size_t>(n)];
        MIME_REQUIRE(label >= 0 && label < classes,
                     "label " + std::to_string(label) +
                         " out of range for " + std::to_string(classes) +
                         " classes");
        const float* lp = log_probs.data() + n * classes;
        loss -= lp[label];

        float* probs = cached_probabilities_.data() + n * classes;
        std::int64_t best = 0;
        for (std::int64_t c = 0; c < classes; ++c) {
            probs[c] = std::exp(lp[c]);
            if (lp[c] > lp[best]) {
                best = c;
            }
        }
        if (best == label) {
            ++last_correct_;
        }
    }
    return loss / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::backward() const {
    MIME_REQUIRE(cached_probabilities_.shape().rank() == 2,
                 "SoftmaxCrossEntropy::backward called before forward");
    const std::int64_t batch = cached_probabilities_.shape().dim(0);
    const std::int64_t classes = cached_probabilities_.shape().dim(1);
    Tensor grad = cached_probabilities_;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::int64_t n = 0; n < batch; ++n) {
        float* row = grad.data() + n * classes;
        row[cached_labels_[static_cast<std::size_t>(n)]] -= 1.0f;
        for (std::int64_t c = 0; c < classes; ++c) {
            row[c] *= inv_batch;
        }
    }
    return grad;
}

}  // namespace mime::nn
