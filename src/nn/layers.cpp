#include "nn/layers.h"

#include "common/check.h"

namespace mime::nn {

Tensor ReLU::forward(const Tensor& input) {
    if (eval_mode()) {
        Tensor output = input;
        forward_eval_inplace(output);
        return output;
    }
    Tensor output(input.shape());
    cached_mask_ = Tensor(input.shape());
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        if (input[i] > 0.0f) {
            output[i] = input[i];
            cached_mask_[i] = 1.0f;
        } else {
            output[i] = 0.0f;
            cached_mask_[i] = 0.0f;
            ++zeros;
        }
    }
    last_sparsity_ =
        static_cast<double>(zeros) / static_cast<double>(input.numel());
    return output;
}

void ReLU::forward_eval_inplace(Tensor& activations) {
    std::int64_t zeros = 0;
    float* a = activations.data();
    for (std::int64_t i = 0; i < activations.numel(); ++i) {
        if (a[i] > 0.0f) {
            // keep
        } else {
            a[i] = 0.0f;
            ++zeros;
        }
    }
    last_sparsity_ = static_cast<double>(zeros) /
                     static_cast<double>(activations.numel());
}

void ReLU::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_mask_ = Tensor();
    }
}

std::int64_t ReLU::cached_state_bytes() const {
    return cached_tensor_bytes(cached_mask_);
}

Tensor ReLU::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_mask_.shape() == grad_output.shape(),
                 "ReLU::backward grad shape mismatch");
    return mul(grad_output, cached_mask_);
}

Tensor Flatten::forward(const Tensor& input) {
    MIME_REQUIRE(input.shape().rank() >= 2,
                 "Flatten expects a batched tensor, got " +
                     input.shape().to_string());
    cached_input_shape_ = input.shape();
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t features = input.numel() / batch;
    return input.reshaped({batch, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    MIME_REQUIRE(grad_output.numel() == cached_input_shape_.numel(),
                 "Flatten::backward grad size mismatch");
    return grad_output.reshaped(cached_input_shape_);
}

Dropout::Dropout(double drop_probability, Rng& rng)
    : drop_probability_(drop_probability), rng_(rng.fork()) {
    MIME_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0,
                 "dropout probability must be in [0, 1)");
}

void Dropout::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_scale_ = Tensor();
    }
}

std::int64_t Dropout::cached_state_bytes() const {
    return cached_tensor_bytes(cached_scale_);
}

Tensor Dropout::forward(const Tensor& input) {
    if (eval_mode()) {
        return input;  // inference pass-through, no backward scale kept
    }
    if (!training() || drop_probability_ == 0.0) {
        cached_scale_ = Tensor::ones(input.shape());
        return input;
    }
    const float keep_scale =
        static_cast<float>(1.0 / (1.0 - drop_probability_));
    cached_scale_ = Tensor(input.shape());
    Tensor output(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        const float s = rng_.bernoulli(drop_probability_) ? 0.0f : keep_scale;
        cached_scale_[i] = s;
        output[i] = input[i] * s;
    }
    return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_scale_.shape() == grad_output.shape(),
                 "Dropout::backward grad shape mismatch");
    return mul(grad_output, cached_scale_);
}

}  // namespace mime::nn
