// Trainable parameter: value + gradient accumulator + metadata.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace mime::nn {

/// One named, trainable tensor owned by a Module. `grad` always has the
/// same shape as `value` and accumulates across backward calls until
/// the optimizer's zero_grad().
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    /// Frozen parameters keep accumulating gradients (cheap) but are
    /// skipped by optimizers; MIME freezes the whole backbone this way.
    bool trainable = true;

    Parameter() = default;
    Parameter(std::string parameter_name, Tensor initial_value)
        : name(std::move(parameter_name)),
          value(std::move(initial_value)),
          grad(value.shape()) {}

    /// Number of scalar elements.
    std::int64_t numel() const noexcept { return value.numel(); }

    /// Resets the gradient accumulator to zero.
    void zero_grad() { grad.fill(0.0f); }
};

}  // namespace mime::nn
