// Module: the building block of the network graph.
//
// Modules implement an explicit forward / backward pair (define-by-run
// with manual adjoints, no tape). forward() caches whatever the matching
// backward() needs; backward() consumes the cached state, accumulates
// parameter gradients and returns the gradient w.r.t. its input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace mime::nn {

/// Abstract network layer.
class Module {
public:
    virtual ~Module() = default;

    /// Computes the layer output for `input` (leading axis = batch) and
    /// caches state for backward().
    virtual Tensor forward(const Tensor& input) = 0;

    /// Given dL/d(output), accumulates parameter gradients and returns
    /// dL/d(input). Must be called after a matching forward().
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Layer kind, e.g. "Conv2d".
    virtual std::string kind() const = 0;

    /// Pointers to this module's own parameters (empty by default).
    virtual std::vector<Parameter*> parameters() { return {}; }

    /// Non-trainable state that must persist with the model (e.g.
    /// BatchNorm running statistics). Serialized alongside parameters
    /// and included in backbone snapshots, but never touched by
    /// optimizers.
    virtual std::vector<Parameter*> buffers() { return {}; }

    /// Training vs. inference mode (affects Dropout / BatchNorm).
    virtual void set_training(bool training) { training_ = training; }
    bool training() const noexcept { return training_; }

    /// Inference-only execution. Under eval mode forward() must not
    /// retain any state whose only consumer is a backward pass (cached
    /// inputs, masks, pooling argmax), and backward() is a checked
    /// error. Deliberately distinct from set_training(false): threshold
    /// training runs BatchNorm on frozen running *statistics* yet still
    /// backpropagates through every layer, so "not training" cannot
    /// imply "no caches". Entering eval mode releases caches already
    /// held. The serving stack and the planned executor run eval-mode.
    virtual void set_eval_mode(bool eval) { eval_mode_ = eval; }
    bool eval_mode() const noexcept { return eval_mode_; }

    /// Bytes of backward-only cached state currently retained (debug /
    /// test probe; containers sum their children). Must report 0 after
    /// any eval-mode forward.
    virtual std::int64_t cached_state_bytes() const { return 0; }

    /// Optional worker pool for compute-heavy layers; propagated by
    /// Sequential. Null means single-threaded.
    virtual void set_pool(ThreadPool* pool) { pool_ = pool; }
    ThreadPool* pool() const noexcept { return pool_; }

protected:
    ThreadPool* pool_ = nullptr;

private:
    bool training_ = true;
    bool eval_mode_ = false;
};

/// cached_state_bytes() helper: a released cache slot is a
/// default-constructed Tensor (rank 0), which holds no batch state.
inline std::int64_t cached_tensor_bytes(const Tensor& t) noexcept {
    return t.shape().rank() == 0
               ? 0
               : t.numel() * static_cast<std::int64_t>(sizeof(float));
}

/// Ordered container of sub-modules; forward chains them, backward
/// reverses the chain.
class Sequential : public Module {
public:
    Sequential() = default;

    /// Appends a layer and returns a non-owning pointer to it for later
    /// inspection (e.g. to read masks or sparsity).
    template <typename M, typename... Args>
    M* emplace(Args&&... args) {
        auto layer = std::make_unique<M>(std::forward<Args>(args)...);
        M* raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /// Appends an already-constructed layer.
    Module* append(std::unique_ptr<Module> layer);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "Sequential"; }
    std::vector<Parameter*> parameters() override;
    std::vector<Parameter*> buffers() override;
    void set_training(bool training) override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;
    void set_pool(ThreadPool* pool) override;

    std::size_t size() const noexcept { return layers_.size(); }
    Module& layer(std::size_t index);
    const Module& layer(std::size_t index) const;

private:
    std::vector<std::unique_ptr<Module>> layers_;
};

/// Total scalar parameter count of a module tree.
std::int64_t parameter_count(Module& module);

/// Total scalar count of trainable parameters only.
std::int64_t trainable_parameter_count(Module& module);

}  // namespace mime::nn
