// First-order optimizers operating on Parameter lists.
//
// Only parameters with `trainable == true` are updated; this is the
// mechanism by which MIME freezes W_parent while training thresholds.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace mime::nn {

/// Optimizer interface: bound to a fixed parameter list at construction.
class Optimizer {
public:
    explicit Optimizer(std::vector<Parameter*> parameters);
    virtual ~Optimizer() = default;

    /// Applies one update using the accumulated gradients.
    virtual void step() = 0;

    /// Clears every bound parameter's gradient accumulator.
    void zero_grad();

    const std::vector<Parameter*>& parameters() const noexcept {
        return parameters_;
    }

protected:
    std::vector<Parameter*> parameters_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
public:
    Sgd(std::vector<Parameter*> parameters, float learning_rate,
        float momentum = 0.0f, float weight_decay = 0.0f);

    void step() override;

    float learning_rate() const noexcept { return learning_rate_; }
    void set_learning_rate(float lr) { learning_rate_ = lr; }

private:
    float learning_rate_;
    float momentum_;
    float weight_decay_;
    std::unordered_map<Parameter*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction; the paper trains thresholds
/// with Adam at lr = 1e-3.
class Adam : public Optimizer {
public:
    Adam(std::vector<Parameter*> parameters, float learning_rate = 1e-3f,
         float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
         float weight_decay = 0.0f);

    void step() override;

    float learning_rate() const noexcept { return learning_rate_; }
    void set_learning_rate(float lr) { learning_rate_ = lr; }
    std::int64_t step_count() const noexcept { return step_count_; }

private:
    float learning_rate_;
    float beta1_;
    float beta2_;
    float epsilon_;
    float weight_decay_;
    std::int64_t step_count_ = 0;
    std::unordered_map<Parameter*, Tensor> first_moment_;
    std::unordered_map<Parameter*, Tensor> second_moment_;
};

}  // namespace mime::nn
