// Per-channel batch normalization for NCHW tensors.
//
// Not part of the paper's VGG16, but provided (and tested) so that
// width-scaled backbones train reliably on CPU; the MIME network builder
// can insert it behind a flag.
#pragma once

#include "nn/module.h"

namespace mime::nn {

/// BatchNorm2d with learnable affine parameters and running statistics
/// for inference mode.
class BatchNorm2d : public Module {
public:
    explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                         float epsilon = 1e-5f);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "BatchNorm2d"; }
    std::vector<Parameter*> parameters() override;
    /// Running statistics — persisted with the model, never optimized.
    std::vector<Parameter*> buffers() override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward on running statistics: normalizes into
    /// the caller-preallocated `output` (which may be `input` itself —
    /// the plan normalizes conv activations in place). No heap
    /// allocation, no batch-statistics buffers, no backward caching.
    /// Bit-identical to an inference-mode forward().
    void forward_into(const Tensor& input, Tensor& output);

    Parameter& gamma() noexcept { return gamma_; }
    Parameter& beta() noexcept { return beta_; }
    const Tensor& running_mean() const noexcept {
        return running_mean_.value;
    }
    const Tensor& running_var() const noexcept { return running_var_.value; }

private:
    std::int64_t channels_;
    float momentum_;
    float epsilon_;
    Parameter gamma_;
    Parameter beta_;
    Parameter running_mean_;  ///< buffer (trainable = false)
    Parameter running_var_;   ///< buffer (trainable = false)

    // Forward caches for the backward pass.
    Tensor cached_input_;
    Tensor cached_normalized_;
    Tensor cached_inv_std_;  ///< per channel
    Tensor cached_mean_;     ///< per channel
};

}  // namespace mime::nn
