#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace mime::nn {

namespace {
constexpr char kMagic[8] = {'M', 'I', 'M', 'E', 'P', 'A', 'R', '2'};

void write_u64(std::ostream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    MIME_REQUIRE(in.good(), "unexpected end of parameter stream");
    return v;
}
}  // namespace

void save_parameters(Module& module, std::ostream& out) {
    auto params = module.parameters();
    // Buffers (e.g. BatchNorm running statistics) persist with the model.
    for (Parameter* b : module.buffers()) {
        params.push_back(b);
    }
    out.write(kMagic, sizeof(kMagic));
    write_u64(out, params.size());
    for (const Parameter* p : params) {
        write_u64(out, p->name.size());
        out.write(p->name.data(),
                  static_cast<std::streamsize>(p->name.size()));
        const auto& dims = p->value.shape().dims();
        write_u64(out, dims.size());
        for (const auto d : dims) {
            write_u64(out, static_cast<std::uint64_t>(d));
        }
        out.write(reinterpret_cast<const char*>(p->value.data()),
                  static_cast<std::streamsize>(p->value.numel() *
                                               sizeof(float)));
    }
    MIME_ENSURE(out.good(), "failed to write parameter stream");
}

void load_parameters(Module& module, std::istream& in) {
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    MIME_REQUIRE(in.good() && std::equal(magic, magic + 8, kMagic),
                 "bad parameter stream magic");
    auto params = module.parameters();
    for (Parameter* b : module.buffers()) {
        params.push_back(b);
    }
    const std::uint64_t count = read_u64(in);
    MIME_REQUIRE(count == params.size(),
                 "parameter count mismatch: stream has " +
                     std::to_string(count) + ", module has " +
                     std::to_string(params.size()));
    for (Parameter* p : params) {
        const std::uint64_t name_len = read_u64(in);
        std::string name(name_len, '\0');
        in.read(name.data(), static_cast<std::streamsize>(name_len));
        MIME_REQUIRE(in.good(), "unexpected end of parameter stream");
        MIME_REQUIRE(name == p->name,
                     "parameter name mismatch: stream has '" + name +
                         "', module expects '" + p->name + "'");
        const std::uint64_t rank = read_u64(in);
        std::vector<std::int64_t> dims(rank);
        for (auto& d : dims) {
            d = static_cast<std::int64_t>(read_u64(in));
        }
        const Shape shape = dims.empty() ? Shape{} : Shape(dims);
        MIME_REQUIRE(shape == p->value.shape(),
                     "parameter shape mismatch for '" + name + "': stream " +
                         shape.to_string() + ", module " +
                         p->value.shape().to_string());
        in.read(reinterpret_cast<char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.numel() *
                                             sizeof(float)));
        MIME_REQUIRE(in.good(), "unexpected end of parameter data");
    }
}

void save_parameters_file(Module& module, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    MIME_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
    save_parameters(module, out);
}

void load_parameters_file(Module& module, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MIME_REQUIRE(in.is_open(), "cannot open '" + path + "' for reading");
    load_parameters(module, in);
}

}  // namespace mime::nn
