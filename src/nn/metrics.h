// Classification metrics beyond plain accuracy (confusion matrices,
// per-class precision/recall — *model quality* measures).
//
// Not to be confused with src/obs/metrics.h, which is the runtime
// metrics registry (counters/gauges/histograms for *serving
// observability*).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mime::nn {

/// Confusion matrix over `classes` labels; rows = true class, columns =
/// predicted class.
class ConfusionMatrix {
public:
    explicit ConfusionMatrix(std::int64_t classes);

    /// Records one (true, predicted) pair.
    void add(std::int64_t true_label, std::int64_t predicted_label);

    /// Records a batch of logits [N, classes] against labels.
    void add_batch(const Tensor& logits,
                   const std::vector<std::int64_t>& labels);

    std::int64_t classes() const noexcept { return classes_; }
    std::int64_t total() const noexcept { return total_; }
    std::int64_t count(std::int64_t true_label,
                       std::int64_t predicted_label) const;

    /// Overall accuracy.
    double accuracy() const;
    /// Per-class recall (diagonal / row sum; 0 for empty rows).
    std::vector<double> recall() const;
    /// Per-class precision (diagonal / column sum; 0 for empty columns).
    std::vector<double> precision() const;
    /// Unweighted mean of per-class F1 scores.
    double macro_f1() const;

    /// Multi-line text rendering.
    std::string to_string() const;

private:
    std::int64_t classes_;
    std::int64_t total_ = 0;
    std::vector<std::int64_t> counts_;  ///< row-major [classes, classes]
};

/// Fraction of samples whose true label is within the top-k logits.
double top_k_accuracy(const Tensor& logits,
                      const std::vector<std::int64_t>& labels,
                      std::int64_t k);

}  // namespace mime::nn
