// Numerical gradient verification.
//
// Compares analytic backward() gradients against central finite
// differences through an arbitrary scalar head. Used extensively by the
// test suite, including for the MIME threshold straight-through estimator
// (where agreement is only expected away from the mask discontinuity).
#pragma once

#include <functional>
#include <string>

#include "nn/module.h"

namespace mime::nn {

/// Result of one gradient check.
struct GradCheckResult {
    double max_abs_error = 0.0;
    double max_rel_error = 0.0;
    std::int64_t checked_count = 0;
    bool passed = false;
    std::string detail;  ///< first offending coordinate, if any
};

/// Options controlling the finite-difference sweep.
struct GradCheckOptions {
    double epsilon = 1e-3;       ///< finite-difference step
    double tolerance = 5e-2;     ///< max allowed relative error
    double absolute_floor = 1e-4;///< abs errors below this always pass
    std::int64_t max_coordinates = 64;  ///< probe at most this many entries
};

/// Checks d(scalar head)/d(input) of `module` at `input`. The scalar head
/// is sum(output ⊙ head_weights) with fixed random head weights, which
/// exercises every output coordinate.
GradCheckResult check_input_gradient(Module& module, const Tensor& input,
                                     Rng& rng,
                                     const GradCheckOptions& options = {});

/// Checks d(scalar head)/d(parameter) for every parameter of `module`.
GradCheckResult check_parameter_gradients(Module& module, const Tensor& input,
                                          Rng& rng,
                                          const GradCheckOptions& options = {});

}  // namespace mime::nn
