#include "nn/quantize.h"

#include <cmath>

#include "common/check.h"

namespace mime::nn {

QuantizationStats fake_quantize(Tensor& t, int bits) {
    MIME_REQUIRE(bits >= 2 && bits <= 24, "bits must be in [2, 24]");
    QuantizationStats stats;

    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        max_abs = std::max(max_abs, std::abs(t[i]));
    }
    if (max_abs == 0.0f) {
        return stats;  // nothing to quantize
    }

    const double levels = static_cast<double>((1 << (bits - 1)) - 1);
    const double scale = max_abs / levels;
    stats.scale = scale;

    double abs_error_sum = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const double original = t[i];
        double q = std::nearbyint(original / scale);
        if (q > levels) {
            q = levels;
            ++stats.saturated;
        } else if (q < -levels) {
            q = -levels;
            ++stats.saturated;
        }
        const double reconstructed = q * scale;
        const double err = std::abs(original - reconstructed);
        stats.max_abs_error = std::max(stats.max_abs_error, err);
        abs_error_sum += err;
        t[i] = static_cast<float>(reconstructed);
    }
    stats.mean_abs_error =
        abs_error_sum / static_cast<double>(t.numel());
    return stats;
}

double fake_quantize_parameters(Module& module, int bits) {
    double worst = 0.0;
    for (Parameter* p : module.parameters()) {
        const QuantizationStats stats = fake_quantize(p->value, bits);
        worst = std::max(worst, stats.max_abs_error);
    }
    return worst;
}

double quantization_relative_error(const Tensor& t, int bits) {
    Tensor copy = t;
    fake_quantize(copy, bits);
    const float norm = l2_norm(t);
    if (norm == 0.0f) {
        return 0.0;
    }
    return static_cast<double>(l2_norm(sub(t, copy))) /
           static_cast<double>(norm);
}

}  // namespace mime::nn
