#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/check.h"

namespace mime::nn {

namespace {

/// Round-trips `count` floats through signed fixed point at `scale`
/// with `levels` = 2^(bits-1) - 1, accumulating stats. Returns the
/// channel's max abs error (for the per-channel relative report).
double fake_quantize_range(float* x, std::int64_t count, double scale,
                           double levels, QuantizationStats& stats) {
    double channel_max_err = 0.0;
    for (std::int64_t i = 0; i < count; ++i) {
        const double original = x[i];
        double q = std::nearbyint(original / scale);
        if (q > levels) {
            q = levels;
            ++stats.saturated;
        } else if (q < -levels) {
            q = -levels;
            ++stats.saturated;
        }
        const double reconstructed = q * scale;
        const double err = std::abs(original - reconstructed);
        channel_max_err = std::max(channel_max_err, err);
        stats.mean_abs_error += err;  // sum here; caller divides
        x[i] = static_cast<float>(reconstructed);
    }
    stats.max_abs_error = std::max(stats.max_abs_error, channel_max_err);
    return channel_max_err;
}

float range_absmax(const float* x, std::int64_t count) {
    std::int64_t i = 0;
    float max_abs = 0.0f;
#if defined(__AVX2__)
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 vmax = _mm256_setzero_ps();
    for (; i + 8 <= count; i += 8) {
        vmax = _mm256_max_ps(
            vmax, _mm256_and_ps(abs_mask, _mm256_loadu_ps(x + i)));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    for (float lane : lanes) {
        max_abs = std::max(max_abs, lane);
    }
#endif
    for (; i < count; ++i) {
        max_abs = std::max(max_abs, std::abs(x[i]));
    }
    return max_abs;
}

}  // namespace

QuantizationStats fake_quantize(Tensor& t, int bits) {
    MIME_REQUIRE(bits >= 2 && bits <= 24, "bits must be in [2, 24]");
    QuantizationStats stats;

    const float max_abs = range_absmax(t.data(), t.numel());
    if (max_abs == 0.0f) {
        return stats;  // nothing to quantize
    }

    const double levels = static_cast<double>((1 << (bits - 1)) - 1);
    const double scale = max_abs / levels;
    stats.scale = scale;

    const double max_err =
        fake_quantize_range(t.data(), t.numel(), scale, levels, stats);
    stats.mean_abs_error /= static_cast<double>(t.numel());
    stats.max_channel_rel_error = max_err / static_cast<double>(max_abs);
    return stats;
}

QuantizationStats fake_quantize_per_channel(Tensor& t, int bits) {
    MIME_REQUIRE(bits >= 2 && bits <= 24, "bits must be in [2, 24]");
    MIME_REQUIRE(t.shape().rank() >= 2,
                 "per-channel fake_quantize needs rank >= 2 (dim 0 is the "
                 "output channel), got " +
                     t.shape().to_string());
    QuantizationStats stats;
    const std::int64_t channels = t.shape().dim(0);
    const std::int64_t extent = t.numel() / channels;
    const double levels = static_cast<double>((1 << (bits - 1)) - 1);

    for (std::int64_t c = 0; c < channels; ++c) {
        float* slice = t.data() + c * extent;
        const float max_abs = range_absmax(slice, extent);
        if (max_abs == 0.0f) {
            continue;  // zero channel: unchanged, zero error
        }
        const double scale = max_abs / levels;
        stats.scale = std::max(stats.scale, scale);
        const double max_err =
            fake_quantize_range(slice, extent, scale, levels, stats);
        stats.max_channel_rel_error =
            std::max(stats.max_channel_rel_error,
                     max_err / static_cast<double>(max_abs));
    }
    stats.mean_abs_error /= static_cast<double>(t.numel());
    return stats;
}

double fake_quantize_parameters(Module& module, int bits) {
    double worst = 0.0;
    for (Parameter* p : module.parameters()) {
        const QuantizationStats stats = fake_quantize(p->value, bits);
        worst = std::max(worst, stats.max_abs_error);
    }
    return worst;
}

double quantization_relative_error(const Tensor& t, int bits) {
    Tensor copy = t;
    fake_quantize(copy, bits);
    const float norm = l2_norm(t);
    if (norm == 0.0f) {
        return 0.0;
    }
    return static_cast<double>(l2_norm(sub(t, copy))) /
           static_cast<double>(norm);
}

// ---------------------------------------------------------------------------
// Real int8 path
// ---------------------------------------------------------------------------

namespace {

constexpr float kInt8Levels = 127.0f;

/// Quantizes one contiguous range at a fixed scale. `inv_scale` is
/// 127 / absmax, so |x * inv_scale| <= 127 (plus one rounding ulp,
/// which still rounds to 127): the clamp never actually fires and the
/// AVX2 pack's [-128, 127] saturation matches the scalar [-127, 127]
/// clamp exactly. Both round to nearest-even (cvtps2dq under the
/// default MXCSR == lrintf under the default FP environment), so the
/// two paths produce identical bytes.
inline void quantize_range(const float* x, std::int64_t count,
                           float inv_scale, std::int8_t* out) {
    std::int64_t i = 0;
#if defined(__AVX2__)
    const __m256 vs = _mm256_set1_ps(inv_scale);
    // Bytes leave packs_epi32+packs_epi16 grouped four-at-a-time per
    // source vector within each 128-bit lane; this permutation of the
    // eight 4-byte groups restores source order.
    const __m256i restore = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    for (; i + 32 <= count; i += 32) {
        const __m256i q0 =
            _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
        const __m256i q1 = _mm256_cvtps_epi32(
            _mm256_mul_ps(_mm256_loadu_ps(x + i + 8), vs));
        const __m256i q2 = _mm256_cvtps_epi32(
            _mm256_mul_ps(_mm256_loadu_ps(x + i + 16), vs));
        const __m256i q3 = _mm256_cvtps_epi32(
            _mm256_mul_ps(_mm256_loadu_ps(x + i + 24), vs));
        const __m256i packed = _mm256_permutevar8x32_epi32(
            _mm256_packs_epi16(_mm256_packs_epi32(q0, q1),
                               _mm256_packs_epi32(q2, q3)),
            restore);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
    }
#endif
    for (; i < count; ++i) {
        const long q = std::lrintf(x[i] * inv_scale);
        out[i] = static_cast<std::int8_t>(
            std::clamp<long>(q, -127, 127));
    }
}

}  // namespace

QuantizedTensor quantize_weights_per_channel(const Tensor& weight) {
    MIME_REQUIRE(weight.shape().rank() >= 2,
                 "quantize_weights_per_channel needs rank >= 2 (dim 0 is "
                 "the output channel), got " +
                     weight.shape().to_string());
    QuantizedTensor q;
    q.rows = weight.shape().dim(0);
    q.cols = weight.numel() / q.rows;
    q.data.resize(static_cast<std::size_t>(weight.numel()));
    q.scales.resize(static_cast<std::size_t>(q.rows));

    for (std::int64_t r = 0; r < q.rows; ++r) {
        const float* src = weight.data() + r * q.cols;
        std::int8_t* dst = q.data.data() + r * q.cols;
        const float max_abs = range_absmax(src, q.cols);
        if (max_abs == 0.0f) {
            q.scales[static_cast<std::size_t>(r)] = 0.0f;
            std::fill(dst, dst + q.cols, std::int8_t{0});
            continue;
        }
        const float scale = max_abs / kInt8Levels;
        q.scales[static_cast<std::size_t>(r)] = scale;
        quantize_range(src, q.cols, kInt8Levels / max_abs, dst);
        double max_err = 0.0;
        for (std::int64_t i = 0; i < q.cols; ++i) {
            const double rec = static_cast<double>(dst[i]) *
                               static_cast<double>(scale);
            max_err = std::max(max_err,
                               std::abs(static_cast<double>(src[i]) - rec));
        }
        q.max_rel_error = std::max(
            q.max_rel_error, max_err / static_cast<double>(max_abs));
    }
    return q;
}

float quantize_activations(const float* x, std::int64_t count,
                           std::int8_t* out) {
    const float max_abs = range_absmax(x, count);
    if (max_abs == 0.0f) {
        std::fill(out, out + count, std::int8_t{0});
        return 0.0f;
    }
    quantize_range(x, count, kInt8Levels / max_abs, out);
    return max_abs / kInt8Levels;
}

float activation_absmax(const float* x, std::int64_t count) {
    return range_absmax(x, count);
}

void quantize_with_scale(const float* x, std::int64_t count, float inv_scale,
                         std::int8_t* out) {
    quantize_range(x, count, inv_scale, out);
}

QuantizedTensor transpose_quantized(const QuantizedTensor& q) {
    QuantizedTensor t;
    t.rows = q.cols;
    t.cols = q.rows;
    t.scales = q.scales;
    t.max_rel_error = q.max_rel_error;
    t.data.resize(q.data.size());
    for (std::int64_t r = 0; r < q.rows; ++r) {
        const std::int8_t* src = q.data.data() + r * q.cols;
        for (std::int64_t c = 0; c < q.cols; ++c) {
            t.data[static_cast<std::size_t>(c * t.cols + r)] = src[c];
        }
    }
    return t;
}

void dequantize_affine(const std::int32_t* acc, std::int64_t count,
                       float scale, float add, float* out) {
    std::int64_t i = 0;
#if defined(__AVX2__)
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 vadd = _mm256_set1_ps(add);
    for (; i + 8 <= count; i += 8) {
        const __m256 v = _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc + i)));
        // mul+add rather than fma so the scalar tail computes the same
        // expression element-for-element.
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(_mm256_mul_ps(v, vscale), vadd));
    }
#endif
    for (; i < count; ++i) {
        out[i] = static_cast<float>(acc[i]) * scale + add;
    }
}

}  // namespace mime::nn
