// Spatial pooling layers (NCHW).
#pragma once

#include <vector>

#include "nn/module.h"

namespace mime::nn {

/// Max pooling with a square window. Stores the argmax of each window for
/// the backward pass.
class MaxPool2d : public Module {
public:
    MaxPool2d(std::int64_t kernel, std::int64_t stride);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "MaxPool2d"; }
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: writes into the caller-preallocated
    /// `output`; no heap allocation and no argmax bookkeeping (that
    /// exists only for backward). Bit-identical to forward().
    void forward_into(const Tensor& input, Tensor& output);

    /// Output shape for pooling `input_shape` (validates geometry).
    Shape output_shape(const Shape& input_shape) const;

    std::int64_t kernel() const noexcept { return kernel_; }
    std::int64_t stride() const noexcept { return stride_; }

private:
    std::int64_t kernel_;
    std::int64_t stride_;
    Shape cached_input_shape_;
    std::vector<std::int64_t> cached_argmax_;  ///< flat input index per output
};

/// Average pooling with a square window (no padding).
class AvgPool2d : public Module {
public:
    AvgPool2d(std::int64_t kernel, std::int64_t stride);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "AvgPool2d"; }

private:
    std::int64_t kernel_;
    std::int64_t stride_;
    Shape cached_input_shape_;
};

}  // namespace mime::nn
