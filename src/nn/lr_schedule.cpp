#include "nn/lr_schedule.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace mime::nn {

LrSchedule constant_lr() {
    return [](std::int64_t, float base) { return base; };
}

LrSchedule step_decay(std::int64_t step_epochs, float gamma) {
    MIME_REQUIRE(step_epochs > 0, "step_epochs must be positive");
    MIME_REQUIRE(gamma > 0.0f && gamma <= 1.0f, "gamma must be in (0, 1]");
    return [step_epochs, gamma](std::int64_t epoch, float base) {
        const auto steps = epoch / step_epochs;
        return base * std::pow(gamma, static_cast<float>(steps));
    };
}

LrSchedule cosine_annealing(std::int64_t total_epochs, float min_lr) {
    MIME_REQUIRE(total_epochs > 0, "total_epochs must be positive");
    MIME_REQUIRE(min_lr >= 0.0f, "min_lr must be non-negative");
    return [total_epochs, min_lr](std::int64_t epoch, float base) {
        const double progress =
            std::min(1.0, static_cast<double>(epoch) /
                              static_cast<double>(total_epochs));
        const double cosine =
            0.5 * (1.0 + std::cos(std::numbers::pi * progress));
        return static_cast<float>(min_lr + (base - min_lr) * cosine);
    };
}

LrSchedule with_warmup(std::int64_t warmup_epochs, LrSchedule inner) {
    MIME_REQUIRE(warmup_epochs >= 0, "warmup must be non-negative");
    MIME_REQUIRE(inner != nullptr, "inner schedule required");
    return [warmup_epochs, inner](std::int64_t epoch, float base) {
        if (epoch < warmup_epochs) {
            return base * static_cast<float>(epoch + 1) /
                   static_cast<float>(warmup_epochs);
        }
        return inner(epoch - warmup_epochs, base);
    };
}

}  // namespace mime::nn
