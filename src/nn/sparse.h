// Shared vocabulary between the sparse planned executor (core) and the
// layers that can exploit structural sparsity (nn): a non-owning view of
// a live-index list plus the default density cutoff above which layers
// fall back to the dense kernel (compaction overhead outweighs skipped
// MACs when almost everything is live).
#pragma once

#include <cstdint>

namespace mime::nn {

/// Density above which sparse-capable layers run dense by default; a
/// tunable knob via Conv2d/Linear::set_sparse_density_cutoff or
/// MimeNetwork::set_sparse_execution.
inline constexpr double kDefaultSparseDensityCutoff = 0.85;

/// Non-owning view of the live indices of one axis (input channels for
/// Conv2d, input features for Linear). Indices must be strictly
/// ascending within [0, total). The pointee must outlive the forward
/// call it is passed to.
struct ActiveIndexView {
    const std::int64_t* indices = nullptr;
    std::int64_t count = 0;
    std::int64_t total = 0;

    double density() const noexcept {
        return total == 0 ? 1.0
                          : static_cast<double>(count) /
                                static_cast<double>(total);
    }
    bool all_live() const noexcept { return count == total; }
};

}  // namespace mime::nn
