#include "nn/module.h"

#include "common/check.h"

namespace mime::nn {

Module* Sequential::append(std::unique_ptr<Module> layer) {
    MIME_REQUIRE(layer != nullptr, "cannot append a null layer");
    layers_.push_back(std::move(layer));
    return layers_.back().get();
}

Tensor Sequential::forward(const Tensor& input) {
    Tensor x = input;
    for (auto& layer : layers_) {
        x = layer->forward(x);
    }
    return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

std::vector<Parameter*> Sequential::parameters() {
    std::vector<Parameter*> params;
    for (auto& layer : layers_) {
        for (Parameter* p : layer->parameters()) {
            params.push_back(p);
        }
    }
    return params;
}

std::vector<Parameter*> Sequential::buffers() {
    std::vector<Parameter*> result;
    for (auto& layer : layers_) {
        for (Parameter* b : layer->buffers()) {
            result.push_back(b);
        }
    }
    return result;
}

void Sequential::set_training(bool training) {
    Module::set_training(training);
    for (auto& layer : layers_) {
        layer->set_training(training);
    }
}

void Sequential::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    for (auto& layer : layers_) {
        layer->set_eval_mode(eval);
    }
}

std::int64_t Sequential::cached_state_bytes() const {
    std::int64_t bytes = 0;
    for (const auto& layer : layers_) {
        bytes += layer->cached_state_bytes();
    }
    return bytes;
}

void Sequential::set_pool(ThreadPool* pool) {
    Module::set_pool(pool);
    for (auto& layer : layers_) {
        layer->set_pool(pool);
    }
}

Module& Sequential::layer(std::size_t index) {
    MIME_REQUIRE(index < layers_.size(),
                 "layer index " + std::to_string(index) +
                     " out of range for Sequential of size " +
                     std::to_string(layers_.size()));
    return *layers_[index];
}

const Module& Sequential::layer(std::size_t index) const {
    return const_cast<Sequential*>(this)->layer(index);
}

std::int64_t parameter_count(Module& module) {
    std::int64_t n = 0;
    for (const Parameter* p : module.parameters()) {
        n += p->numel();
    }
    return n;
}

std::int64_t trainable_parameter_count(Module& module) {
    std::int64_t n = 0;
    for (const Parameter* p : module.parameters()) {
        if (p->trainable) {
            n += p->numel();
        }
    }
    return n;
}

}  // namespace mime::nn
