#include "nn/linear.h"

#include <cmath>

#include "common/check.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"

namespace mime::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_features_(in_features), out_features_(out_features) {
    MIME_REQUIRE(in_features > 0 && out_features > 0,
                 "Linear extents must be positive");
    const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    weight_ = Parameter(
        "weight", Tensor::randn({out_features, in_features}, rng, 0.0f,
                                stddev));
    if (bias) {
        bias_.emplace("bias", Tensor::zeros({out_features}));
    }
}

Tensor Linear::forward(const Tensor& input) {
    MIME_REQUIRE(input.shape().rank() == 2,
                 "Linear expects [N, features], got " +
                     input.shape().to_string());
    MIME_REQUIRE(input.shape().dim(1) == in_features_,
                 "Linear feature mismatch: layer expects " +
                     std::to_string(in_features_) + ", input has " +
                     std::to_string(input.shape().dim(1)));
    if (!eval_mode()) {
        cached_input_ = input;
    }
    const std::int64_t batch = input.shape().dim(0);
    Tensor output({batch, out_features_});
    forward_compute(input, output, nullptr);
    return output;
}

bool Linear::forward_compute(const Tensor& input, Tensor& output,
                             const ActiveIndexView* live_features) {
    const std::int64_t batch = input.shape().dim(0);
    const bool sparse = live_features != nullptr &&
                        live_features->indices != nullptr &&
                        !live_features->all_live() &&
                        live_features->density() <= sparse_density_cutoff_;
    if (sparse) {
        MIME_REQUIRE(live_features->total == in_features_,
                     "Linear live-feature view covers " +
                         std::to_string(live_features->total) +
                         " features, layer has " +
                         std::to_string(in_features_));
        // Contract over live input features only; the skipped features
        // are exact zeros in `input`, so this bit-matches the dense
        // product (same microkernel, same surviving-term order).
        gemm_rows(false, true, batch, out_features_, in_features_,
                  live_features->indices, live_features->count, 1.0f,
                  input.data(), in_features_, weight_.value.data(),
                  in_features_, 0.0f, output.data(), out_features_, pool_);
    } else {
        // out[N, O] = x[N, I] * W^T[I, O]
        gemm(false, true, batch, out_features_, in_features_, 1.0f,
             input.data(), in_features_, weight_.value.data(), in_features_,
             0.0f, output.data(), out_features_, pool_);
    }
    if (bias_) {
        const float* b = bias_->value.data();
        for (std::int64_t n = 0; n < batch; ++n) {
            float* row = output.data() + n * out_features_;
            for (std::int64_t o = 0; o < out_features_; ++o) {
                row[o] += b[o];
            }
        }
    }
    return sparse;
}

bool Linear::forward_into(const Tensor& input, Tensor& output,
                          const ActiveIndexView* live_features) {
    MIME_REQUIRE(eval_mode(),
                 "Linear::forward_into is inference-only; set_eval_mode "
                 "first");
    MIME_REQUIRE(input.shape().rank() == 2 &&
                     input.shape().dim(1) == in_features_,
                 "Linear::forward_into expects [N, " +
                     std::to_string(in_features_) + "], got " +
                     input.shape().to_string());
    MIME_REQUIRE(output.shape() == Shape({input.shape().dim(0), out_features_}),
                 "Linear::forward_into output must be preallocated to [N, " +
                     std::to_string(out_features_) + "], got " +
                     output.shape().to_string());
    return forward_compute(input, output, live_features);
}

std::size_t Linear::quantized_workspace_bytes(std::int64_t batch) const {
    return Workspace::aligned_bytes(
               static_cast<std::size_t>(in_features_ * batch)) +
           Workspace::aligned_bytes(static_cast<std::size_t>(batch) *
                                    sizeof(float)) +
           Workspace::aligned_bytes(
               static_cast<std::size_t>(out_features_ * batch) *
               sizeof(std::int32_t));
}

bool Linear::forward_into_quantized(const Tensor& input,
                                    Workspace& workspace, Tensor& output,
                                    const nn::QuantizedTensor& qweight,
                                    const ActiveIndexView* live_features) {
    MIME_REQUIRE(eval_mode(),
                 "Linear::forward_into_quantized is inference-only; "
                 "set_eval_mode first");
    MIME_REQUIRE(input.shape().rank() == 2 &&
                     input.shape().dim(1) == in_features_,
                 "Linear::forward_into_quantized expects [N, " +
                     std::to_string(in_features_) + "], got " +
                     input.shape().to_string());
    const std::int64_t batch = input.shape().dim(0);
    MIME_REQUIRE(output.shape() == Shape({batch, out_features_}),
                 "Linear::forward_into_quantized output must be "
                 "preallocated to [N, " +
                     std::to_string(out_features_) + "], got " +
                     output.shape().to_string());
    // The plan snapshots linear weights *transposed* ([in, out] int8,
    // scales still per output channel — see transpose_quantized), so
    // the GEMM runs activations-major: the 16-wide column tiles land on
    // out_features instead of the batch (which is often < 16), and the
    // live-feature index set compacts the contraction rows directly.
    MIME_REQUIRE(qweight.rows == in_features_ && qweight.cols == out_features_,
                 "quantized weights are [" + std::to_string(qweight.rows) +
                     ", " + std::to_string(qweight.cols) +
                     "], layer needs them transposed to [" +
                     std::to_string(in_features_) + ", " +
                     std::to_string(out_features_) + "]");

    const bool sparse = live_features != nullptr &&
                        live_features->indices != nullptr &&
                        !live_features->all_live() &&
                        live_features->density() <= sparse_density_cutoff_;
    if (sparse) {
        MIME_REQUIRE(live_features->total == in_features_,
                     "Linear live-feature view covers " +
                         std::to_string(live_features->total) +
                         " features, layer has " +
                         std::to_string(in_features_));
    }

    const Workspace::Checkpoint mark = workspace.checkpoint();
    // One dynamic scale per sample row (matching the conv path): an
    // outlier in one sample must not inflate the others' step size.
    auto* xq = workspace.alloc<std::int8_t>(batch * in_features_);
    auto* x_scales = workspace.alloc<float>(batch);
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* x = input.data() + n * in_features_;
        const float absmax = nn::activation_absmax(x, in_features_);
        x_scales[n] = absmax == 0.0f ? 0.0f : absmax / 127.0f;
        nn::quantize_with_scale(x, in_features_,
                                absmax == 0.0f ? 0.0f : 127.0f / absmax,
                                xq + n * in_features_);
    }
    auto* acc = workspace.alloc<std::int32_t>(batch * out_features_);

    if (sparse) {
        // Contract over live input features only; a dead feature's
        // column of xq is exactly zero (0 * inv_scale rounds to 0), so
        // this equals the dense int8 product exactly.
        qgemm_rows(batch, out_features_, in_features_,
                   live_features->indices, live_features->count, xq,
                   in_features_, qweight.data.data(), out_features_, acc,
                   out_features_, pool_);
    } else {
        qgemm(batch, out_features_, in_features_, xq, in_features_,
              qweight.data.data(), out_features_, acc, out_features_, pool_);
    }

    const float* bias = bias_ ? bias_->value.data() : nullptr;
    const float* w_scales = qweight.scales.data();
    for (std::int64_t n = 0; n < batch; ++n) {
        const std::int32_t* arow = acc + n * out_features_;
        float* orow = output.data() + n * out_features_;
        for (std::int64_t o = 0; o < out_features_; ++o) {
            orow[o] =
                static_cast<float>(arow[o]) * (w_scales[o] * x_scales[n]) +
                (bias != nullptr ? bias[o] : 0.0f);
        }
    }
    workspace.rewind(mark);
    return sparse;
}

void Linear::set_eval_mode(bool eval) {
    Module::set_eval_mode(eval);
    if (eval) {
        cached_input_ = Tensor();
    }
}

std::int64_t Linear::cached_state_bytes() const {
    return cached_tensor_bytes(cached_input_);
}

Tensor Linear::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_input_.shape().rank() == 2,
                 "Linear::backward called before forward");
    const std::int64_t batch = cached_input_.shape().dim(0);
    MIME_REQUIRE(grad_output.shape() == Shape({batch, out_features_}),
                 "Linear::backward grad shape mismatch: " +
                     grad_output.shape().to_string());

    // grad_W += gout^T[O, N] * x[N, I]
    gemm(true, false, out_features_, in_features_, batch, 1.0f,
         grad_output.data(), out_features_, cached_input_.data(), in_features_,
         1.0f, weight_.grad.data(), in_features_, pool_);

    if (bias_) {
        float* gb = bias_->grad.data();
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* row = grad_output.data() + n * out_features_;
            for (std::int64_t o = 0; o < out_features_; ++o) {
                gb[o] += row[o];
            }
        }
    }

    // grad_x[N, I] = gout[N, O] * W[O, I]
    Tensor grad_input({batch, in_features_});
    gemm(false, false, batch, in_features_, out_features_, 1.0f,
         grad_output.data(), out_features_, weight_.value.data(), in_features_,
         0.0f, grad_input.data(), in_features_, pool_);
    return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
    std::vector<Parameter*> params{&weight_};
    if (bias_) {
        params.push_back(&*bias_);
    }
    return params;
}

}  // namespace mime::nn
