#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mime::nn {

namespace {

double scalar_head(Module& module, const Tensor& input,
                   const Tensor& head_weights) {
    const Tensor out = module.forward(input);
    MIME_REQUIRE(out.shape() == head_weights.shape(),
                 "gradcheck head shape mismatch");
    double acc = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        acc += static_cast<double>(out[i]) * head_weights[i];
    }
    return acc;
}

void update_result(GradCheckResult& result, double analytic, double numeric,
                   const GradCheckOptions& options, const std::string& where) {
    const double abs_err = std::abs(analytic - numeric);
    const double denom =
        std::max({std::abs(analytic), std::abs(numeric), 1e-8});
    const double rel_err = abs_err / denom;
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    ++result.checked_count;
    const bool ok =
        abs_err <= options.absolute_floor || rel_err <= options.tolerance;
    if (!ok && result.passed) {
        result.passed = false;
        result.detail = where + ": analytic " + std::to_string(analytic) +
                        " vs numeric " + std::to_string(numeric);
    }
    if (ok) {
        result.max_rel_error = std::max(result.max_rel_error, rel_err);
    } else {
        result.max_rel_error = std::max(result.max_rel_error, rel_err);
    }
}

std::vector<std::int64_t> probe_indices(std::int64_t numel,
                                        std::int64_t max_count, Rng& rng) {
    std::vector<std::int64_t> indices;
    if (numel <= max_count) {
        indices.resize(static_cast<std::size_t>(numel));
        for (std::int64_t i = 0; i < numel; ++i) {
            indices[static_cast<std::size_t>(i)] = i;
        }
        return indices;
    }
    indices.reserve(static_cast<std::size_t>(max_count));
    for (std::int64_t i = 0; i < max_count; ++i) {
        indices.push_back(static_cast<std::int64_t>(
            rng.uniform_index(static_cast<std::uint64_t>(numel))));
    }
    return indices;
}

}  // namespace

GradCheckResult check_input_gradient(Module& module, const Tensor& input,
                                     Rng& rng,
                                     const GradCheckOptions& options) {
    GradCheckResult result;
    result.passed = true;

    // Fixed random head so the scalar objective touches all outputs.
    Tensor probe_out = module.forward(input);
    const Tensor head = Tensor::randn(probe_out.shape(), rng);

    // Analytic pass.
    module.forward(input);
    const Tensor analytic = module.backward(head);
    MIME_REQUIRE(analytic.shape() == input.shape(),
                 "backward returned wrong input-grad shape");

    Tensor x = input;
    for (const std::int64_t i :
         probe_indices(input.numel(), options.max_coordinates, rng)) {
        const float saved = x[i];
        x[i] = saved + static_cast<float>(options.epsilon);
        const double plus = scalar_head(module, x, head);
        x[i] = saved - static_cast<float>(options.epsilon);
        const double minus = scalar_head(module, x, head);
        x[i] = saved;
        const double numeric = (plus - minus) / (2.0 * options.epsilon);
        update_result(result, analytic[i], numeric, options,
                      "input[" + std::to_string(i) + "]");
    }
    return result;
}

GradCheckResult check_parameter_gradients(Module& module, const Tensor& input,
                                          Rng& rng,
                                          const GradCheckOptions& options) {
    GradCheckResult result;
    result.passed = true;

    Tensor probe_out = module.forward(input);
    const Tensor head = Tensor::randn(probe_out.shape(), rng);

    for (Parameter* p : module.parameters()) {
        p->zero_grad();
    }
    module.forward(input);
    module.backward(head);

    for (Parameter* p : module.parameters()) {
        Tensor analytic = p->grad;  // copy before we perturb
        for (const std::int64_t i :
             probe_indices(p->numel(), options.max_coordinates, rng)) {
            const float saved = p->value[i];
            p->value[i] = saved + static_cast<float>(options.epsilon);
            const double plus = scalar_head(module, input, head);
            p->value[i] = saved - static_cast<float>(options.epsilon);
            const double minus = scalar_head(module, input, head);
            p->value[i] = saved;
            const double numeric = (plus - minus) / (2.0 * options.epsilon);
            update_result(result, analytic[i], numeric, options,
                          p->name + "[" + std::to_string(i) + "]");
        }
    }
    return result;
}

}  // namespace mime::nn
