// Loss functions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mime::nn {

/// Softmax + cross-entropy fused loss over logits [N, classes] and
/// integer labels. `forward` returns the mean loss; `backward` returns
/// dL/dlogits (already divided by batch size).
class SoftmaxCrossEntropy {
public:
    /// Mean cross-entropy of the batch.
    double forward(const Tensor& logits,
                   const std::vector<std::int64_t>& labels);

    /// Gradient w.r.t. the logits of the most recent forward call.
    Tensor backward() const;

    /// Number of correct argmax predictions in the most recent forward.
    std::int64_t last_correct() const noexcept { return last_correct_; }

private:
    Tensor cached_probabilities_;
    std::vector<std::int64_t> cached_labels_;
    std::int64_t last_correct_ = 0;
};

}  // namespace mime::nn
