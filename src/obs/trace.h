// Per-request tracing for the serving stack.
//
// A Trace is an ordered list of monotonic-clock spans recording where a
// request spent its life: admission checks, queue wait, batch forming,
// threshold swap, forward pass, delivery. Traces are attached to a
// request at submit time (either forced via SubmitOptions::trace or
// picked by a TraceSampler) and handed back read-only on the
// RequestTicket once the outcome is delivered.
//
// Thread-safety contract: a Trace is written single-writer-at-a-time —
// the submitting thread records the admission span *before* the request
// is enqueued, the dispatch thread records the remaining spans, and the
// client reads only after the outcome is delivered. Each hand-off
// (queue mutex, promise fulfilment) establishes happens-before, so the
// spans need no atomics and TSan agrees.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mime::obs {

/// Monotonic clock used for all span timestamps (same epoch as
/// serve::Clock so span boundaries line up with deadlines).
using TraceClock = std::chrono::steady_clock;

/// Lifecycle stages a request moves through. Values are ordered as the
/// stages occur; a complete successful trace records each exactly once
/// in this order.
enum class SpanKind : std::uint8_t {
    admission,       ///< envelope + admission checks, up to queue push
    queue_wait,      ///< sitting in the bounded request queue
    batch_form,      ///< inside TaskBatcher until its batch is closed
    threshold_swap,  ///< install_task: hydrate + per-task threshold swap
    forward,         ///< planned forward pass (plus simulated service)
    delivery,        ///< building + delivering the outcome
};

const char* to_string(SpanKind kind);

/// One timed stage: [begin, end] on the monotonic clock.
struct Span {
    SpanKind kind = SpanKind::admission;
    TraceClock::time_point begin{};
    TraceClock::time_point end{};

    double duration_us() const {
        return std::chrono::duration<double, std::micro>(end - begin).count();
    }
};

/// Ordered span timeline for one request. record() appends; spans()
/// returns them in recording order (which is lifecycle order for a
/// request that completed normally).
class Trace {
public:
    Trace() { spans_.reserve(8); }

    void record(SpanKind kind, TraceClock::time_point begin,
                TraceClock::time_point end) {
        spans_.push_back(Span{kind, begin, end});
    }

    const std::vector<Span>& spans() const { return spans_; }
    bool empty() const { return spans_.empty(); }

    /// First span of the given kind, or nullptr if absent.
    const Span* find(SpanKind kind) const;

    /// True if spans are non-overlapping and in lifecycle order
    /// (each span starts no earlier than the previous one began).
    bool ordered() const;

    /// Wall time from the first span's begin to the last span's end.
    double total_us() const;

    /// Human-readable one-line-per-span dump, e.g.
    /// "queue_wait 123.4us".
    std::string to_string() const;

private:
    std::vector<Span> spans_;
};

/// Decides which requests get a trace. Deterministic rate sampling:
/// with rate r, request n is sampled iff floor((n+1)*r) > floor(n*r),
/// which picks an evenly spaced r-fraction of requests with no RNG —
/// run-to-run stable, and a single relaxed fetch_add per call.
class TraceSampler {
public:
    explicit TraceSampler(double rate) : rate_(rate) {}

    /// Rates <= 0 never sample (and skip the atomic entirely);
    /// rates >= 1 always sample.
    bool sample() noexcept {
        if (rate_ <= 0.0) {
            return false;
        }
        if (rate_ >= 1.0) {
            return true;
        }
        const auto n = static_cast<double>(
            count_.fetch_add(1, std::memory_order_relaxed));
        return static_cast<std::int64_t>((n + 1.0) * rate_) >
               static_cast<std::int64_t>(n * rate_);
    }

    double rate() const noexcept { return rate_; }

private:
    double rate_;
    std::atomic<std::int64_t> count_{0};
};

}  // namespace mime::obs
