#include "obs/metrics.h"

#include "common/check.h"

namespace mime::obs {

const char* to_string(MetricType type) {
    switch (type) {
        case MetricType::counter:
            return "counter";
        case MetricType::gauge:
            return "gauge";
        case MetricType::histogram:
            return "histogram";
    }
    return "unknown";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::int64_t>[upper_bounds_.size() + 1]) {
    MIME_REQUIRE(!upper_bounds_.empty(),
                 "histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
        MIME_REQUIRE(upper_bounds_[i - 1] < upper_bounds_[i],
                     "histogram bounds must be strictly increasing");
    }
    for (std::size_t i = 0; i <= upper_bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void Histogram::observe(double value) noexcept {
    std::size_t bucket = upper_bounds_.size();  // +inf overflow
    for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
        if (value <= upper_bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
    }
}

std::int64_t Histogram::bucket_count(std::size_t bucket) const noexcept {
    if (bucket > upper_bounds_.size()) {
        return 0;
    }
    return buckets_[bucket].load(std::memory_order_relaxed);
}

const MetricsRegistry::Entry* MetricsRegistry::find_locked(
    const std::string& name, MetricType type) const {
    const auto it = index_.find(name);
    if (it == index_.end()) {
        return nullptr;
    }
    const Entry& entry = entries_[it->second];
    MIME_REQUIRE(entry.type == type,
                 "metric '" + name + "' already registered as " +
                     to_string(entry.type) + ", requested as " +
                     to_string(type));
    return &entry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
    MutexLock lock(mutex_);
    if (const Entry* existing = find_locked(name, MetricType::counter)) {
        return *existing->counter;
    }
    Counter& handle = counters_.emplace_back();
    index_[name] = entries_.size();
    entries_.push_back({name, help, MetricType::counter, &handle, nullptr,
                        nullptr});
    return handle;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
    MutexLock lock(mutex_);
    if (const Entry* existing = find_locked(name, MetricType::gauge)) {
        return *existing->gauge;
    }
    Gauge& handle = gauges_.emplace_back();
    index_[name] = entries_.size();
    entries_.push_back({name, help, MetricType::gauge, nullptr, &handle,
                        nullptr});
    return handle;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
    MutexLock lock(mutex_);
    if (const Entry* existing = find_locked(name, MetricType::histogram)) {
        return *existing->histogram;
    }
    Histogram& handle = histograms_.emplace_back(std::move(upper_bounds));
    index_[name] = entries_.size();
    entries_.push_back({name, help, MetricType::histogram, nullptr, nullptr,
                        &handle});
    return handle;
}

std::size_t MetricsRegistry::size() const {
    MutexLock lock(mutex_);
    return entries_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
    MutexLock lock(mutex_);
    std::vector<MetricSnapshot> result;
    result.reserve(entries_.size());
    for (const Entry& entry : entries_) {
        MetricSnapshot snap;
        snap.name = entry.name;
        snap.help = entry.help;
        snap.type = entry.type;
        switch (entry.type) {
            case MetricType::counter:
                snap.value = static_cast<double>(entry.counter->value());
                break;
            case MetricType::gauge:
                snap.value = entry.gauge->value();
                break;
            case MetricType::histogram: {
                const Histogram& h = *entry.histogram;
                snap.bucket_upper_bounds = h.upper_bounds();
                snap.bucket_counts.reserve(h.upper_bounds().size() + 1);
                for (std::size_t i = 0; i <= h.upper_bounds().size(); ++i) {
                    snap.bucket_counts.push_back(h.bucket_count(i));
                }
                snap.count = h.count();
                snap.sum = h.sum();
                break;
            }
        }
        result.push_back(std::move(snap));
    }
    return result;
}

}  // namespace mime::obs
