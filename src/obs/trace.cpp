#include "obs/trace.h"

#include <cstdio>

namespace mime::obs {

const char* to_string(SpanKind kind) {
    switch (kind) {
        case SpanKind::admission:
            return "admission";
        case SpanKind::queue_wait:
            return "queue_wait";
        case SpanKind::batch_form:
            return "batch_form";
        case SpanKind::threshold_swap:
            return "threshold_swap";
        case SpanKind::forward:
            return "forward";
        case SpanKind::delivery:
            return "delivery";
    }
    return "unknown";
}

const Span* Trace::find(SpanKind kind) const {
    for (const Span& span : spans_) {
        if (span.kind == kind) {
            return &span;
        }
    }
    return nullptr;
}

bool Trace::ordered() const {
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        if (spans_[i].end < spans_[i].begin) {
            return false;
        }
        if (i > 0 && spans_[i].kind <= spans_[i - 1].kind) {
            return false;
        }
        if (i > 0 && spans_[i].begin < spans_[i - 1].begin) {
            return false;
        }
    }
    return true;
}

double Trace::total_us() const {
    if (spans_.empty()) {
        return 0.0;
    }
    return std::chrono::duration<double, std::micro>(spans_.back().end -
                                                     spans_.front().begin)
        .count();
}

std::string Trace::to_string() const {
    std::string out;
    for (const Span& span : spans_) {
        char line[96];
        std::snprintf(line, sizeof(line), "%s %.1fus\n",
                      obs::to_string(span.kind), span.duration_us());
        out += line;
    }
    return out;
}

}  // namespace mime::obs
