// Per-layer profile record produced by ForwardPlan::run when profiling
// is enabled (MimeNetwork::set_plan_profiling). One LayerProfile per
// plan step, accumulated across runs; the serving layer snapshots them
// into ServerStats::layer_profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mime::obs {

/// Accumulated cost of one plan step (conv1, bn1, act1, ..., fc3).
struct LayerProfile {
    std::string name;
    std::int64_t runs = 0;       ///< batches executed through this step
    double total_us = 0.0;       ///< wall time summed over runs
    std::int64_t skipped_macs = 0;  ///< MACs avoided by sparse execution
    std::int64_t dense_macs = 0;    ///< MACs a dense execution would do
    std::size_t workspace_bytes = 0;  ///< scratch bytes this step touches

    double mean_us() const {
        return runs > 0 ? total_us / static_cast<double>(runs) : 0.0;
    }
    /// Fraction of dense-equivalent MACs the sparse path skipped.
    double skipped_mac_fraction() const {
        return dense_macs > 0
                   ? static_cast<double>(skipped_macs) /
                         static_cast<double>(dense_macs)
                   : 0.0;
    }
};

}  // namespace mime::obs
