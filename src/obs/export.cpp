#include "obs/export.h"

#include <cctype>
#include <cstdio>

namespace mime::obs {

namespace {

std::string format_double(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
        out.insert(out.begin(), '_');
    }
    return out;
}

Json metrics_to_json(const std::vector<MetricSnapshot>& snapshot) {
    Json root;
    for (const MetricSnapshot& metric : snapshot) {
        switch (metric.type) {
            case MetricType::counter:
                root.set(metric.name,
                         static_cast<std::int64_t>(metric.value));
                break;
            case MetricType::gauge:
                root.set(metric.name, metric.value);
                break;
            case MetricType::histogram: {
                Json hist;
                hist.set("count", metric.count);
                hist.set("sum", metric.sum);
                std::vector<Json> buckets;
                std::int64_t cumulative = 0;
                for (std::size_t i = 0; i < metric.bucket_counts.size();
                     ++i) {
                    cumulative += metric.bucket_counts[i];
                    Json bucket;
                    bucket.set("le",
                               i < metric.bucket_upper_bounds.size()
                                   ? format_double(
                                         metric.bucket_upper_bounds[i])
                                   : std::string("+Inf"));
                    bucket.set("count", cumulative);
                    buckets.push_back(std::move(bucket));
                }
                hist.set("buckets", std::move(buckets));
                root.set(metric.name, std::move(hist));
                break;
            }
        }
    }
    return root;
}

std::string metrics_to_prometheus(
    const std::vector<MetricSnapshot>& snapshot) {
    std::string out;
    for (const MetricSnapshot& metric : snapshot) {
        const std::string name = prometheus_name(metric.name);
        if (!metric.help.empty()) {
            out += "# HELP " + name + " " + metric.help + "\n";
        }
        out += "# TYPE " + name + " ";
        out += to_string(metric.type);
        out += "\n";
        switch (metric.type) {
            case MetricType::counter:
                out += name + " " +
                       std::to_string(
                           static_cast<std::int64_t>(metric.value)) +
                       "\n";
                break;
            case MetricType::gauge:
                out += name + " " + format_double(metric.value) + "\n";
                break;
            case MetricType::histogram: {
                std::int64_t cumulative = 0;
                for (std::size_t i = 0; i < metric.bucket_counts.size();
                     ++i) {
                    cumulative += metric.bucket_counts[i];
                    const std::string le =
                        i < metric.bucket_upper_bounds.size()
                            ? format_double(metric.bucket_upper_bounds[i])
                            : std::string("+Inf");
                    out += name + "_bucket{le=\"" + le + "\"} " +
                           std::to_string(cumulative) + "\n";
                }
                out += name + "_sum " + format_double(metric.sum) + "\n";
                out += name + "_count " + std::to_string(metric.count) +
                       "\n";
                break;
            }
        }
    }
    return out;
}

}  // namespace mime::obs
