// Exporters for MetricsRegistry snapshots: a JSON tree (mime::Json,
// the same ordered writer bench artifacts use) and a Prometheus text
// exposition dump. Both operate on the plain-struct snapshot, so they
// never touch live atomics.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace mime::obs {

/// Sanitizes a metric name to the Prometheus charset [a-zA-Z0-9_:]
/// ('.' and any other character become '_'; a leading digit gains a
/// '_' prefix).
std::string prometheus_name(const std::string& name);

/// One JSON object keyed by metric name. Counters/gauges map to their
/// value; histograms to {count, sum, buckets:[{le, count}...]} with
/// cumulative bucket counts and a final le="+Inf".
Json metrics_to_json(const std::vector<MetricSnapshot>& snapshot);

/// Prometheus text exposition format: "# HELP" / "# TYPE" headers,
/// cumulative `_bucket{le="..."}` series plus `_sum` / `_count` for
/// histograms.
std::string metrics_to_prometheus(const std::vector<MetricSnapshot>& snapshot);

}  // namespace mime::obs
