// Runtime metrics registry for the serving stack.
//
// (Not to be confused with src/nn/metrics.h, which computes
// *model-quality* metrics — confusion matrices, per-class recall. This
// file is the *runtime* side: counters, gauges and histograms describing
// what the serving process is doing.)
//
// The registry is lock-light by construction: registration (naming a
// metric, choosing histogram buckets) takes a mutex once, returns a
// stable handle, and from then on the hot path is a relaxed atomic add
// on that handle — no lock, no lookup, no allocation. Handles live in
// deques owned by the registry, so they stay valid for the registry's
// lifetime no matter how many metrics are registered after them.
//
// Three metric types, mirroring the Prometheus data model so the
// exporters in src/obs/export.h are a direct mapping:
//   * Counter   — monotonically increasing int64 (requests served).
//   * Gauge     — last-write-wins double (workspace high-water bytes).
//   * Histogram — fixed upper-bound buckets chosen at registration,
//                 plus exact count and sum (batch sizes, latencies).
//
// snapshot() reads every metric with atomic loads and returns plain
// structs; it never blocks writers. A snapshot is per-metric consistent
// (each value is a real value that metric held), not cross-metric
// atomic — the same contract scrapers get from any live process.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace mime::obs {

/// Monotonically increasing counter. add() is a relaxed atomic add —
/// safe from any thread, never locks.
class Counter {
public:
    void add(std::int64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value. set()/add() are atomic; add()
/// uses a CAS loop so it stays portable to libstdc++ versions without
/// atomic<double>::fetch_add.
class Gauge {
public:
    void set(double value) noexcept {
        value_.store(value, std::memory_order_relaxed);
    }
    void add(double delta) noexcept {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed)) {
        }
    }
    double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` (strictly increasing) are
/// chosen once at registration; an implicit +inf bucket catches the
/// rest. observe() is a short scan over the bounds plus relaxed atomic
/// adds — no lock, no allocation.
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(double value) noexcept;

    const std::vector<double>& upper_bounds() const noexcept {
        return upper_bounds_;
    }
    /// Per-bucket (non-cumulative) count; index upper_bounds().size()
    /// is the +inf overflow bucket.
    std::int64_t bucket_count(std::size_t bucket) const noexcept;
    std::int64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

private:
    std::vector<double> upper_bounds_;
    std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds + 1
    std::atomic<std::int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

enum class MetricType { counter, gauge, histogram };

const char* to_string(MetricType type);

/// Plain-struct copy of one metric, as returned by
/// MetricsRegistry::snapshot(). For histograms, `bucket_counts` are
/// per-bucket (non-cumulative) with the +inf bucket last.
struct MetricSnapshot {
    std::string name;
    std::string help;
    MetricType type = MetricType::counter;
    double value = 0.0;  ///< counter / gauge reading
    std::vector<double> bucket_upper_bounds;
    std::vector<std::int64_t> bucket_counts;
    std::int64_t count = 0;  ///< histogram observation count
    double sum = 0.0;        ///< histogram observation sum
};

/// Named registry of counters / gauges / histograms. Register handles
/// once (construction time), hammer them from hot paths lock-free,
/// snapshot from any thread. Registering an existing name returns the
/// same handle; re-registering under a different type is a caller bug
/// (check_error).
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name, const std::string& help = "")
        MIME_EXCLUDES(mutex_);
    Gauge& gauge(const std::string& name, const std::string& help = "")
        MIME_EXCLUDES(mutex_);
    /// `upper_bounds` must be strictly increasing and non-empty; they
    /// are fixed for the metric's lifetime (a second registration of
    /// the same name ignores the bounds argument).
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds,
                         const std::string& help = "")
        MIME_EXCLUDES(mutex_);

    std::size_t size() const MIME_EXCLUDES(mutex_);
    /// Reads every metric (atomic loads; writers never block) in
    /// registration order.
    std::vector<MetricSnapshot> snapshot() const MIME_EXCLUDES(mutex_);

private:
    struct Entry {
        std::string name;
        std::string help;
        MetricType type;
        Counter* counter = nullptr;
        Gauge* gauge = nullptr;
        Histogram* histogram = nullptr;
    };

    const Entry* find_locked(const std::string& name, MetricType type) const
        MIME_REQUIRES(mutex_);

    mutable Mutex mutex_;
    /// Handle deques are append-only under mutex_; the handles
    /// themselves are lock-free atomics, deliberately read and written
    /// with no lock held (the registry's whole point), so they carry no
    /// GUARDED_BY — the registration bookkeeping below does.
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
    std::vector<Entry> entries_ MIME_GUARDED_BY(mutex_);
    std::map<std::string, std::size_t> index_ MIME_GUARDED_BY(mutex_);
};

}  // namespace mime::obs
