#include "arch/vgg.h"

#include <cmath>

#include "common/check.h"

namespace mime::arch {

std::int64_t scale_channels(std::int64_t channels, double width_scale) {
    MIME_REQUIRE(width_scale > 0.0 && width_scale <= 1.0,
                 "width_scale must be in (0, 1]");
    const auto scaled = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(channels) * width_scale));
    return std::max<std::int64_t>(4, scaled);
}

std::vector<LayerSpec> vgg16_spec(const VggConfig& config) {
    MIME_REQUIRE(config.input_size >= 32,
                 "VGG16 needs input_size >= 32 (five 2x2 pools)");
    MIME_REQUIRE(config.input_size % 32 == 0,
                 "input_size must be divisible by 32 so pooling is exact");

    // (block channel count, convs in block) per classic VGG16.
    struct Block {
        std::int64_t channels;
        int convs;
    };
    const Block blocks[] = {{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};

    std::vector<LayerSpec> layers;
    layers.reserve(15);

    std::int64_t in_c = config.input_channels;
    std::int64_t hw = config.input_size;
    int index = 1;
    for (const Block& block : blocks) {
        const std::int64_t out_c =
            scale_channels(block.channels, config.width_scale);
        for (int i = 0; i < block.convs; ++i, ++index) {
            LayerSpec spec;
            spec.name = "conv" + std::to_string(index);
            spec.kind = LayerKind::conv;
            spec.in_channels = in_c;
            spec.out_channels = out_c;
            spec.kernel = 3;
            spec.stride = 1;
            spec.padding = 1;
            spec.in_height = hw;
            spec.in_width = hw;
            spec.pool_after = (i == block.convs - 1);
            spec.validate();
            layers.push_back(spec);
            in_c = out_c;
        }
        hw /= 2;
    }

    // After five pools the map is (input_size/32)^2 spatial; the flattened
    // features feed two hidden FC layers named conv14 / conv15.
    const std::int64_t spatial = (config.input_size / 32);
    const std::int64_t flat = in_c * spatial * spatial;
    const std::int64_t fc_w = scale_channels(config.fc_width,
                                             config.width_scale);

    LayerSpec fc14;
    fc14.name = "conv14";
    fc14.kind = LayerKind::fc;
    fc14.in_channels = flat;
    fc14.out_channels = fc_w;
    fc14.in_height = 1;
    fc14.in_width = 1;
    fc14.validate();
    layers.push_back(fc14);

    LayerSpec fc15;
    fc15.name = "conv15";
    fc15.kind = LayerKind::fc;
    fc15.in_channels = fc_w;
    fc15.out_channels = fc_w;
    fc15.in_height = 1;
    fc15.in_width = 1;
    fc15.validate();
    layers.push_back(fc15);

    MIME_ENSURE(layers.size() == 15, "VGG16 must have 15 threshold layers");
    return layers;
}

LayerSpec vgg16_classifier(const VggConfig& config) {
    const auto layers = vgg16_spec(config);
    LayerSpec cls;
    cls.name = "classifier";
    cls.kind = LayerKind::fc;
    cls.in_channels = layers.back().out_channels;
    cls.out_channels = config.num_classes;
    cls.in_height = 1;
    cls.in_width = 1;
    cls.validate();
    return cls;
}

}  // namespace mime::arch
