#include "arch/layer_spec.h"

#include "common/check.h"

namespace mime::arch {

void LayerSpec::validate() const {
    MIME_REQUIRE(!name.empty(), "layer needs a name");
    MIME_REQUIRE(in_channels > 0 && out_channels > 0,
                 name + ": channel extents must be positive");
    MIME_REQUIRE(kernel > 0 && stride > 0 && padding >= 0,
                 name + ": kernel/stride/padding invalid");
    MIME_REQUIRE(in_height > 0 && in_width > 0,
                 name + ": input extents must be positive");
    MIME_REQUIRE(out_height() > 0 && out_width() > 0,
                 name + ": output extent non-positive");
    if (kind == LayerKind::fc) {
        MIME_REQUIRE(kernel == 1 && stride == 1 && padding == 0 &&
                         in_height == 1 && in_width == 1,
                     name + ": fc layers are 1x1 maps");
    }
}

std::int64_t total_weights(const std::vector<LayerSpec>& layers) {
    std::int64_t n = 0;
    for (const auto& l : layers) {
        n += l.weight_count();
    }
    return n;
}

std::int64_t total_neurons(const std::vector<LayerSpec>& layers) {
    std::int64_t n = 0;
    for (const auto& l : layers) {
        n += l.neuron_count();
    }
    return n;
}

std::int64_t total_macs(const std::vector<LayerSpec>& layers) {
    std::int64_t n = 0;
    for (const auto& l : layers) {
        n += l.mac_count();
    }
    return n;
}

}  // namespace mime::arch
