#include "arch/plain_cnn.h"

#include "common/check.h"

namespace mime::arch {

std::vector<LayerSpec> plain_cnn_spec(const PlainCnnConfig& config) {
    MIME_REQUIRE(!config.blocks.empty(), "plain CNN needs conv blocks");
    std::int64_t pooled = 1;
    for (std::size_t b = 0; b < config.blocks.size(); ++b) {
        pooled *= 2;
    }
    MIME_REQUIRE(config.input_size % pooled == 0 &&
                     config.input_size / pooled >= 1,
                 "input size must survive " +
                     std::to_string(config.blocks.size()) + " poolings");

    std::vector<LayerSpec> layers;
    std::int64_t in_c = config.input_channels;
    std::int64_t hw = config.input_size;
    int index = 1;
    for (const CnnBlock& block : config.blocks) {
        MIME_REQUIRE(block.channels > 0 && block.convs > 0,
                     "block extents must be positive");
        for (int i = 0; i < block.convs; ++i, ++index) {
            LayerSpec spec;
            spec.name = "conv" + std::to_string(index);
            spec.kind = LayerKind::conv;
            spec.in_channels = in_c;
            spec.out_channels = block.channels;
            spec.kernel = 3;
            spec.stride = 1;
            spec.padding = 1;
            spec.in_height = hw;
            spec.in_width = hw;
            spec.pool_after = (i == block.convs - 1);
            spec.validate();
            layers.push_back(spec);
            in_c = block.channels;
        }
        hw /= 2;
    }

    std::int64_t flat = in_c * hw * hw;
    for (const std::int64_t width : config.fc_widths) {
        MIME_REQUIRE(width > 0, "fc width must be positive");
        LayerSpec fc;
        fc.name = "fc" + std::to_string(index++);
        fc.kind = LayerKind::fc;
        fc.in_channels = flat;
        fc.out_channels = width;
        fc.validate();
        layers.push_back(fc);
        flat = width;
    }
    return layers;
}

LayerSpec plain_cnn_classifier(const PlainCnnConfig& config) {
    const auto layers = plain_cnn_spec(config);
    LayerSpec cls;
    cls.name = "classifier";
    cls.kind = LayerKind::fc;
    cls.in_channels = layers.back().kind == LayerKind::fc
                          ? layers.back().out_channels
                          : layers.back().neuron_count() / 4;  // post-pool
    if (layers.back().kind == LayerKind::conv) {
        // Conv output pools once more before flattening.
        cls.in_channels = layers.back().out_channels *
                          (layers.back().out_height() / 2) *
                          (layers.back().out_width() / 2);
    }
    cls.out_channels = config.num_classes;
    cls.validate();
    return cls;
}

}  // namespace mime::arch
