// Architecture-level layer descriptions.
//
// A LayerSpec captures the static geometry of one weight layer — enough
// for the trainable network builder (src/core) to instantiate it and for
// the systolic-array simulator (src/hw) to count weights, thresholds,
// MACs and traffic. Keeping this in its own small library lets the
// algorithm and hardware sides share one source of truth without
// depending on each other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mime::arch {

/// Kind of weight layer.
enum class LayerKind {
    conv,  ///< 2-D convolution
    fc     ///< fully connected (modeled as 1x1 conv on a 1x1 map)
};

/// Static geometry of one weight layer instance in a concrete network.
struct LayerSpec {
    std::string name;     ///< e.g. "conv5" (paper naming: fc layers are
                          ///< "conv14"/"conv15")
    LayerKind kind = LayerKind::conv;
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 1;   ///< 1 for fc
    std::int64_t stride = 1;
    std::int64_t padding = 0;
    std::int64_t in_height = 1;
    std::int64_t in_width = 1;
    bool pool_after = false;   ///< 2x2/stride-2 max pool follows

    std::int64_t out_height() const {
        return (in_height + 2 * padding - kernel) / stride + 1;
    }
    std::int64_t out_width() const {
        return (in_width + 2 * padding - kernel) / stride + 1;
    }

    /// Output neurons = threshold parameters (MIME keeps one threshold
    /// per output neuron; OS dataflow pins one neuron per PE).
    std::int64_t neuron_count() const {
        return out_channels * out_height() * out_width();
    }

    /// Weight parameters (no bias; the paper's storage model counts
    /// weights).
    std::int64_t weight_count() const {
        return out_channels * in_channels * kernel * kernel;
    }

    /// Dense multiply-accumulate count for one input sample.
    std::int64_t mac_count() const {
        return neuron_count() * in_channels * kernel * kernel;
    }

    /// MACs contributing to a single output neuron.
    std::int64_t macs_per_neuron() const {
        return in_channels * kernel * kernel;
    }

    /// Throws unless the geometry is self-consistent.
    void validate() const;
};

/// Sum of weight parameters across layers.
std::int64_t total_weights(const std::vector<LayerSpec>& layers);

/// Sum of output neurons (= thresholds) across layers.
std::int64_t total_neurons(const std::vector<LayerSpec>& layers);

/// Sum of dense MACs across layers for one sample.
std::int64_t total_macs(const std::vector<LayerSpec>& layers);

}  // namespace mime::arch
