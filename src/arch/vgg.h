// VGG16 geometry, following the paper's layer naming.
//
// The paper's VGG16 counts 15 threshold-bearing layers: conv1..conv13
// are the classic 13 convolutions; the two hidden fully-connected layers
// are named conv14 and conv15 (they behave as 1x1 convolutions under the
// OS dataflow). The final classifier layer produces logits and carries no
// threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/layer_spec.h"

namespace mime::arch {

/// Configuration of a VGG16 instance.
struct VggConfig {
    std::int64_t input_size = 32;      ///< square input H = W
    std::int64_t input_channels = 3;
    std::int64_t num_classes = 10;
    /// Channel multiplier; 1.0 is the paper's full-size network, smaller
    /// values give CPU-trainable "VGG16-mini" variants with identical
    /// topology. Channel counts are rounded up and floored at 4.
    double width_scale = 1.0;
    /// Width of the two hidden FC layers (conv14/conv15) before scaling.
    std::int64_t fc_width = 512;
};

/// The 15 threshold-bearing layers (13 conv + 2 fc) of VGG16, in order.
/// Pooling positions follow the classic 2-2-3-3-3 block structure.
std::vector<LayerSpec> vgg16_spec(const VggConfig& config = {});

/// The classifier layer (logits; no threshold). Provided separately so
/// storage and compute models can include or exclude it explicitly.
LayerSpec vgg16_classifier(const VggConfig& config = {});

/// Applies `width_scale` rounding exactly as vgg16_spec does; exposed for
/// tests.
std::int64_t scale_channels(std::int64_t channels, double width_scale);

}  // namespace mime::arch
