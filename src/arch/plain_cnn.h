// Generic plain-CNN architecture builder.
//
// The paper evaluates VGG16 only; MIME itself applies to any
// conv-stack-plus-fc classifier. This builder emits LayerSpec stacks for
// arbitrary block structures so the trainable network, storage model and
// hardware simulator can all run non-VGG backbones (used by tests and
// the generality examples).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/layer_spec.h"

namespace mime::arch {

/// One conv block: `convs` 3x3 convolutions at `channels`, followed by a
/// 2x2/stride-2 max pool.
struct CnnBlock {
    std::int64_t channels = 64;
    int convs = 2;
};

struct PlainCnnConfig {
    std::int64_t input_size = 32;  ///< must be divisible by 2^blocks
    std::int64_t input_channels = 3;
    std::vector<CnnBlock> blocks{{32, 2}, {64, 2}, {128, 2}};
    /// Hidden fc widths appended after the conv stack (threshold-bearing,
    /// like the paper's conv14/conv15). May be empty.
    std::vector<std::int64_t> fc_widths{128};
    std::int64_t num_classes = 10;
};

/// Threshold-bearing layers (convs + hidden fcs) of the plain CNN, named
/// conv1..convN then fcN+1... following the paper's convention.
std::vector<LayerSpec> plain_cnn_spec(const PlainCnnConfig& config);

/// The classifier layer (no threshold).
LayerSpec plain_cnn_classifier(const PlainCnnConfig& config);

}  // namespace mime::arch
