// General matrix multiplication, the compute kernel behind Linear and
// (via im2col) Conv2d layers.
//
// The blocked kernel carries SIMD microkernels selected at compile time
// (AVX2+FMA when the translation unit is built with those ISA flags —
// see MIME_ENABLE_SIMD in CMakeLists.txt — scalar otherwise); the
// `gemm_reference` triple loop stays as the oracle tests validate
// against. `gemm_rows` is the row-compacted entry point behind MIME's
// sparse planned executor: it contracts over a caller-supplied live-row
// index set only, skipping the multiply-accumulates of rows a threshold
// mask provably zeroed.
#pragma once

#include <cstdint>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace mime {

/// C[M,N] = alpha * op(A)[M,K] * op(B)[K,N] + beta * C[M,N]
///
/// Row-major storage with leading dimensions lda/ldb/ldc (the stride
/// between consecutive rows of the *stored* matrix, i.e. before any
/// transpose). `pool` may be null for single-threaded execution; when
/// provided, work is split across rows of C.
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, ThreadPool* pool = nullptr);

/// Row-compacted GEMM: contracts over the `row_count` indices in `rows`
/// only, i.e.
///   C[i,j] = alpha * sum_p op(A)[i, rows[p]] * op(B)[rows[p], j]
///            + beta * C[i,j].
///
/// `rows` must be strictly ascending indices into [0, k) where k is the
/// full contraction extent of the dense problem (used for validation
/// only — the skipped rows are never touched, so the dead rows of a
/// caller's B buffer may hold garbage). With beta == 0 the result
/// bit-matches the dense gemm() whenever every skipped row contributes
/// exactly zero (op(B) row all zeros, or op(A) column all zeros): both
/// kernels share the same microkernel tiling, each output element's FMA
/// chain visits the surviving terms in the same order, and a zero term
/// never perturbs an accumulator that started from +0.
void gemm_rows(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::int64_t* rows,
               std::int64_t row_count, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb, float beta,
               float* c, std::int64_t ldc, ThreadPool* pool = nullptr);

/// The microkernel variant this build selected at compile time
/// ("avx2+fma" or "scalar"); benches report it next to their numbers.
const char* gemm_kernel_name();

/// Tensor-level 2-D matmul: returns A[M,K] * B[K,N]. Both operands must be
/// rank-2.
Tensor matmul(const Tensor& a, const Tensor& b, ThreadPool* pool = nullptr);

/// Reference O(M*N*K) triple loop used by tests to validate the blocked
/// kernel.
void gemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace mime
