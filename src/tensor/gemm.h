// General matrix multiplication, the compute kernel behind Linear and
// (via im2col) Conv2d layers.
#pragma once

#include <cstdint>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace mime {

/// C[M,N] = alpha * op(A)[M,K] * op(B)[K,N] + beta * C[M,N]
///
/// Row-major storage with leading dimensions lda/ldb/ldc (the stride
/// between consecutive rows of the *stored* matrix, i.e. before any
/// transpose). `pool` may be null for single-threaded execution; when
/// provided, work is split across rows of C.
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, ThreadPool* pool = nullptr);

/// Tensor-level 2-D matmul: returns A[M,K] * B[K,N]. Both operands must be
/// rank-2.
Tensor matmul(const Tensor& a, const Tensor& b, ThreadPool* pool = nullptr);

/// Reference O(M*N*K) triple loop used by tests to validate the blocked
/// kernel.
void gemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace mime
