#include "tensor/shape.h"

#include "common/check.h"

namespace mime {

namespace {
void validate(const std::vector<std::int64_t>& dims) {
    for (const auto d : dims) {
        MIME_REQUIRE(d > 0, "shape extents must be positive, got " +
                                std::to_string(d));
    }
}
}  // namespace

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
    validate(dims_);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate(dims_);
}

std::int64_t Shape::dim(std::int64_t axis) const {
    const std::int64_t r = rank();
    if (axis < 0) {
        axis += r;
    }
    MIME_REQUIRE(axis >= 0 && axis < r,
                 "axis " + std::to_string(axis) + " out of range for rank " +
                     std::to_string(r));
    return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t Shape::numel() const noexcept {
    std::int64_t n = 1;
    for (const auto d : dims_) {
        n *= d;
    }
    return n;
}

std::string Shape::to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0) {
            s += ", ";
        }
        s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
}

}  // namespace mime
