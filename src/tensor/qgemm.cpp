#include "tensor/qgemm.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/check.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define MIME_QGEMM_AVX2 1
#endif

namespace mime {

namespace {

// Band granularity for the pool split (and the threshold below which a
// pool is not worth waking: quantized conv/linear GEMMs have tiny M).
constexpr std::int64_t kQBlockM = 64;

inline std::int64_t stored_row(const std::int64_t* rows, std::int64_t p) {
    return rows != nullptr ? rows[p] : p;
}

#if defined(MIME_QGEMM_AVX2)

// Packs two sign-extended int8 A values into one i32 lane pattern
// [a0 as low i16 | a1 as high i16] for vpmaddwd. Unsigned math keeps
// the shift well-defined under UBSan; the uint->int conversion is
// two's-complement by C++20.
inline std::int32_t a_pair_combo(std::int8_t a0, std::int8_t a1) {
    const auto lo = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(a0)) &
                    0xFFFFu;
    const auto hi = static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(a1))
                    << 16;
    return static_cast<std::int32_t>(hi | lo);
}

// One register tile: R rows (R in 1..4) by 16 columns of C, contracting
// over the whole (possibly compacted) row list. B rows are widened to
// i16 and interleaved per k-pair in registers — vpmaddwd then computes
// a0*b[k0][j] + a1*b[k1][j] per i32 lane with no saturation (|operand|
// <= 127, so each pair sum is at most 2*127^2, exact in i32). The
// unpack puts columns in the order {0-3, 8-11} / {4-7, 12-15}; the
// permute at store time restores linear order.
template <int R>
inline void qtile16(const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                    std::int64_t ldc, std::int64_t i0, std::int64_t j0,
                    const std::int64_t* rows, std::int64_t row_count) {
    __m256i acc_lo[R];
    __m256i acc_hi[R];
    for (int r = 0; r < R; ++r) {
        acc_lo[r] = _mm256_setzero_si256();
        acc_hi[r] = _mm256_setzero_si256();
    }
    std::int64_t p = 0;
    for (; p + 2 <= row_count; p += 2) {
        const std::int64_t k0 = stored_row(rows, p);
        const std::int64_t k1 = stored_row(rows, p + 1);
        const __m256i w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + k0 * ldb + j0)));
        const __m256i w1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + k1 * ldb + j0)));
        const __m256i blo = _mm256_unpacklo_epi16(w0, w1);
        const __m256i bhi = _mm256_unpackhi_epi16(w0, w1);
        for (int r = 0; r < R; ++r) {
            const std::int8_t* arow = a + (i0 + r) * lda;
            const __m256i av =
                _mm256_set1_epi32(a_pair_combo(arow[k0], arow[k1]));
            acc_lo[r] =
                _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(av, blo));
            acc_hi[r] =
                _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(av, bhi));
        }
    }
    if (p < row_count) {
        // Odd contraction tail: pair the last row with an implicit zero
        // row (a1 = 0 contributes nothing through vpmaddwd).
        const std::int64_t k0 = stored_row(rows, p);
        const __m256i w0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(b + k0 * ldb + j0)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i blo = _mm256_unpacklo_epi16(w0, zero);
        const __m256i bhi = _mm256_unpackhi_epi16(w0, zero);
        for (int r = 0; r < R; ++r) {
            const __m256i av = _mm256_set1_epi32(
                a_pair_combo(a[(i0 + r) * lda + k0], 0));
            acc_lo[r] =
                _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(av, blo));
            acc_hi[r] =
                _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(av, bhi));
        }
    }
    for (int r = 0; r < R; ++r) {
        std::int32_t* crow = c + (i0 + r) * ldc + j0;
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow),
            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(crow + 8),
            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
    }
}

void qgemm_band(std::int64_t m0, std::int64_t m1, std::int64_t n,
                const std::int64_t* rows, std::int64_t row_count,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, std::int32_t* c, std::int64_t ldc) {
    const std::int64_t n16 = n - n % 16;
    for (std::int64_t i = m0; i < m1; i += 4) {
        const std::int64_t rows_n = std::min<std::int64_t>(4, m1 - i);
        for (std::int64_t j = 0; j < n16; j += 16) {
            switch (rows_n) {
                case 4:
                    qtile16<4>(a, lda, b, ldb, c, ldc, i, j, rows, row_count);
                    break;
                case 3:
                    qtile16<3>(a, lda, b, ldb, c, ldc, i, j, rows, row_count);
                    break;
                case 2:
                    qtile16<2>(a, lda, b, ldb, c, ldc, i, j, rows, row_count);
                    break;
                default:
                    qtile16<1>(a, lda, b, ldb, c, ldc, i, j, rows, row_count);
                    break;
            }
        }
        // Column tail: exact integer math makes any accumulation order
        // equivalent, so a plain scalar loop needs no order matching.
        for (std::int64_t r = 0; r < rows_n; ++r) {
            const std::int8_t* arow = a + (i + r) * lda;
            std::int32_t* crow = c + (i + r) * ldc;
            for (std::int64_t j = n16; j < n; ++j) {
                std::int32_t acc = 0;
                for (std::int64_t p = 0; p < row_count; ++p) {
                    const std::int64_t k = stored_row(rows, p);
                    acc += static_cast<std::int32_t>(arow[k]) *
                           static_cast<std::int32_t>(b[k * ldb + j]);
                }
                crow[j] = acc;
            }
        }
    }
}

#else  // scalar fallback

void qgemm_band(std::int64_t m0, std::int64_t m1, std::int64_t n,
                const std::int64_t* rows, std::int64_t row_count,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, std::int32_t* c, std::int64_t ldc) {
    for (std::int64_t i = m0; i < m1; ++i) {
        std::int32_t* crow = c + i * ldc;
        std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(*crow));
        const std::int8_t* arow = a + i * lda;
        for (std::int64_t p = 0; p < row_count; ++p) {
            const std::int64_t k = stored_row(rows, p);
            const auto av = static_cast<std::int32_t>(arow[k]);
            if (av == 0) {
                continue;
            }
            const std::int8_t* brow = b + k * ldb;
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] += av * static_cast<std::int32_t>(brow[j]);
            }
        }
    }
}

#endif

void qgemm_dispatch(std::int64_t m, std::int64_t n, const std::int64_t* rows,
                    std::int64_t row_count, const std::int8_t* a,
                    std::int64_t lda, const std::int8_t* b, std::int64_t ldb,
                    std::int32_t* c, std::int64_t ldc, ThreadPool* pool) {
    if (pool == nullptr || pool->size() <= 1 || m < 2 * kQBlockM) {
        qgemm_band(0, m, n, rows, row_count, a, lda, b, ldb, c, ldc);
        return;
    }
    const std::int64_t bands =
        std::min<std::int64_t>(static_cast<std::int64_t>(pool->size()),
                               (m + kQBlockM - 1) / kQBlockM);
    const std::int64_t band_rows = (m + bands - 1) / bands;
    for (std::int64_t b0 = 0; b0 < m; b0 += band_rows) {
        const std::int64_t b1 = std::min(b0 + band_rows, m);
        pool->submit([=] {
            qgemm_band(b0, b1, n, rows, row_count, a, lda, b, ldb, c, ldc);
        });
    }
    pool->wait_idle();
}

void validate_common(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, const std::int8_t* b,
                     const std::int32_t* c) {
    MIME_REQUIRE(m >= 0 && n >= 0 && k >= 0, "qgemm dimensions must be >= 0");
    MIME_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "qgemm operands must be non-null");
    MIME_REQUIRE(k <= kQgemmMaxK,
                 "qgemm contraction depth " + std::to_string(k) +
                     " could overflow int32 accumulators (max " +
                     std::to_string(kQgemmMaxK) + ")");
}

}  // namespace

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
           std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
           ThreadPool* pool) {
    validate_common(m, n, k, a, b, c);
    if (m == 0 || n == 0) {
        return;
    }
    qgemm_dispatch(m, n, /*rows=*/nullptr, k, a, lda, b, ldb, c, ldc, pool);
}

void qgemm_rows(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int64_t* rows, std::int64_t row_count,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
                ThreadPool* pool) {
    validate_common(m, n, k, a, b, c);
    MIME_REQUIRE(row_count >= 0 && row_count <= k,
                 "qgemm_rows row_count must be in [0, k]");
    MIME_REQUIRE(rows != nullptr || row_count == 0,
                 "qgemm_rows needs a row list unless row_count is 0");
    for (std::int64_t p = 0; p < row_count; ++p) {
        MIME_REQUIRE(rows[p] >= 0 && rows[p] < k &&
                         (p == 0 || rows[p] > rows[p - 1]),
                     "qgemm_rows row indices must be strictly ascending "
                     "within [0, k)");
    }
    if (m == 0 || n == 0) {
        return;
    }
    // An empty live set writes C = 0 (the contraction over nothing),
    // matching the dense kernel against an all-zero operand.
    qgemm_dispatch(m, n, rows, row_count, a, lda, b, ldb, c, ldc, pool);
}

const char* qgemm_kernel_name() {
#if defined(MIME_QGEMM_AVX2)
    return "avx2-int8";
#else
    return "scalar";
#endif
}

void qgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc) {
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::int64_t p = 0; p < k; ++p) {
                acc += static_cast<std::int64_t>(a[i * lda + p]) *
                       static_cast<std::int64_t>(b[p * ldb + j]);
            }
            c[i * ldc + j] = static_cast<std::int32_t>(acc);
        }
    }
}

}  // namespace mime
