// Workspace: a bump arena for forward-pass scratch memory.
//
// The planned executor (core/forward_plan.h) sizes every buffer a
// forward pass needs ahead of time; what remains at execution time is
// transient scratch — im2col column matrices, mostly — whose lifetime
// nests perfectly per layer. A bump arena fits that exactly: alloc is a
// pointer increment, freeing is rewinding to a checkpoint, and the
// high-water mark reports the steady-state footprint the serving stats
// publish next to sparsity.
//
// Invariants the executor leans on:
//   * alloc never moves previously handed-out memory (no growth while
//     any allocation is live — reserve() is only legal at offset 0), so
//     raw float* stay valid until the matching rewind;
//   * alloc beyond the reserved capacity is a checked error, never a
//     silent heap allocation — the plan's byte accounting must be exact
//     or the run aborts loudly;
//   * allocations are rounded up to whole cachelines so two layers'
//     scratch regions never interleave within one line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace mime {

/// Bump arena handing out float scratch with checkpoint/rewind
/// semantics and peak-bytes accounting.
class Workspace {
public:
    Workspace() = default;
    explicit Workspace(std::size_t bytes) { reserve(bytes); }

    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;
    // Moves must zero the source's size fields along with releasing its
    // block — a defaulted move would leave the source claiming capacity
    // it no longer backs, and its next alloc would hand out null.
    Workspace(Workspace&& other) noexcept
        : block_(std::move(other.block_)),
          capacity_floats_(std::exchange(other.capacity_floats_, 0)),
          offset_floats_(std::exchange(other.offset_floats_, 0)),
          peak_floats_(std::exchange(other.peak_floats_, 0)) {}
    Workspace& operator=(Workspace&& other) noexcept {
        if (this != &other) {
            block_ = std::move(other.block_);
            capacity_floats_ = std::exchange(other.capacity_floats_, 0);
            offset_floats_ = std::exchange(other.offset_floats_, 0);
            peak_floats_ = std::exchange(other.peak_floats_, 0);
        }
        return *this;
    }

    /// Position of the bump pointer; hand it back to rewind() to free
    /// everything allocated after it.
    struct Checkpoint {
        std::size_t offset_floats = 0;
    };

    /// Grows capacity to at least `bytes`. Only legal while nothing is
    /// allocated (offset 0): growth reallocates the block and would
    /// dangle every outstanding pointer.
    void reserve(std::size_t bytes);

    /// Returns `count` floats of scratch (rounded up to whole
    /// cachelines). The memory is uninitialized. Throws when the
    /// reserved capacity is exceeded (the caller's size planning was
    /// wrong) — never allocates.
    float* alloc_floats(std::int64_t count);

    /// Byte-granular variant for non-float scratch (int8 activation
    /// slabs, int32 accumulators): returns `bytes` of cacheline-aligned
    /// uninitialized scratch, consuming aligned_bytes(bytes) of arena —
    /// an int8 slab costs its own footprint, not 4x it. Same overflow
    /// and checkpoint/rewind semantics as alloc_floats (the two
    /// interleave freely).
    void* alloc_bytes(std::size_t bytes);

    /// Typed convenience over alloc_bytes.
    template <typename T>
    T* alloc(std::int64_t count) {
        return static_cast<T*>(
            alloc_bytes(static_cast<std::size_t>(count) * sizeof(T)));
    }

    Checkpoint checkpoint() const noexcept { return {offset_floats_}; }

    /// Frees every allocation made after `mark` (LIFO discipline).
    void rewind(Checkpoint mark);

    /// Frees everything (rewind to offset 0).
    void reset() noexcept { offset_floats_ = 0; }

    std::size_t capacity_bytes() const noexcept {
        return capacity_floats_ * sizeof(float);
    }
    std::size_t used_bytes() const noexcept {
        return offset_floats_ * sizeof(float);
    }
    /// High-water mark of used_bytes() over the workspace's lifetime —
    /// the steady-state scratch footprint of whatever ran through it.
    std::size_t peak_bytes() const noexcept {
        return peak_floats_ * sizeof(float);
    }

    /// Rounds a float count up to a whole number of cachelines; the
    /// plan's byte accounting must use the same rounding as alloc.
    static std::size_t aligned_floats(std::int64_t count);

    /// Rounds a byte count up to a whole number of cachelines — the
    /// arena cost of one alloc_bytes(bytes) call.
    static std::size_t aligned_bytes(std::size_t bytes) {
        return (bytes + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
    }

    /// Cacheline size the block base and every allocation align to.
    static constexpr std::size_t kAlignBytes = 64;

private:
    struct AlignedDelete {
        void operator()(float* p) const noexcept {
            ::operator delete[](p, std::align_val_t{kAlignBytes});
        }
    };

    std::unique_ptr<float[], AlignedDelete> block_;
    std::size_t capacity_floats_ = 0;
    std::size_t offset_floats_ = 0;
    std::size_t peak_floats_ = 0;
};

}  // namespace mime
