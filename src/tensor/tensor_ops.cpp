#include "tensor/tensor_ops.h"

#include <cmath>

#include "common/check.h"

namespace mime {

namespace {
void require_rank2(const Tensor& t, const char* op) {
    MIME_REQUIRE(t.shape().rank() == 2,
                 std::string(op) + " requires a rank-2 tensor, got " +
                     t.shape().to_string());
}

Shape drop_leading_axis(const Shape& s) {
    MIME_REQUIRE(s.rank() >= 1, "batched tensor must have a leading axis");
    std::vector<std::int64_t> dims(s.dims().begin() + 1, s.dims().end());
    if (dims.empty()) {
        return Shape{};
    }
    return Shape(std::move(dims));
}
}  // namespace

Tensor softmax_rows(const Tensor& logits) {
    require_rank2(logits, "softmax_rows");
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.shape().dim(1);
    Tensor out(logits.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = logits.data() + r * cols;
        float* o = out.data() + r * cols;
        float row_max = in[0];
        for (std::int64_t c = 1; c < cols; ++c) {
            row_max = std::max(row_max, in[c]);
        }
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] = std::exp(in[c] - row_max);
            denom += o[c];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] *= inv;
        }
    }
    return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
    require_rank2(logits, "log_softmax_rows");
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.shape().dim(1);
    Tensor out(logits.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = logits.data() + r * cols;
        float* o = out.data() + r * cols;
        float row_max = in[0];
        for (std::int64_t c = 1; c < cols; ++c) {
            row_max = std::max(row_max, in[c]);
        }
        double denom = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            denom += std::exp(static_cast<double>(in[c] - row_max));
        }
        const float log_denom = static_cast<float>(std::log(denom)) + row_max;
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] = in[c] - log_denom;
        }
    }
    return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& t) {
    require_rank2(t, "argmax_rows");
    const std::int64_t rows = t.shape().dim(0);
    const std::int64_t cols = t.shape().dim(1);
    std::vector<std::int64_t> result(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* in = t.data() + r * cols;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < cols; ++c) {
            if (in[c] > in[best]) {
                best = c;
            }
        }
        result[static_cast<std::size_t>(r)] = best;
    }
    return result;
}

Tensor batch_slice(const Tensor& batch, std::int64_t n) {
    const std::int64_t batch_size = batch.shape().dim(0);
    MIME_REQUIRE(n >= 0 && n < batch_size,
                 "batch index " + std::to_string(n) + " out of range for " +
                     batch.shape().to_string());
    const Shape sample_shape = drop_leading_axis(batch.shape());
    const std::int64_t stride = sample_shape.numel();
    std::vector<float> values(
        batch.data() + n * stride, batch.data() + (n + 1) * stride);
    return Tensor(sample_shape, std::move(values));
}

void batch_assign(Tensor& batch, std::int64_t n, const Tensor& sample) {
    const std::int64_t batch_size = batch.shape().dim(0);
    MIME_REQUIRE(n >= 0 && n < batch_size,
                 "batch index " + std::to_string(n) + " out of range for " +
                     batch.shape().to_string());
    const Shape sample_shape = drop_leading_axis(batch.shape());
    MIME_REQUIRE(sample.shape() == sample_shape,
                 "sample shape " + sample.shape().to_string() +
                     " does not match batch slot " + sample_shape.to_string());
    const std::int64_t stride = sample_shape.numel();
    float* dst = batch.data() + n * stride;
    const float* src = sample.data();
    for (std::int64_t i = 0; i < stride; ++i) {
        dst[i] = src[i];
    }
}

Tensor stack(const std::vector<Tensor>& samples) {
    MIME_REQUIRE(!samples.empty(), "stack requires at least one sample");
    const Shape& s0 = samples.front().shape();
    std::vector<std::int64_t> dims;
    dims.push_back(static_cast<std::int64_t>(samples.size()));
    dims.insert(dims.end(), s0.dims().begin(), s0.dims().end());
    Tensor out{Shape(std::move(dims))};
    for (std::size_t i = 0; i < samples.size(); ++i) {
        MIME_REQUIRE(samples[i].shape() == s0,
                     "stack requires uniform sample shapes");
        batch_assign(out, static_cast<std::int64_t>(i), samples[i]);
    }
    return out;
}

}  // namespace mime
