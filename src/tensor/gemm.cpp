#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mime {

namespace {

// Cache-blocking parameters chosen for float32 on typical 32KiB L1 /
// 1MiB L2 caches; correctness does not depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

inline float load(const float* p, std::int64_t ld, std::int64_t row,
                  std::int64_t col, bool transposed) {
    return transposed ? p[col * ld + row] : p[row * ld + col];
}

// Computes one row-band [m0, m1) of C without any threading.
void gemm_band(bool trans_a, bool trans_b, std::int64_t m0, std::int64_t m1,
               std::int64_t n, std::int64_t k, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb, float beta,
               float* c, std::int64_t ldc) {
    // Scale C by beta once up front.
    for (std::int64_t i = m0; i < m1; ++i) {
        float* crow = c + i * ldc;
        if (beta == 0.0f) {
            std::fill(crow, crow + n, 0.0f);
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] *= beta;
            }
        }
    }

    // Pack a K-block of op(A) rows so the inner loop streams contiguously
    // regardless of the transpose flag.
    std::vector<float> a_pack;
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
        const std::int64_t kend = std::min(kk + kBlockK, k);
        for (std::int64_t ii = m0; ii < m1; ii += kBlockM) {
            const std::int64_t iend = std::min(ii + kBlockM, m1);
            const std::int64_t pack_rows = iend - ii;
            const std::int64_t pack_cols = kend - kk;
            a_pack.assign(
                static_cast<std::size_t>(pack_rows * pack_cols), 0.0f);
            for (std::int64_t i = 0; i < pack_rows; ++i) {
                for (std::int64_t p = 0; p < pack_cols; ++p) {
                    a_pack[static_cast<std::size_t>(i * pack_cols + p)] =
                        load(a, lda, ii + i, kk + p, trans_a);
                }
            }
            for (std::int64_t jj = 0; jj < n; jj += kBlockN) {
                const std::int64_t jend = std::min(jj + kBlockN, n);
                for (std::int64_t i = 0; i < pack_rows; ++i) {
                    float* crow = c + (ii + i) * ldc;
                    const float* arow =
                        a_pack.data() + i * pack_cols;
                    for (std::int64_t p = 0; p < pack_cols; ++p) {
                        const float av = alpha * arow[p];
                        if (av == 0.0f) {
                            continue;
                        }
                        if (!trans_b) {
                            const float* brow = b + (kk + p) * ldb;
                            for (std::int64_t j = jj; j < jend; ++j) {
                                crow[j] += av * brow[j];
                            }
                        } else {
                            for (std::int64_t j = jj; j < jend; ++j) {
                                crow[j] += av * b[j * ldb + (kk + p)];
                            }
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, ThreadPool* pool) {
    MIME_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dimensions must be >= 0");
    MIME_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "gemm operands must be non-null");
    if (m == 0 || n == 0) {
        return;
    }

    if (pool == nullptr || pool->size() <= 1 || m < 2 * kBlockM) {
        gemm_band(trans_a, trans_b, 0, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
        return;
    }

    const std::int64_t bands =
        std::min<std::int64_t>(static_cast<std::int64_t>(pool->size()),
                               (m + kBlockM - 1) / kBlockM);
    const std::int64_t band_rows = (m + bands - 1) / bands;
    for (std::int64_t b0 = 0; b0 < m; b0 += band_rows) {
        const std::int64_t b1 = std::min(b0 + band_rows, m);
        pool->submit([=] {
            gemm_band(trans_a, trans_b, b0, b1, n, k, alpha, a, lda, b, ldb,
                      beta, c, ldc);
        });
    }
    pool->wait_idle();
}

Tensor matmul(const Tensor& a, const Tensor& b, ThreadPool* pool) {
    MIME_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul requires rank-2 operands, got " +
                     a.shape().to_string() + " and " + b.shape().to_string());
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    MIME_REQUIRE(b.shape().dim(0) == k,
                 "matmul inner dimensions differ: " + a.shape().to_string() +
                     " vs " + b.shape().to_string());
    const std::int64_t n = b.shape().dim(1);
    Tensor c({m, n});
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
         n, pool);
    return c;
}

void gemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
                const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
                acc += static_cast<double>(av) * static_cast<double>(bv);
            }
            c[i * ldc + j] = static_cast<float>(
                alpha * acc + static_cast<double>(beta) * c[i * ldc + j]);
        }
    }
}

}  // namespace mime
