#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define MIME_GEMM_AVX2 1
#endif

namespace mime {

namespace {

// Cache-blocking parameters chosen for float32 on typical 32KiB L1 /
// 1MiB L2 caches; correctness does not depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

inline float load(const float* p, std::int64_t ld, std::int64_t row,
                  std::int64_t col, bool transposed) {
    return transposed ? p[col * ld + row] : p[row * ld + col];
}

// Packing scratch lives per thread so a pool-banded gemm never shares
// (or repeatedly reallocates) pack buffers; capacity is retained across
// calls, so the serving hot path stops paying a heap allocation per
// conv sample that the old per-call std::vector cost.
thread_local std::vector<float> tl_a_pack;
thread_local std::vector<float> tl_b_pack;

// One row of the microkernel: c[jj:jend) += sum_p arow[p] * brows[p][j],
// with arow already alpha-scaled. Dense and row-compacted execution both
// funnel through this exact loop nest, which is what makes the sparse
// path bit-match the dense one: for a given output element the FMA chain
// visits the same surviving p's in the same order, and the terms the
// sparse path drops are exactly zero in the dense run (a +0 accumulator
// is unchanged by adding ±0, and cancellation can only produce +0 in
// round-to-nearest, never -0).
#if defined(MIME_GEMM_AVX2)
inline void micro_row(float* crow, const float* arow,
                      const float* const* brows, std::int64_t pack_cols,
                      std::int64_t jj, std::int64_t jend) {
    std::int64_t j = jj;
    for (; j + 16 <= jend; j += 16) {
        __m256 acc0 = _mm256_loadu_ps(crow + j);
        __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
        for (std::int64_t p = 0; p < pack_cols; ++p) {
            const float av = arow[p];
            if (av == 0.0f) {
                continue;
            }
            const __m256 a_vec = _mm256_set1_ps(av);
            const float* brow = brows[p] + j;
            acc0 = _mm256_fmadd_ps(a_vec, _mm256_loadu_ps(brow), acc0);
            acc1 = _mm256_fmadd_ps(a_vec, _mm256_loadu_ps(brow + 8), acc1);
        }
        _mm256_storeu_ps(crow + j, acc0);
        _mm256_storeu_ps(crow + j + 8, acc1);
    }
    for (; j + 8 <= jend; j += 8) {
        __m256 acc = _mm256_loadu_ps(crow + j);
        for (std::int64_t p = 0; p < pack_cols; ++p) {
            const float av = arow[p];
            if (av == 0.0f) {
                continue;
            }
            acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                                  _mm256_loadu_ps(brows[p] + j), acc);
        }
        _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < jend; ++j) {
        float acc = crow[j];
        for (std::int64_t p = 0; p < pack_cols; ++p) {
            const float av = arow[p];
            if (av == 0.0f) {
                continue;
            }
            acc = std::fma(av, brows[p][j], acc);
        }
        crow[j] = acc;
    }
}
#else
inline void micro_row(float* crow, const float* arow,
                      const float* const* brows, std::int64_t pack_cols,
                      std::int64_t jj, std::int64_t jend) {
    for (std::int64_t j = jj; j < jend; ++j) {
        float acc = crow[j];
        for (std::int64_t p = 0; p < pack_cols; ++p) {
            const float av = arow[p];
            if (av == 0.0f) {
                continue;
            }
            acc = std::fma(av, brows[p][j], acc);
        }
        crow[j] = acc;
    }
}
#endif

// Computes one row-band [m0, m1) of C without any threading. `rows`
// restricts the contraction to the listed stored indices (identity when
// null, in which case the contraction length is `row_count` itself).
void gemm_band(bool trans_a, bool trans_b, std::int64_t m0, std::int64_t m1,
               std::int64_t n, const std::int64_t* rows,
               std::int64_t row_count, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb, float beta,
               float* c, std::int64_t ldc) {
    // Scale C by beta once up front.
    for (std::int64_t i = m0; i < m1; ++i) {
        float* crow = c + i * ldc;
        if (beta == 0.0f) {
            std::fill(crow, crow + n, 0.0f);
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] *= beta;
            }
        }
    }

    std::vector<float>& a_pack = tl_a_pack;
    std::vector<float>& b_pack = tl_b_pack;
    const float* brows[kBlockK];

    // Blocking runs over *positions* in the (possibly compacted) row
    // list, so the per-output accumulation order is the ascending stored
    // index order for dense and compacted execution alike.
    for (std::int64_t kk = 0; kk < row_count; kk += kBlockK) {
        const std::int64_t kend = std::min(kk + kBlockK, row_count);
        const std::int64_t pack_cols = kend - kk;

        // Resolve this block's op(B) row bases once. The transposed case
        // packs the strided columns of the stored B into contiguous rows
        // (one pass per K-block, amortized over every row of the band).
        if (!trans_b) {
            for (std::int64_t p = 0; p < pack_cols; ++p) {
                const std::int64_t row =
                    rows != nullptr ? rows[kk + p] : kk + p;
                brows[p] = b + row * ldb;
            }
        } else {
            b_pack.resize(static_cast<std::size_t>(pack_cols * n));
            for (std::int64_t p = 0; p < pack_cols; ++p) {
                const std::int64_t row =
                    rows != nullptr ? rows[kk + p] : kk + p;
                float* dst = b_pack.data() + p * n;
                for (std::int64_t j = 0; j < n; ++j) {
                    dst[j] = b[j * ldb + row];
                }
                brows[p] = dst;
            }
        }

        for (std::int64_t ii = m0; ii < m1; ii += kBlockM) {
            const std::int64_t iend = std::min(ii + kBlockM, m1);
            const std::int64_t pack_rows = iend - ii;
            // Pack op(A) alpha-scaled so the microkernel streams
            // contiguously regardless of the transpose flag. Scaling at
            // pack time is the same single multiply the inner loop used
            // to do, so results are unchanged.
            a_pack.resize(static_cast<std::size_t>(pack_rows * pack_cols));
            for (std::int64_t i = 0; i < pack_rows; ++i) {
                for (std::int64_t p = 0; p < pack_cols; ++p) {
                    const std::int64_t col =
                        rows != nullptr ? rows[kk + p] : kk + p;
                    a_pack[static_cast<std::size_t>(i * pack_cols + p)] =
                        alpha * load(a, lda, ii + i, col, trans_a);
                }
            }
            for (std::int64_t jj = 0; jj < n; jj += kBlockN) {
                const std::int64_t jend = std::min(jj + kBlockN, n);
                for (std::int64_t i = 0; i < pack_rows; ++i) {
                    micro_row(c + (ii + i) * ldc,
                              a_pack.data() + i * pack_cols, brows, pack_cols,
                              jj, jend);
                }
            }
        }
    }
}

void gemm_dispatch(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                   const std::int64_t* rows, std::int64_t row_count,
                   float alpha, const float* a, std::int64_t lda,
                   const float* b, std::int64_t ldb, float beta, float* c,
                   std::int64_t ldc, ThreadPool* pool) {
    if (pool == nullptr || pool->size() <= 1 || m < 2 * kBlockM) {
        gemm_band(trans_a, trans_b, 0, m, n, rows, row_count, alpha, a, lda,
                  b, ldb, beta, c, ldc);
        return;
    }

    const std::int64_t bands =
        std::min<std::int64_t>(static_cast<std::int64_t>(pool->size()),
                               (m + kBlockM - 1) / kBlockM);
    const std::int64_t band_rows = (m + bands - 1) / bands;
    for (std::int64_t b0 = 0; b0 < m; b0 += band_rows) {
        const std::int64_t b1 = std::min(b0 + band_rows, m);
        pool->submit([=] {
            gemm_band(trans_a, trans_b, b0, b1, n, rows, row_count, alpha, a,
                      lda, b, ldb, beta, c, ldc);
        });
    }
    pool->wait_idle();
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc, ThreadPool* pool) {
    MIME_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dimensions must be >= 0");
    MIME_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "gemm operands must be non-null");
    if (m == 0 || n == 0) {
        return;
    }
    gemm_dispatch(trans_a, trans_b, m, n, /*rows=*/nullptr, k, alpha, a, lda,
                  b, ldb, beta, c, ldc, pool);
}

void gemm_rows(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::int64_t* rows,
               std::int64_t row_count, float alpha, const float* a,
               std::int64_t lda, const float* b, std::int64_t ldb,
               float beta, float* c, std::int64_t ldc, ThreadPool* pool) {
    MIME_REQUIRE(m >= 0 && n >= 0 && k >= 0,
                 "gemm_rows dimensions must be >= 0");
    MIME_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
                 "gemm_rows operands must be non-null");
    MIME_REQUIRE(row_count >= 0 && row_count <= k,
                 "gemm_rows row_count must be in [0, k]");
    MIME_REQUIRE(rows != nullptr || row_count == 0,
                 "gemm_rows needs a row list unless row_count is 0");
    for (std::int64_t p = 0; p < row_count; ++p) {
        MIME_REQUIRE(rows[p] >= 0 && rows[p] < k &&
                         (p == 0 || rows[p] > rows[p - 1]),
                     "gemm_rows row indices must be strictly ascending "
                     "within [0, k)");
    }
    if (m == 0 || n == 0) {
        return;
    }
    // An empty live set still applies beta (C = beta * C), matching the
    // dense kernel contracted over an all-zero operand.
    gemm_dispatch(trans_a, trans_b, m, n, rows, row_count, alpha, a, lda, b,
                  ldb, beta, c, ldc, pool);
}

const char* gemm_kernel_name() {
#if defined(MIME_GEMM_AVX2)
    return "avx2+fma";
#else
    return "scalar";
#endif
}

Tensor matmul(const Tensor& a, const Tensor& b, ThreadPool* pool) {
    MIME_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul requires rank-2 operands, got " +
                     a.shape().to_string() + " and " + b.shape().to_string());
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    MIME_REQUIRE(b.shape().dim(0) == k,
                 "matmul inner dimensions differ: " + a.shape().to_string() +
                     " vs " + b.shape().to_string());
    const std::int64_t n = b.shape().dim(1);
    Tensor c({m, n});
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
         n, pool);
    return c;
}

void gemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
                const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
                acc += static_cast<double>(av) * static_cast<double>(bv);
            }
            c[i * ldc + j] = static_cast<float>(
                alpha * acc + static_cast<double>(beta) * c[i * ldc + j]);
        }
    }
}

}  // namespace mime
