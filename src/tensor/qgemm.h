// Int8 general matrix multiplication, the compute kernel behind the
// quantized planned executor.
//
// C[M,N] (int32) = A[M,K] (int8) * B[K,N] (int8); C is overwritten.
// Both quantized call sites arrange their operands row-major with no
// transpose: conv contracts a [Cout, C*K*K] weight matrix against an
// int8 im2col column matrix, and linear quantizes its activations
// *transposed* ([in_features, batch]) so the [out, in] weight matrix is
// the A operand there too. Per-output-channel scales then live on rows
// of A, and the dequantize pass is one multiply per output element.
//
// All arithmetic is exact: int8*int8 products are at most 127^2 = 16129,
// so an int32 accumulator holds any contraction up to k ~ 2^31 / 16129
// without overflow (enforced by a checked bound). Exactness means the
// AVX2 kernel, the scalar fallback and the qgemm_reference oracle agree
// bit-for-bit regardless of accumulation order — the float kernels'
// careful order-matching is unnecessary here.
//
// `qgemm_rows` is the row-compacted variant composing with PR 6's
// ActiveSet live-row lists: it contracts over a caller-supplied strictly
// ascending index set only, skipping rows a threshold mask provably
// zeroed. Skipped rows of B may hold garbage.
#pragma once

#include <cstdint>

#include "common/thread_pool.h"

namespace mime {

/// Largest contraction depth the int32 accumulators provably hold:
/// floor((2^31 - 1) / 128^2), since the worst-case int8 product is
/// (-128)*(-128) = 16384. Both entry points require k <= this.
inline constexpr std::int64_t kQgemmMaxK = 131071;

/// C[M,N] = A[M,K] * B[K,N], int8 operands, int32 result (overwritten).
/// Row-major with leading dimensions lda/ldb/ldc. `pool` may be null;
/// when provided, work splits across rows of C.
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
           std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
           ThreadPool* pool = nullptr);

/// Row-compacted variant: C[i,j] = sum_p A[i, rows[p]] * B[rows[p], j]
/// over the `row_count` indices in `rows` (strictly ascending within
/// [0, k)). Skipped rows of B are never read. With int operands the
/// result equals the dense qgemm whenever every skipped row contributes
/// zero — exactly, not just bit-compatibly.
void qgemm_rows(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int64_t* rows, std::int64_t row_count,
                const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                std::int64_t ldb, std::int32_t* c, std::int64_t ldc,
                ThreadPool* pool = nullptr);

/// The microkernel variant this build selected at compile time
/// ("avx2-int8" or "scalar"); benches report it next to their numbers.
const char* qgemm_kernel_name();

/// Reference O(M*N*K) triple loop used by tests to validate the blocked
/// kernel (must match it bit-for-bit — integer math is exact).
void qgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t ldc);

}  // namespace mime
