#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace mime {

void ConvGeometry::validate() const {
    MIME_REQUIRE(in_channels > 0 && in_height > 0 && in_width > 0,
                 "conv input extents must be positive");
    MIME_REQUIRE(kernel > 0, "conv kernel must be positive");
    MIME_REQUIRE(stride > 0, "conv stride must be positive");
    MIME_REQUIRE(padding >= 0, "conv padding must be non-negative");
    MIME_REQUIRE(out_height() > 0 && out_width() > 0,
                 "conv output extent is non-positive; kernel/stride/padding "
                 "incompatible with input size");
}

namespace {

// Lowers one input channel into its K*K block of rows starting at
// `columns + c*K*K*cols`; shared by the dense and live-channel paths so
// the bytes written for a given channel are identical in both. The
// element type is templated — float for the f32 path, int8 for the
// quantized executor (pure data movement either way; out-of-image taps
// are the type's zero, which for int8 dequantizes to exactly 0).
template <typename T>
void im2col_channel(const ConvGeometry& g, const T* input, T* columns,
                    std::int64_t c) {
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t cols = ho * wo;
    const T* channel = input + c * g.in_height * g.in_width;
    std::int64_t row = c * g.kernel * g.kernel;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
        for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
            T* out_row = columns + row * cols;
            if (g.stride == 1) {
                // Stride 1 (every conv in the reproduced nets): each
                // output row is one contiguous run of the input row
                // between zero-padded edges — memset/memcpy instead of
                // a bounds check per element. Bytes written are
                // identical to the general loop below.
                const std::int64_t x0 = std::max<std::int64_t>(
                    0, g.padding - kx);
                const std::int64_t x1 = std::min<std::int64_t>(
                    wo, g.in_width + g.padding - kx);
                for (std::int64_t oy = 0; oy < ho; ++oy) {
                    const std::int64_t iy = oy + ky - g.padding;
                    T* dst = out_row + oy * wo;
                    if (iy < 0 || iy >= g.in_height || x0 >= x1) {
                        std::memset(dst, 0,
                                    static_cast<std::size_t>(wo) * sizeof(T));
                        continue;
                    }
                    if (x0 > 0) {
                        std::memset(dst, 0,
                                    static_cast<std::size_t>(x0) * sizeof(T));
                    }
                    std::memcpy(dst + x0,
                                channel + iy * g.in_width + x0 + kx -
                                    g.padding,
                                static_cast<std::size_t>(x1 - x0) *
                                    sizeof(T));
                    if (x1 < wo) {
                        std::memset(dst + x1, 0,
                                    static_cast<std::size_t>(wo - x1) *
                                        sizeof(T));
                    }
                }
                continue;
            }
            for (std::int64_t oy = 0; oy < ho; ++oy) {
                const std::int64_t iy = oy * g.stride + ky - g.padding;
                if (iy < 0 || iy >= g.in_height) {
                    for (std::int64_t ox = 0; ox < wo; ++ox) {
                        out_row[oy * wo + ox] = T{};
                    }
                    continue;
                }
                const T* in_row = channel + iy * g.in_width;
                for (std::int64_t ox = 0; ox < wo; ++ox) {
                    const std::int64_t ix = ox * g.stride + kx - g.padding;
                    out_row[oy * wo + ox] =
                        (ix >= 0 && ix < g.in_width) ? in_row[ix] : T{};
                }
            }
        }
    }
}

template <typename T>
void im2col_all(const ConvGeometry& g, const T* input, T* columns) {
    g.validate();
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
        im2col_channel(g, input, columns, c);
    }
}

template <typename T>
void im2col_live(const ConvGeometry& g, const T* input, T* columns,
                 const std::int64_t* live_channels, std::int64_t live_count) {
    g.validate();
    MIME_REQUIRE(live_channels != nullptr || live_count == 0,
                 "im2col needs a channel list unless live_count is 0");
    for (std::int64_t i = 0; i < live_count; ++i) {
        const std::int64_t c = live_channels[i];
        MIME_REQUIRE(c >= 0 && c < g.in_channels &&
                         (i == 0 || c > live_channels[i - 1]),
                     "im2col live channels must be strictly ascending within "
                     "[0, in_channels)");
        im2col_channel(g, input, columns, c);
    }
}

}  // namespace

void im2col(const ConvGeometry& g, const float* input, float* columns) {
    im2col_all(g, input, columns);
}

void im2col(const ConvGeometry& g, const std::int8_t* input,
            std::int8_t* columns) {
    im2col_all(g, input, columns);
}

void im2col(const ConvGeometry& g, const float* input, float* columns,
            const std::int64_t* live_channels, std::int64_t live_count) {
    im2col_live(g, input, columns, live_channels, live_count);
}

void im2col(const ConvGeometry& g, const std::int8_t* input,
            std::int8_t* columns, const std::int64_t* live_channels,
            std::int64_t live_count) {
    im2col_live(g, input, columns, live_channels, live_count);
}

void col2im(const ConvGeometry& g, const float* columns, float* input_grad) {
    g.validate();
    const std::int64_t ho = g.out_height();
    const std::int64_t wo = g.out_width();
    const std::int64_t cols = ho * wo;

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
        float* channel = input_grad + c * g.in_height * g.in_width;
        for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
            for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
                const float* in_row_vals = columns + row * cols;
                for (std::int64_t oy = 0; oy < ho; ++oy) {
                    const std::int64_t iy = oy * g.stride + ky - g.padding;
                    if (iy < 0 || iy >= g.in_height) {
                        continue;
                    }
                    float* grad_row = channel + iy * g.in_width;
                    for (std::int64_t ox = 0; ox < wo; ++ox) {
                        const std::int64_t ix = ox * g.stride + kx - g.padding;
                        if (ix >= 0 && ix < g.in_width) {
                            grad_row[ix] += in_row_vals[oy * wo + ox];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace mime
