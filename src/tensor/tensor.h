// Dense float32 tensor with value semantics and contiguous row-major
// storage. This is the numeric substrate for the neural-network library;
// it deliberately avoids views/striding so that every invariant
// ("data().size() == shape().numel()") is trivial to state and test.
//
// Storage is refcounted internally, but copies stay deep — two tensors
// never share memory unless one was made with the explicit alias()
// escape hatch. Aliasing exists for exactly one purpose: letting server
// replicas read one frozen W_parent without duplicating it (the paper's
// DRAM story applied to host RAM). An alias always covers the whole
// tensor at the same shape; there are still no strided views.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace mime {

/// Contiguous row-major float tensor.
class Tensor {
public:
    /// Empty (rank-0, one element, value 0).
    Tensor();

    /// Zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Tensor of the given shape filled with `fill_value`.
    Tensor(Shape shape, float fill_value);

    /// Adopts `values` as the storage; size must equal shape.numel().
    Tensor(Shape shape, std::vector<float> values);

    /// Copies are deep: the new tensor owns fresh storage even when the
    /// source is an alias. Moved-from tensors may only be destroyed or
    /// assigned to.
    Tensor(const Tensor& other);
    Tensor& operator=(const Tensor& other);
    Tensor(Tensor&& other) noexcept;
    Tensor& operator=(Tensor&& other) noexcept;
    ~Tensor() = default;

    // -- factories ---------------------------------------------------------

    static Tensor zeros(Shape shape);
    static Tensor ones(Shape shape);
    static Tensor full(Shape shape, float value);
    /// i.i.d. normal entries.
    static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                        float stddev = 1.0f);
    /// i.i.d. uniform entries in [lo, hi).
    static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

    // -- observers ---------------------------------------------------------

    const Shape& shape() const noexcept { return shape_; }
    std::int64_t numel() const noexcept {
        return data_ ? static_cast<std::int64_t>(data_->size()) : 0;
    }
    float* data() noexcept { return ptr_; }
    const float* data() const noexcept { return ptr_; }
    const std::vector<float>& values() const noexcept { return *data_; }

    /// Bounds-checked flat element access.
    float& at(std::int64_t flat_index);
    float at(std::int64_t flat_index) const;

    /// Bounds-checked multi-dimensional access (index count must equal
    /// rank).
    float& at(std::initializer_list<std::int64_t> indices);
    float at(std::initializer_list<std::int64_t> indices) const;

    /// Unchecked flat access (hot paths).
    float& operator[](std::int64_t flat_index) noexcept {
        return ptr_[static_cast<std::size_t>(flat_index)];
    }
    float operator[](std::int64_t flat_index) const noexcept {
        return ptr_[static_cast<std::size_t>(flat_index)];
    }

    // -- transforms --------------------------------------------------------

    /// Deep copy (copies are always explicit on hot paths; the copy
    /// constructor also exists for value semantics).
    Tensor clone() const;

    /// Explicit shared view of this tensor's storage, same shape. Writes
    /// through either tensor are visible to both; copies of either are
    /// deep again. Used to let server replicas read one frozen backbone
    /// concurrently — the caller owns the discipline that nobody writes.
    Tensor alias();

    /// Shared view at a different shape; numel must match. The planned
    /// executor uses this to make Flatten free: [N, C, H, W] and
    /// [N, C*H*W] handles onto one activation buffer.
    Tensor alias(Shape view_shape);

    /// True when both tensors share one storage block.
    bool aliases(const Tensor& other) const noexcept {
        return data_ != nullptr && data_ == other.data_;
    }

    /// Returns a tensor with the same data and a new shape; numel must
    /// match. Storage is copied (no aliasing views by design).
    Tensor reshaped(Shape new_shape) const;

    /// Sets every element to `value`.
    void fill(float value);

    /// Copies `source`'s elements into this tensor's existing storage;
    /// shapes must match. Never reallocates, which keeps hot-path swaps
    /// (e.g. installing a task's threshold set) O(bytes copied) with no
    /// allocator traffic.
    void copy_from(const Tensor& source);

    /// Applies `alpha * x + this` elementwise in place; shapes must match.
    void axpy(float alpha, const Tensor& x);

    /// Multiplies every element by `scale` in place.
    void scale(float scale);

    // -- allocation probe ---------------------------------------------------
    //
    // Process-wide count of heap storage blocks (and bytes) created by
    // tensors. The planned forward executor promises zero allocations
    // after warm-up; bench/forward_alloc and the ctest suite hold it to
    // that by diffing these counters around a batch. Relaxed atomics:
    // the probe is a debug/accounting hook, not a synchronization point.

    /// Storage blocks allocated since process start.
    static std::int64_t storage_allocation_count() noexcept;
    /// Total bytes of storage allocated since process start.
    static std::int64_t storage_allocation_bytes() noexcept;

private:
    std::vector<float>& vec() noexcept { return *data_; }
    const std::vector<float>& vec() const noexcept { return *data_; }
    void adopt(std::shared_ptr<std::vector<float>> storage) noexcept {
        data_ = std::move(storage);
        ptr_ = data_ ? data_->data() : nullptr;
    }

    Shape shape_;
    std::shared_ptr<std::vector<float>> data_;
    float* ptr_ = nullptr;  ///< cached data_->data() (hot-path access)
};

// -- elementwise free functions (same-shape operands, no broadcasting) ----

/// c = a + b
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a ⊙ b (Hadamard)
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s
Tensor mul(const Tensor& a, float s);

/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);
/// a -= b in place.
void sub_inplace(Tensor& a, const Tensor& b);
/// a ⊙= b in place.
void mul_inplace(Tensor& a, const Tensor& b);

// -- reductions ------------------------------------------------------------

float sum(const Tensor& t);
float mean(const Tensor& t);
float min_value(const Tensor& t);
float max_value(const Tensor& t);
/// Flat index of the maximum element (first on ties).
std::int64_t argmax(const Tensor& t);
/// Fraction of elements equal to zero.
double zero_fraction(const Tensor& t);
/// Sum of |x| over all elements.
float abs_sum(const Tensor& t);
/// Frobenius / L2 norm.
float l2_norm(const Tensor& t);

}  // namespace mime
