#include "tensor/workspace.h"

#include <string>

#include "common/check.h"

namespace mime {

namespace {
constexpr std::size_t kCachelineFloats =
    Workspace::kAlignBytes / sizeof(float);
}  // namespace

std::size_t Workspace::aligned_floats(std::int64_t count) {
    MIME_REQUIRE(count >= 0, "workspace allocation count must be >= 0");
    const auto n = static_cast<std::size_t>(count);
    return (n + kCachelineFloats - 1) / kCachelineFloats * kCachelineFloats;
}

void Workspace::reserve(std::size_t bytes) {
    MIME_REQUIRE(offset_floats_ == 0,
                 "Workspace::reserve with live allocations would dangle "
                 "outstanding scratch pointers; rewind/reset first");
    const std::size_t floats =
        aligned_floats(static_cast<std::int64_t>((bytes + sizeof(float) - 1) /
                                                 sizeof(float)));
    if (floats <= capacity_floats_) {
        return;
    }
    // Aligned new: make_unique<float[]> only guarantees 16-byte
    // alignment, which would put every cacheline-spaced offset mid-line.
    block_.reset(static_cast<float*>(::operator new[](
        floats * sizeof(float), std::align_val_t{kAlignBytes})));
    capacity_floats_ = floats;
}

float* Workspace::alloc_floats(std::int64_t count) {
    const std::size_t need = aligned_floats(count);
    MIME_REQUIRE(offset_floats_ + need <= capacity_floats_,
                 "workspace overflow: " +
                     std::to_string((offset_floats_ + need) * sizeof(float)) +
                     " bytes wanted, " +
                     std::to_string(capacity_floats_ * sizeof(float)) +
                     " reserved (plan byte accounting is wrong)");
    float* out = block_.get() + offset_floats_;
    offset_floats_ += need;
    if (offset_floats_ > peak_floats_) {
        peak_floats_ = offset_floats_;
    }
    return out;
}

void* Workspace::alloc_bytes(std::size_t bytes) {
    // Bytes round up to whole floats, and alloc_floats rounds to whole
    // cachelines, so the arena cost is exactly aligned_bytes(bytes).
    return alloc_floats(
        static_cast<std::int64_t>((bytes + sizeof(float) - 1) /
                                  sizeof(float)));
}

void Workspace::rewind(Checkpoint mark) {
    MIME_REQUIRE(mark.offset_floats <= offset_floats_,
                 "Workspace::rewind to a checkpoint ahead of the bump "
                 "pointer (checkpoints are LIFO)");
    offset_floats_ = mark.offset_floats;
}

}  // namespace mime
