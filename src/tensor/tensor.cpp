#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"

namespace mime {

namespace {

// Allocation probe (see tensor.h): every fresh storage block passes
// through make_storage so the counters can't drift from reality.
std::atomic<std::int64_t> g_storage_allocations{0};
std::atomic<std::int64_t> g_storage_bytes{0};

void count_storage(std::size_t elements) noexcept {
    g_storage_allocations.fetch_add(1, std::memory_order_relaxed);
    g_storage_bytes.fetch_add(
        static_cast<std::int64_t>(elements * sizeof(float)),
        std::memory_order_relaxed);
}

std::shared_ptr<std::vector<float>> make_storage(std::size_t elements,
                                                 float fill_value) {
    count_storage(elements);
    return std::make_shared<std::vector<float>>(elements, fill_value);
}

std::shared_ptr<std::vector<float>> make_storage(std::vector<float> values) {
    count_storage(values.size());
    return std::make_shared<std::vector<float>>(std::move(values));
}

}  // namespace

std::int64_t Tensor::storage_allocation_count() noexcept {
    return g_storage_allocations.load(std::memory_order_relaxed);
}

std::int64_t Tensor::storage_allocation_bytes() noexcept {
    return g_storage_bytes.load(std::memory_order_relaxed);
}

Tensor::Tensor() : shape_() { adopt(make_storage(1, 0.0f)); }

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
    adopt(make_storage(static_cast<std::size_t>(shape_.numel()), 0.0f));
}

Tensor::Tensor(Shape shape, float fill_value) : shape_(std::move(shape)) {
    adopt(make_storage(static_cast<std::size_t>(shape_.numel()), fill_value));
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)) {
    MIME_REQUIRE(static_cast<std::int64_t>(values.size()) == shape_.numel(),
                 "value count " + std::to_string(values.size()) +
                     " does not match shape " + shape_.to_string());
    adopt(make_storage(std::move(values)));
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
    adopt(make_storage(*other.data_));
}

Tensor& Tensor::operator=(const Tensor& other) {
    if (this != &other) {
        shape_ = other.shape_;
        adopt(make_storage(*other.data_));
    }
    return *this;
}

Tensor::Tensor(Tensor&& other) noexcept : shape_(std::move(other.shape_)) {
    adopt(std::move(other.data_));
    other.ptr_ = nullptr;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
    if (this != &other) {
        shape_ = std::move(other.shape_);
        adopt(std::move(other.data_));
        other.ptr_ = nullptr;
    }
    return *this;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
    Tensor t(std::move(shape));
    for (auto& v : t.vec()) {
        v = static_cast<float>(rng.normal(mean, stddev));
    }
    return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
    Tensor t(std::move(shape));
    for (auto& v : t.vec()) {
        v = static_cast<float>(rng.uniform(lo, hi));
    }
    return t;
}

float& Tensor::at(std::int64_t flat_index) {
    MIME_REQUIRE(flat_index >= 0 && flat_index < numel(),
                 "flat index " + std::to_string(flat_index) +
                     " out of range for " + shape_.to_string());
    return vec()[static_cast<std::size_t>(flat_index)];
}

float Tensor::at(std::int64_t flat_index) const {
    return const_cast<Tensor*>(this)->at(flat_index);
}

float& Tensor::at(std::initializer_list<std::int64_t> indices) {
    MIME_REQUIRE(static_cast<std::int64_t>(indices.size()) == shape_.rank(),
                 "index count " + std::to_string(indices.size()) +
                     " does not match rank " + std::to_string(shape_.rank()));
    std::int64_t flat = 0;
    std::int64_t axis = 0;
    for (const auto idx : indices) {
        const std::int64_t extent = shape_.dim(axis);
        MIME_REQUIRE(idx >= 0 && idx < extent,
                     "index " + std::to_string(idx) + " out of range for axis " +
                         std::to_string(axis) + " with extent " +
                         std::to_string(extent));
        flat = flat * extent + idx;
        ++axis;
    }
    return vec()[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::initializer_list<std::int64_t> indices) const {
    return const_cast<Tensor*>(this)->at(indices);
}

Tensor Tensor::clone() const { return *this; }

Tensor Tensor::alias() {
    Tensor view;
    view.shape_ = shape_;
    view.adopt(data_);
    return view;
}

Tensor Tensor::alias(Shape view_shape) {
    MIME_REQUIRE(view_shape.numel() == shape_.numel(),
                 "cannot alias " + shape_.to_string() + " as " +
                     view_shape.to_string());
    Tensor view;
    view.shape_ = std::move(view_shape);
    view.adopt(data_);
    return view;
}

Tensor Tensor::reshaped(Shape new_shape) const {
    MIME_REQUIRE(new_shape.numel() == shape_.numel(),
                 "cannot reshape " + shape_.to_string() + " to " +
                     new_shape.to_string());
    return Tensor(std::move(new_shape), vec());
}

void Tensor::fill(float value) {
    for (auto& v : vec()) {
        v = value;
    }
}

void Tensor::copy_from(const Tensor& source) {
    MIME_REQUIRE(shape_ == source.shape_,
                 "copy_from shape mismatch: " + shape_.to_string() + " vs " +
                     source.shape_.to_string());
    std::copy(source.vec().begin(), source.vec().end(), vec().begin());
}

void Tensor::axpy(float alpha, const Tensor& x) {
    MIME_REQUIRE(x.shape() == shape_, "axpy shape mismatch: " +
                                          shape_.to_string() + " vs " +
                                          x.shape().to_string());
    const float* xs = x.data();
    std::vector<float>& ys = vec();
    for (std::size_t i = 0; i < ys.size(); ++i) {
        ys[i] += alpha * xs[i];
    }
}

void Tensor::scale(float s) {
    for (auto& v : vec()) {
        v *= s;
    }
}

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
    MIME_REQUIRE(a.shape() == b.shape(),
                 std::string(op) + " shape mismatch: " + a.shape().to_string() +
                     " vs " + b.shape().to_string());
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "add");
    Tensor c(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        c[i] = a[i] + b[i];
    }
    return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "sub");
    Tensor c(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        c[i] = a[i] - b[i];
    }
    return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "mul");
    Tensor c(a.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        c[i] = a[i] * b[i];
    }
    return c;
}

Tensor mul(const Tensor& a, float s) {
    Tensor c = a;
    c.scale(s);
    return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "add_inplace");
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        a[i] += b[i];
    }
}

void sub_inplace(Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "sub_inplace");
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        a[i] -= b[i];
    }
}

void mul_inplace(Tensor& a, const Tensor& b) {
    require_same_shape(a, b, "mul_inplace");
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        a[i] *= b[i];
    }
}

float sum(const Tensor& t) {
    // Kahan summation: training statistics accumulate over millions of
    // elements and naive summation loses precision in float32.
    double acc = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        acc += static_cast<double>(t[i]);
    }
    return static_cast<float>(acc);
}

float mean(const Tensor& t) {
    return sum(t) / static_cast<float>(t.numel());
}

float min_value(const Tensor& t) {
    float m = t[0];
    for (std::int64_t i = 1; i < t.numel(); ++i) {
        m = std::min(m, t[i]);
    }
    return m;
}

float max_value(const Tensor& t) {
    float m = t[0];
    for (std::int64_t i = 1; i < t.numel(); ++i) {
        m = std::max(m, t[i]);
    }
    return m;
}

std::int64_t argmax(const Tensor& t) {
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < t.numel(); ++i) {
        if (t[i] > t[best]) {
            best = i;
        }
    }
    return best;
}

double zero_fraction(const Tensor& t) {
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        if (t[i] == 0.0f) {
            ++zeros;
        }
    }
    return static_cast<double>(zeros) / static_cast<double>(t.numel());
}

float abs_sum(const Tensor& t) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        acc += std::abs(static_cast<double>(t[i]));
    }
    return static_cast<float>(acc);
}

float l2_norm(const Tensor& t) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const double v = t[i];
        acc += v * v;
    }
    return static_cast<float>(std::sqrt(acc));
}

}  // namespace mime
