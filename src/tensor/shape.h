// Tensor shape: an ordered list of dimension extents.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mime {

/// Immutable-by-convention list of dimension extents. All extents must be
/// strictly positive; rank-0 (scalar) shapes are represented by an empty
/// extent list and have numel() == 1.
class Shape {
public:
    Shape() = default;
    Shape(std::initializer_list<std::int64_t> dims);
    explicit Shape(std::vector<std::int64_t> dims);

    /// Number of dimensions.
    std::int64_t rank() const noexcept {
        return static_cast<std::int64_t>(dims_.size());
    }

    /// Extent of dimension `axis`; negative axes count from the back
    /// (-1 is the last dimension).
    std::int64_t dim(std::int64_t axis) const;

    /// Product of all extents (1 for a scalar shape).
    std::int64_t numel() const noexcept;

    /// Underlying extents.
    const std::vector<std::int64_t>& dims() const noexcept { return dims_; }

    bool operator==(const Shape& other) const noexcept {
        return dims_ == other.dims_;
    }
    bool operator!=(const Shape& other) const noexcept {
        return !(*this == other);
    }

    /// Renders e.g. "[3, 32, 32]".
    std::string to_string() const;

private:
    std::vector<std::int64_t> dims_;
};

}  // namespace mime
