// Higher-level tensor operations shared across nn / core modules.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mime {

/// Row-wise softmax over a rank-2 tensor [rows, cols]; numerically stable
/// (max-shifted).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax over a rank-2 tensor [rows, cols].
Tensor log_softmax_rows(const Tensor& logits);

/// Per-row argmax of a rank-2 tensor [rows, cols].
std::vector<std::int64_t> argmax_rows(const Tensor& t);

/// One sample slice of a batched tensor [N, ...] → copy of sample `n`
/// with the leading axis dropped.
Tensor batch_slice(const Tensor& batch, std::int64_t n);

/// Writes `sample` (shape = batch shape minus leading axis) into slot `n`
/// of `batch`.
void batch_assign(Tensor& batch, std::int64_t n, const Tensor& sample);

/// Concatenates equally-shaped samples along a new leading axis.
Tensor stack(const std::vector<Tensor>& samples);

}  // namespace mime
