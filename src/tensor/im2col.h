// im2col / col2im lowering for convolution.
//
// Conv2d forward lowers each input sample [C, H, W] into a column matrix
// [C*K*K, Hout*Wout]; the convolution then becomes a GEMM with the
// [Cout, C*K*K] filter matrix. col2im is the adjoint used by the backward
// pass w.r.t. the input.
#pragma once

#include <cstdint>

namespace mime {

/// Static geometry of one 2-D convolution.
struct ConvGeometry {
    std::int64_t in_channels = 0;
    std::int64_t in_height = 0;
    std::int64_t in_width = 0;
    std::int64_t kernel = 0;   ///< square kernel extent
    std::int64_t stride = 1;
    std::int64_t padding = 0;  ///< symmetric zero padding

    std::int64_t out_height() const {
        return (in_height + 2 * padding - kernel) / stride + 1;
    }
    std::int64_t out_width() const {
        return (in_width + 2 * padding - kernel) / stride + 1;
    }
    /// Rows of the lowered column matrix (= C*K*K).
    std::int64_t col_rows() const { return in_channels * kernel * kernel; }
    /// Columns of the lowered column matrix (= Hout*Wout).
    std::int64_t col_cols() const { return out_height() * out_width(); }

    /// Validates extents; throws on non-positive output sizes.
    void validate() const;
};

/// Lowers one sample `input` [C, H, W] (contiguous) into `columns`
/// [C*K*K, Hout*Wout] (contiguous, caller-allocated). Out-of-image taps
/// contribute zeros.
void im2col(const ConvGeometry& g, const float* input, float* columns);

/// Int8 lowering for the quantized executor — identical layout and tap
/// rules on already-quantized samples (pure data movement; a zero tap
/// dequantizes to exactly 0 at any scale).
void im2col(const ConvGeometry& g, const std::int8_t* input,
            std::int8_t* columns);

/// Partial lowering for the sparse conv path: writes only the K*K row
/// blocks of the `live_count` channels listed (strictly ascending) in
/// `live_channels`. `columns` keeps its full [C*K*K, Hout*Wout] layout —
/// rows of dead channels are left untouched (their previous contents are
/// garbage and must never be read; the row-compacted GEMM skips them).
void im2col(const ConvGeometry& g, const float* input, float* columns,
            const std::int64_t* live_channels, std::int64_t live_count);

/// Int8 partial lowering (see above; composes with qgemm_rows).
void im2col(const ConvGeometry& g, const std::int8_t* input,
            std::int8_t* columns, const std::int64_t* live_channels,
            std::int64_t live_count);

/// Adjoint of im2col: accumulates `columns` [C*K*K, Hout*Wout] back into
/// `input_grad` [C, H, W]. `input_grad` must be zeroed by the caller
/// before the first accumulation.
void col2im(const ConvGeometry& g, const float* columns, float* input_grad);

}  // namespace mime
