#include "core/threshold_mask.h"

#include <cmath>

#include "common/check.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mime::core {

namespace {

// Fused mask apply + zero count over one sample: y[i] = y[i] if
// y[i] - t[i] >= 0 else 0. The vector path compares the literal
// subtraction against zero (not y >= t) so inf/NaN edge cases keep the
// exact scalar semantics: inf - inf = NaN compares false either way.
// _CMP_GE_OQ is the ordered quiet >=, matching scalar >= on NaN (false).
std::int64_t apply_mask(float* y, const float* t, std::int64_t count) {
    std::int64_t zeros = 0;
    std::int64_t i = 0;
#if defined(__AVX2__)
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= count; i += 8) {
        const __m256 vy = _mm256_loadu_ps(y + i);
        const __m256 vt = _mm256_loadu_ps(t + i);
        const __m256 keep =
            _mm256_cmp_ps(_mm256_sub_ps(vy, vt), zero, _CMP_GE_OQ);
        _mm256_storeu_ps(y + i, _mm256_and_ps(vy, keep));
        zeros += 8 - __builtin_popcount(static_cast<unsigned>(
                         _mm256_movemask_ps(keep)));
    }
#endif
    for (; i < count; ++i) {
        if (y[i] - t[i] >= 0.0f) {
            // keep y[i]
        } else {
            y[i] = 0.0f;
            ++zeros;
        }
    }
    return zeros;
}

}  // namespace

float SteConfig::operator()(float x) const {
    const float ax = std::abs(x);
    if (ax <= inner_width) {
        const float slope = (inner_peak - outer_value) / inner_width;
        return inner_peak - slope * ax;
    }
    if (ax <= outer_width) {
        return outer_value;
    }
    return 0.0f;
}

void SteConfig::validate() const {
    MIME_REQUIRE(inner_width > 0.0f, "ste inner_width must be positive");
    MIME_REQUIRE(outer_width >= inner_width,
                 "ste outer_width must be >= inner_width");
    MIME_REQUIRE(inner_peak > 0.0f, "ste inner_peak must be positive");
    MIME_REQUIRE(outer_value >= 0.0f && outer_value <= inner_peak,
                 "ste outer_value must be in [0, inner_peak]");
}

ThresholdMask::ThresholdMask(Shape activation_shape, float initial_threshold,
                             SteConfig ste)
    : activation_shape_(std::move(activation_shape)), ste_(ste) {
    ste_.validate();
    MIME_REQUIRE(activation_shape_.rank() >= 1,
                 "threshold mask needs a non-scalar activation shape");
    thresholds_ = nn::Parameter(
        "thresholds", Tensor::full(activation_shape_, initial_threshold));
}

Tensor ThresholdMask::forward(const Tensor& input) {
    MIME_REQUIRE(input.shape().rank() == activation_shape_.rank() + 1,
                 "ThresholdMask expects batched input, got " +
                     input.shape().to_string() + " for activation " +
                     activation_shape_.to_string());
    const std::int64_t per_sample = activation_shape_.numel();
    const std::int64_t batch = input.shape().dim(0);
    MIME_REQUIRE(input.numel() == batch * per_sample,
                 "ThresholdMask activation shape mismatch: input " +
                     input.shape().to_string() + " vs " +
                     activation_shape_.to_string());

    if (eval_mode()) {
        Tensor output = input;
        forward_eval_inplace(output);
        return output;
    }

    cached_input_ = input;
    cached_mask_ = Tensor(input.shape());
    Tensor output(input.shape());
    const float* t = thresholds_.value.data();

    std::int64_t zeros = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* y = input.data() + n * per_sample;
        float* m = cached_mask_.data() + n * per_sample;
        float* a = output.data() + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
            if (y[i] - t[i] >= 0.0f) {
                m[i] = 1.0f;
                a[i] = y[i];
            } else {
                m[i] = 0.0f;
                a[i] = 0.0f;
                ++zeros;
            }
        }
    }
    last_sparsity_ =
        static_cast<double>(zeros) / static_cast<double>(input.numel());
    return output;
}

void ThresholdMask::forward_eval_inplace(Tensor& activations) {
    const std::int64_t per_sample = activation_shape_.numel();
    const std::int64_t batch = activations.shape().dim(0);
    MIME_REQUIRE(activations.numel() == batch * per_sample,
                 "ThresholdMask activation shape mismatch: " +
                     activations.shape().to_string() + " vs " +
                     activation_shape_.to_string());
    const float* t = thresholds_.value.data();
    std::int64_t zeros = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        zeros += apply_mask(activations.data() + n * per_sample, t,
                            per_sample);
    }
    last_sparsity_ = static_cast<double>(zeros) /
                     static_cast<double>(activations.numel());
}

const ActiveSet& ThresholdMask::active_set() {
    if (!active_set_dirty_) {
        return active_set_;
    }
    const std::int64_t neurons = activation_shape_.numel();
    const std::int64_t channels = activation_shape_.dim(0);
    const std::int64_t extent = neurons / channels;
    if (active_set_.version == 0) {
        active_set_.live.reserve(static_cast<std::size_t>(neurons));
        active_set_.live_channels.reserve(static_cast<std::size_t>(channels));
    }
    active_set_.live.clear();
    active_set_.live_channels.clear();
    active_set_.neurons = neurons;
    active_set_.channels = channels;
    const float* t = thresholds_.value.data();
    for (std::int64_t c = 0; c < channels; ++c) {
        const std::size_t before = active_set_.live.size();
        for (std::int64_t i = c * extent; i < (c + 1) * extent; ++i) {
            // Live iff t < +inf; NaN compares false, so NaN thresholds
            // count as dead — consistent with the mask never passing a
            // value through them.
            if (t[i] < kPrunedThreshold) {
                active_set_.live.push_back(i);
            }
        }
        if (active_set_.live.size() != before) {
            active_set_.live_channels.push_back(c);
        }
    }
    ++active_set_.version;
    active_set_dirty_ = false;
    return active_set_;
}

void ThresholdMask::set_eval_mode(bool eval) {
    nn::Module::set_eval_mode(eval);
    if (eval) {
        cached_input_ = Tensor();
        cached_mask_ = Tensor();
    }
}

std::int64_t ThresholdMask::cached_state_bytes() const {
    return nn::cached_tensor_bytes(cached_input_) +
           nn::cached_tensor_bytes(cached_mask_);
}

Tensor ThresholdMask::backward(const Tensor& grad_output) {
    MIME_REQUIRE(cached_input_.shape().rank() >= 1 &&
                     grad_output.shape() == cached_input_.shape(),
                 "ThresholdMask::backward grad shape mismatch");
    const std::int64_t per_sample = activation_shape_.numel();
    const std::int64_t batch = cached_input_.shape().dim(0);

    Tensor grad_input(cached_input_.shape());
    const float* t = thresholds_.value.data();
    float* gt = thresholds_.grad.data();

    // a = y * H(y - t):
    //   da/dy = H(y - t) + y * g(y - t)
    //   da/dt = -y * g(y - t)
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* y = cached_input_.data() + n * per_sample;
        const float* m = cached_mask_.data() + n * per_sample;
        const float* go = grad_output.data() + n * per_sample;
        float* gi = grad_input.data() + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
            const float g_est = ste_(y[i] - t[i]);
            gi[i] = go[i] * (m[i] + y[i] * g_est);
            gt[i] -= go[i] * y[i] * g_est;
        }
    }
    return grad_input;
}

std::vector<nn::Parameter*> ThresholdMask::parameters() {
    return {&thresholds_};
}

double ThresholdMask::regularization_loss() const {
    double acc = 0.0;
    const float* t = thresholds_.value.data();
    for (std::int64_t i = 0; i < thresholds_.value.numel(); ++i) {
        acc += std::exp(static_cast<double>(std::min(t[i], kExpClamp)));
    }
    return acc;
}

void ThresholdMask::add_regularization_gradient(float beta) {
    float* gt = thresholds_.grad.data();
    const float* t = thresholds_.value.data();
    for (std::int64_t i = 0; i < thresholds_.value.numel(); ++i) {
        gt[i] += beta * std::exp(std::min(t[i], kExpClamp));
    }
}

void ThresholdMask::clamp_thresholds(float floor) {
    float* t = thresholds_.value.data();
    for (std::int64_t i = 0; i < thresholds_.value.numel(); ++i) {
        t[i] = std::max(t[i], floor);
    }
    mark_thresholds_dirty();
}

}  // namespace mime::core
