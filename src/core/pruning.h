// Weight pruning for the Fig 8 comparators: highly compressed per-task
// models (90% layerwise weight sparsity) obtained by pruning at
// initialization (SNIP-style connection saliency, refs [32, 33] of the
// paper) or by magnitude.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "nn/parameter.h"

namespace mime::core {

class MimeNetwork;

/// A set of binary masks over backbone *weight* tensors (biases are never
/// pruned). apply() re-zeroes pruned weights; training loops call it
/// after every optimizer step so pruned connections stay dead.
class WeightMaskSet {
public:
    struct Entry {
        nn::Parameter* parameter = nullptr;  // non-owning
        Tensor mask;                         // 1 = keep, 0 = pruned
    };

    void add(nn::Parameter* parameter, Tensor mask);

    /// Zeroes masked weights in place.
    void apply() const;

    /// Fraction of zeros in the mask of entry `index`.
    double sparsity(std::size_t index) const;
    /// Weighted overall sparsity.
    double overall_sparsity() const;

    std::size_t size() const noexcept { return entries_.size(); }
    const Entry& entry(std::size_t index) const;

private:
    std::vector<Entry> entries_;
};

/// SNIP-style pruning at initialization: connection saliency
/// |dL/dw ⊙ w| is computed from one probe batch and the lowest-saliency
/// `sparsity` fraction of each weight layer is pruned (the paper's
/// comparators use 90% *layerwise* sparsity).
WeightMaskSet prune_at_init(MimeNetwork& network, const data::Batch& probe,
                            double sparsity, ThreadPool* pool = nullptr);

/// Magnitude pruning: smallest |w| pruned per layer.
WeightMaskSet magnitude_prune(MimeNetwork& network, double sparsity);

/// Per-layer weight sparsity of the network's current weights (fraction
/// of exact zeros), in layer-spec order. Used to hand the hardware model
/// its weight-sparsity profile.
std::vector<double> measured_weight_sparsity(MimeNetwork& network);

}  // namespace mime::core
