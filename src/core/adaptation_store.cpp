#include "core/adaptation_store.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "nn/serialize.h"

namespace mime::core {

namespace {

constexpr char kMagic[8] = {'M', 'I', 'M', 'E', 'A', 'D', 'P', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    MIME_REQUIRE(in.good(), "unexpected end of adaptation stream");
    return v;
}

void write_string(std::ostream& out, const std::string& s) {
    write_u64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
    const std::uint64_t len = read_u64(in);
    MIME_REQUIRE(len < (1u << 20), "implausible string length in stream");
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    MIME_REQUIRE(in.good(), "unexpected end of adaptation stream");
    return s;
}

void write_tensor(std::ostream& out, const Tensor& t) {
    const auto& dims = t.shape().dims();
    write_u64(out, dims.size());
    for (const auto d : dims) {
        write_u64(out, static_cast<std::uint64_t>(d));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& in) {
    const std::uint64_t rank = read_u64(in);
    MIME_REQUIRE(rank <= 8, "implausible tensor rank in stream");
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) {
        d = static_cast<std::int64_t>(read_u64(in));
        MIME_REQUIRE(d > 0 && d < (1 << 28), "implausible tensor extent");
    }
    Tensor t{dims.empty() ? Shape{} : Shape(dims)};
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    MIME_REQUIRE(in.good(), "unexpected end of tensor data");
    return t;
}

}  // namespace

void save_adaptation(const TaskAdaptation& adaptation, std::ostream& out) {
    MIME_REQUIRE(adaptation.num_classes > 0,
                 "cannot save an adaptation without classes");
    out.write(kMagic, sizeof(kMagic));
    write_string(out, adaptation.name);
    write_u64(out, static_cast<std::uint64_t>(adaptation.num_classes));
    write_u64(out, adaptation.thresholds.thresholds.size());
    for (const Tensor& t : adaptation.thresholds.thresholds) {
        write_tensor(out, t);
    }
    write_tensor(out, adaptation.head_weight);
    write_tensor(out, adaptation.head_bias);
    MIME_ENSURE(out.good(), "failed to write adaptation stream");
}

TaskAdaptation load_adaptation(std::istream& in) {
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    MIME_REQUIRE(in.good() && std::equal(magic, magic + 8, kMagic),
                 "bad adaptation stream magic");
    TaskAdaptation adaptation;
    adaptation.name = read_string(in);
    adaptation.num_classes = static_cast<std::int64_t>(read_u64(in));
    MIME_REQUIRE(adaptation.num_classes > 0, "adaptation needs classes");
    const std::uint64_t sites = read_u64(in);
    MIME_REQUIRE(sites > 0 && sites <= 64, "implausible site count");
    adaptation.thresholds.task_name = adaptation.name;
    adaptation.thresholds.thresholds.reserve(sites);
    for (std::uint64_t i = 0; i < sites; ++i) {
        adaptation.thresholds.thresholds.push_back(read_tensor(in));
    }
    adaptation.head_weight = read_tensor(in);
    adaptation.head_bias = read_tensor(in);
    return adaptation;
}

void save_adaptation_file(const TaskAdaptation& adaptation,
                          const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    MIME_REQUIRE(out.is_open(), "cannot open '" + path + "' for writing");
    save_adaptation(adaptation, out);
}

TaskAdaptation load_adaptation_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MIME_REQUIRE(in.is_open(), "cannot open '" + path + "' for reading");
    return load_adaptation(in);
}

AdaptationStore::AdaptationStore(std::string directory)
    : directory_(std::move(directory)) {
    MIME_REQUIRE(!directory_.empty(), "store needs a directory");
    std::filesystem::create_directories(directory_);
}

void AdaptationStore::save_backbone(MimeNetwork& network) const {
    nn::save_parameters_file(network.network(), directory_ + "/backbone.bin");
}

void AdaptationStore::load_backbone(MimeNetwork& network) const {
    MIME_REQUIRE(has_backbone(),
                 "store '" + directory_ + "' has no backbone.bin");
    nn::load_parameters_file(network.network(), directory_ + "/backbone.bin");
}

bool AdaptationStore::has_backbone() const {
    return std::filesystem::exists(directory_ + "/backbone.bin");
}

std::string AdaptationStore::task_path(const std::string& task_name) const {
    MIME_REQUIRE(!task_name.empty() &&
                     task_name.find('/') == std::string::npos &&
                     task_name.find("..") == std::string::npos,
                 "task name must be a plain file-name component");
    return directory_ + "/task_" + task_name + ".mta";
}

void AdaptationStore::write_manifest(
    const std::vector<std::string>& names) const {
    std::ofstream out(directory_ + "/manifest.txt");
    MIME_REQUIRE(out.is_open(), "cannot write manifest");
    for (const auto& name : names) {
        out << name << '\n';
    }
}

void AdaptationStore::save_task(const TaskAdaptation& adaptation) {
    save_adaptation_file(adaptation, task_path(adaptation.name));
    auto names = task_names();
    if (std::find(names.begin(), names.end(), adaptation.name) ==
        names.end()) {
        names.push_back(adaptation.name);
        std::sort(names.begin(), names.end());
        write_manifest(names);
    }
}

TaskAdaptation AdaptationStore::load_task(
    const std::string& task_name) const {
    return load_adaptation_file(task_path(task_name));
}

bool AdaptationStore::has_task(const std::string& task_name) const {
    return std::filesystem::exists(task_path(task_name));
}

std::vector<std::string> AdaptationStore::task_names() const {
    std::vector<std::string> names;
    std::ifstream in(directory_ + "/manifest.txt");
    if (!in.is_open()) {
        return names;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) {
            names.push_back(line);
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::int64_t AdaptationStore::load_all_into(MultiTaskEngine& engine) const {
    std::int64_t count = 0;
    for (const auto& name : task_names()) {
        engine.register_mime_task(load_task(name));
        ++count;
    }
    return count;
}

std::function<TaskAdaptation(const std::string&)> AdaptationStore::task_loader()
    const {
    return [directory = directory_](const std::string& task_name) {
        return AdaptationStore(directory).load_task(task_name);
    };
}

std::int64_t AdaptationStore::backbone_bytes() const {
    if (!has_backbone()) {
        return 0;
    }
    return static_cast<std::int64_t>(
        std::filesystem::file_size(directory_ + "/backbone.bin"));
}

std::int64_t AdaptationStore::adaptation_bytes() const {
    std::int64_t total = 0;
    for (const auto& name : task_names()) {
        if (has_task(name)) {
            total += static_cast<std::int64_t>(
                std::filesystem::file_size(task_path(name)));
        }
    }
    return total;
}

}  // namespace mime::core
