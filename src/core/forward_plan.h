// ForwardPlan: a pre-sized, allocation-free execution schedule for one
// MimeNetwork forward pass at a fixed (batch size, input shape).
//
// The module-graph forward allocates on every call: each Conv2d
// materializes an im2col buffer and a fresh output tensor, each
// activation site a mask, and eval-mode forwards still pay for caches
// that only a backward pass would read. MIME's value proposition is a
// *fixed* steady-state working set per task switch, so serving wants the
// dual: build the schedule once, then execute batches against
// preallocated buffers with zero heap traffic.
//
// The plan walks the network's Sequential once at build time and records
// one step per layer:
//   * Conv2d / MaxPool2d / Linear steps own a preallocated output buffer
//     and (conv only) a workspace scratch reservation for im2col;
//   * BatchNorm2d normalizes the conv activations in place;
//   * activation sites run as one fused in-place pass (threshold masking
//     or ReLU — no mask tensor, no cached MAC outputs);
//   * Flatten is free: an alias view of the previous buffer at the
//     flattened shape.
// Scratch lifetimes nest per layer, so the Workspace high-water mark is
// the *maximum* im2col footprint over conv layers, not the sum.
//
// Sparse execution: the build walk additionally records, per conv /
// linear step, which upstream ThresholdMask (if any) provably zeroed
// that step's input — threshold deadness survives max-pooling at channel
// granularity and flatten at neuron granularity, and dies at any
// conv/bn/linear in between. At run time, when the network's sparse
// policy is on and the site runs in threshold mode, the step hands the
// mask's structural ActiveSet to the layer, which skips the dead rows'
// MACs via row-compacted GEMM (bit-identical outputs — the skipped terms
// are exact zeros). Hit and skipped-MAC counters accumulate across runs.
//
// Quantized execution: when the network's QuantizedExecution policy is
// on at build time, conv/linear steps snapshot their weights as int8
// with per-output-channel scales (the float masters are untouched) and
// run through the int8 kernels — activations quantize with one dynamic
// scale per sample into workspace scratch, the contraction happens in
// int32, and the dequantized float lands in the same output buffer, so
// BN / activation / threshold-mask stages are unchanged. Deadness
// propagation composes: the same live sets drive qgemm_rows.
//
// Thresholds are read live from the sites at execution time: a task's
// threshold install between batches needs no plan rebuild (the
// ActiveSet rebuild is the mask's own, amortized per install).
//
// The plan holds non-owning pointers into the network's modules; the
// network must outlive it (MimeNetwork owns its plans, which makes that
// automatic). Executing a plan requires the network to be in eval mode —
// backward-only caching is exactly the allocation the plan eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/profile.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/quantize.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace mime::core {

class MimeNetwork;
class ActivationSite;

class ForwardPlan {
public:
    /// Builds the schedule and allocates every buffer (this is the only
    /// place a planned forward allocates). The network must outlive the
    /// plan.
    ForwardPlan(MimeNetwork& network, std::int64_t batch_size);

    ForwardPlan(const ForwardPlan&) = delete;
    ForwardPlan& operator=(const ForwardPlan&) = delete;

    /// Executes one batch. `input` must match input_shape(); the
    /// workspace is reset on entry (scratch never outlives a batch, and
    /// a previous batch that threw mid-layer must not wedge this one)
    /// and reserved to workspace_bytes() on first use. Returns the
    /// logits buffer, which stays valid (and is overwritten) across
    /// run() calls. Performs zero heap allocations after the first
    /// call reserved the workspace.
    const Tensor& run(const Tensor& input, Workspace& workspace);

    /// Preallocated batched input slab callers may fill in place (the
    /// server stacks request images straight into it) and pass to
    /// run().
    Tensor& input_slab() noexcept { return input_slab_; }

    std::int64_t batch_size() const noexcept { return batch_size_; }
    /// Batched input shape ([N, C, H, W]) this plan was built for.
    const Shape& input_shape() const noexcept { return input_shape_; }

    /// Scratch high-water mark a run needs (im2col; alignment-rounded).
    std::size_t workspace_bytes() const noexcept { return workspace_bytes_; }
    /// Bytes of plan-owned activation buffers (input slab included).
    std::size_t buffer_bytes() const noexcept { return buffer_bytes_; }

    /// Whether this plan was built for int8 quantized execution (fixed
    /// at build time; MimeNetwork::set_quantized_execution clears
    /// cached plans so the mode can never go stale).
    bool quantized() const noexcept { return quantized_; }
    /// Cumulative conv/linear steps run through the int8 kernels.
    std::uint64_t quantized_hits() const noexcept { return quantized_hits_; }
    /// Worst per-channel relative error of the weights this plan
    /// pre-quantized at build (0 for a float plan).
    double quantized_max_rel_error() const noexcept {
        return quantized_max_rel_error_;
    }

    /// Cumulative count of conv/linear steps that ran the row-compacted
    /// sparse path (across all run() calls on this plan).
    std::uint64_t sparse_hits() const noexcept { return sparse_hits_; }
    /// Cumulative MACs those sparse hits skipped versus dense execution.
    std::uint64_t skipped_macs() const noexcept { return skipped_macs_; }
    /// Cumulative dense-equivalent MACs of every conv/linear step run
    /// (the denominator for a skipped-MAC fraction).
    std::uint64_t dense_macs() const noexcept { return dense_macs_; }

    /// Per-step cost profiles (one per plan step, named conv1/bn1/act1/
    /// pool1/.../fc3). runs/total_us/MAC fields accumulate only while
    /// the owning network's plan profiling is enabled
    /// (MimeNetwork::set_plan_profiling); names and workspace bytes are
    /// filled at build time either way.
    const std::vector<obs::LayerProfile>& profiles() const noexcept {
        return profiles_;
    }

private:
    struct Step {
        enum class Kind {
            conv,        ///< conv->forward_into, new buffer + scratch
            batchnorm,   ///< bn->forward_into in place
            activation,  ///< site->forward_eval_inplace (fused mask/ReLU)
            pool,        ///< pool->forward_into, new buffer
            flatten,     ///< alias view of the previous buffer
            linear       ///< linear->forward_into, new buffer
        };
        Kind kind;
        nn::Conv2d* conv = nullptr;
        nn::BatchNorm2d* bn = nullptr;
        ActivationSite* site = nullptr;
        nn::MaxPool2d* pool = nullptr;
        nn::Linear* linear = nullptr;
        Tensor buffer;  ///< owned output (conv/pool/linear), view (flatten)

        // -- sparse execution (conv / linear steps only) -------------------
        /// Upstream mask whose structural zeros cover this step's input
        /// (null when no mask's deadness survives to here).
        ActivationSite* input_site = nullptr;
        /// Linear only: the mask's neuron indices equal this step's
        /// input-feature indices (no pool in between, numel matches), so
        /// the full neuron-level live list applies; otherwise only
        /// channel-level deadness is usable.
        bool input_neuron_level = false;
        /// Linear, channel-level only: input features per mask channel.
        std::int64_t input_channel_extent = 0;
        /// Linear, channel-level only: live-feature expansion scratch
        /// (capacity reserved at build, so runs never allocate).
        std::vector<std::int64_t> live_scratch;
        /// MACs per unit of contraction depth (batch * Cout * spatial
        /// for conv, batch * out_features for linear) and the dense
        /// contraction depth — the skipped-MAC accounting constants.
        std::uint64_t mac_per_k = 0;
        std::uint64_t k_total = 0;

        // -- quantized execution (conv / linear steps only) ----------------
        /// Int8 snapshot of the layer's weights with per-output-channel
        /// scales, built once when the plan is built under an enabled
        /// QuantizedExecution policy (empty otherwise). The float
        /// master weights stay untouched, so threshold installs and
        /// calibration see exactly the weights they always did.
        nn::QuantizedTensor qweight;
    };

    MimeNetwork* network_;
    std::int64_t batch_size_;
    Shape input_shape_;
    Tensor input_slab_;
    std::vector<Step> steps_;
    std::vector<obs::LayerProfile> profiles_;  ///< parallel to steps_
    std::size_t workspace_bytes_ = 0;
    std::size_t buffer_bytes_ = 0;
    std::uint64_t sparse_hits_ = 0;
    std::uint64_t skipped_macs_ = 0;
    std::uint64_t dense_macs_ = 0;
    bool quantized_ = false;
    std::uint64_t quantized_hits_ = 0;
    double quantized_max_rel_error_ = 0.0;
};

}  // namespace mime::core
