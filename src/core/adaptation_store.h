// Persistence for MIME deployments.
//
// A deployment artifact mirrors the paper's DRAM layout (Fig 1): one
// parent backbone plus one small adaptation (thresholds + task head) per
// child task. The store writes/reads:
//
//   <dir>/backbone.bin            — full backbone parameters
//   <dir>/task_<name>.mta        — one TaskAdaptation
//   <dir>/manifest.txt            — task index (name per line)
//
// Formats are versioned binary (magic + u64 fields + f32 payloads), and
// every loader validates magic, shapes and stream length so corrupted or
// mismatched artifacts fail loudly.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/mime_network.h"
#include "core/multitask.h"

namespace mime::core {

/// Writes one adaptation to a binary stream.
void save_adaptation(const TaskAdaptation& adaptation, std::ostream& out);

/// Reads one adaptation; throws mime::check_error on malformed input.
TaskAdaptation load_adaptation(std::istream& in);

/// File-path conveniences.
void save_adaptation_file(const TaskAdaptation& adaptation,
                          const std::string& path);
TaskAdaptation load_adaptation_file(const std::string& path);

/// Directory-level store managing a backbone plus named adaptations.
class AdaptationStore {
public:
    /// Opens (and creates if needed) the store rooted at `directory`.
    explicit AdaptationStore(std::string directory);

    const std::string& directory() const noexcept { return directory_; }

    /// Persists the network's backbone parameters.
    void save_backbone(MimeNetwork& network) const;
    /// Restores backbone parameters; structure must match.
    void load_backbone(MimeNetwork& network) const;
    bool has_backbone() const;

    /// Persists one adaptation and records it in the manifest.
    void save_task(const TaskAdaptation& adaptation);
    /// Loads one adaptation by task name.
    TaskAdaptation load_task(const std::string& task_name) const;
    bool has_task(const std::string& task_name) const;

    /// Task names currently in the manifest (sorted).
    std::vector<std::string> task_names() const;

    /// Registers every stored task with an engine; returns the count.
    std::int64_t load_all_into(MultiTaskEngine& engine) const;

    /// A by-name lookup closure for serving-time caches (e.g.
    /// serve::ThresholdCache): hydrates one adaptation from disk per
    /// call. The closure holds a copy of the directory path, so it stays
    /// valid after the store goes away.
    std::function<TaskAdaptation(const std::string&)> task_loader() const;

    /// Bytes on disk for the backbone / all adaptations — the physical
    /// counterpart of core::StorageModel's accounting.
    std::int64_t backbone_bytes() const;
    std::int64_t adaptation_bytes() const;

private:
    std::string task_path(const std::string& task_name) const;
    void write_manifest(const std::vector<std::string>& names) const;

    std::string directory_;
};

}  // namespace mime::core
