#include "core/calibration.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mime::core {

namespace {

/// q-th quantile of `values` (in-place nth_element; q in [0, 1)).
float quantile(std::vector<float>& values, double q) {
    MIME_REQUIRE(!values.empty(), "quantile of empty set");
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(values.size()));
    const std::size_t clamped = std::min(index, values.size() - 1);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(clamped),
                     values.end());
    return values[clamped];
}

}  // namespace

std::vector<double> calibrate_thresholds(MimeNetwork& network,
                                         const data::Batch& calibration,
                                         const CalibrationOptions& options) {
    MIME_REQUIRE(options.target_sparsity >= 0.0 &&
                     options.target_sparsity < 1.0,
                 "target sparsity must be in [0, 1)");
    MIME_REQUIRE(calibration.size() > 0, "calibration batch is empty");
    if (options.granularity == CalibrationGranularity::per_neuron) {
        MIME_REQUIRE(calibration.size() >= 8,
                     "per-neuron calibration needs at least 8 samples");
    }

    network.set_training(false);
    network.set_mode(ActivationMode::threshold);
    // Pass-through thresholds everywhere: masks fire for every neuron, so
    // each forward exposes raw MAC outputs at the not-yet-calibrated
    // sites while already-calibrated earlier sites take effect.
    constexpr float kPassThrough = -1e9f;
    network.reset_thresholds(kPassThrough);

    std::vector<double> achieved;
    achieved.reserve(static_cast<std::size_t>(network.site_count()));

    for (std::int64_t k = 0; k < network.site_count(); ++k) {
        network.forward(calibration.images);
        ThresholdMask& mask = network.site(k).mask();
        const Tensor& y = mask.last_input();
        const std::int64_t per_sample = mask.activation_shape().numel();
        const std::int64_t batch = calibration.size();

        Tensor thresholds(mask.activation_shape());
        if (options.granularity == CalibrationGranularity::per_layer) {
            std::vector<float> all(y.data(), y.data() + y.numel());
            const float t = std::max(
                quantile(all, options.target_sparsity), options.floor);
            thresholds.fill(t);
        } else {
            std::vector<float> column(static_cast<std::size_t>(batch));
            for (std::int64_t i = 0; i < per_sample; ++i) {
                for (std::int64_t n = 0; n < batch; ++n) {
                    column[static_cast<std::size_t>(n)] =
                        y[n * per_sample + i];
                }
                thresholds[i] = std::max(
                    quantile(column, options.target_sparsity), options.floor);
            }
        }
        mask.thresholds().value = thresholds;
        mask.mark_thresholds_dirty();

        // Achieved sparsity on the calibration batch after clamping.
        std::int64_t masked = 0;
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t i = 0; i < per_sample; ++i) {
                if (y[n * per_sample + i] - thresholds[i] < 0.0f) {
                    ++masked;
                }
            }
        }
        achieved.push_back(static_cast<double>(masked) /
                           static_cast<double>(batch * per_sample));
    }
    return achieved;
}

}  // namespace mime::core
