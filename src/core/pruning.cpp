#include "core/pruning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/mime_network.h"
#include "nn/loss.h"

namespace mime::core {

void WeightMaskSet::add(nn::Parameter* parameter, Tensor mask) {
    MIME_REQUIRE(parameter != nullptr, "mask needs a parameter");
    MIME_REQUIRE(mask.shape() == parameter->value.shape(),
                 "mask shape mismatch for '" + parameter->name + "'");
    entries_.push_back(Entry{parameter, std::move(mask)});
}

void WeightMaskSet::apply() const {
    for (const Entry& e : entries_) {
        Tensor& w = e.parameter->value;
        for (std::int64_t i = 0; i < w.numel(); ++i) {
            w[i] *= e.mask[i];
        }
    }
}

double WeightMaskSet::sparsity(std::size_t index) const {
    return zero_fraction(entry(index).mask);
}

double WeightMaskSet::overall_sparsity() const {
    std::int64_t zeros = 0;
    std::int64_t total = 0;
    for (const Entry& e : entries_) {
        for (std::int64_t i = 0; i < e.mask.numel(); ++i) {
            if (e.mask[i] == 0.0f) {
                ++zeros;
            }
        }
        total += e.mask.numel();
    }
    MIME_REQUIRE(total > 0, "empty mask set");
    return static_cast<double>(zeros) / static_cast<double>(total);
}

const WeightMaskSet::Entry& WeightMaskSet::entry(std::size_t index) const {
    MIME_REQUIRE(index < entries_.size(), "mask entry index out of range");
    return entries_[index];
}

namespace {

/// Weight parameters of the network in layer order, excluding biases and
/// the classifier head (the comparators of Fig 8 prune feature layers).
std::vector<nn::Parameter*> prunable_weights(MimeNetwork& network) {
    std::vector<nn::Parameter*> weights;
    for (nn::Parameter* p : network.backbone_parameters()) {
        const bool is_weight =
            p->name.size() > 7 &&
            p->name.compare(p->name.size() - 7, 7, ".weight") == 0;
        const bool is_classifier = p->name.rfind("classifier", 0) == 0;
        if (is_weight && !is_classifier) {
            weights.push_back(p);
        }
    }
    return weights;
}

/// Builds a keep-mask keeping the `keep_count` largest scores per layer.
Tensor mask_from_scores(const Tensor& scores, double sparsity) {
    const std::int64_t n = scores.numel();
    const auto prune_count = static_cast<std::int64_t>(
        std::floor(static_cast<double>(n) * sparsity));
    Tensor mask = Tensor::ones(scores.shape());
    if (prune_count <= 0) {
        return mask;
    }
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        order[static_cast<std::size_t>(i)] = i;
    }
    std::nth_element(order.begin(), order.begin() + prune_count, order.end(),
                     [&scores](std::int64_t a, std::int64_t b) {
                         return scores[a] < scores[b];
                     });
    for (std::int64_t i = 0; i < prune_count; ++i) {
        mask[order[static_cast<std::size_t>(i)]] = 0.0f;
    }
    return mask;
}

}  // namespace

WeightMaskSet prune_at_init(MimeNetwork& network, const data::Batch& probe,
                            double sparsity, ThreadPool* pool) {
    MIME_REQUIRE(sparsity >= 0.0 && sparsity < 1.0,
                 "sparsity must be in [0, 1)");

    // One forward/backward pass on the probe batch to get dL/dw.
    network.set_pool(pool);
    network.set_training(true);
    network.set_mode(ActivationMode::relu);
    for (nn::Parameter* p : network.backbone_parameters()) {
        p->zero_grad();
    }
    nn::SoftmaxCrossEntropy loss;
    const Tensor logits = network.forward(probe.images);
    loss.forward(logits, probe.labels);
    network.backward(loss.backward());
    network.set_training(false);

    WeightMaskSet set;
    for (nn::Parameter* p : prunable_weights(network)) {
        // SNIP connection saliency: |g ⊙ w|.
        Tensor scores(p->value.shape());
        for (std::int64_t i = 0; i < scores.numel(); ++i) {
            scores[i] = std::abs(p->grad[i] * p->value[i]);
        }
        set.add(p, mask_from_scores(scores, sparsity));
    }
    set.apply();
    return set;
}

WeightMaskSet magnitude_prune(MimeNetwork& network, double sparsity) {
    MIME_REQUIRE(sparsity >= 0.0 && sparsity < 1.0,
                 "sparsity must be in [0, 1)");
    WeightMaskSet set;
    for (nn::Parameter* p : prunable_weights(network)) {
        Tensor scores(p->value.shape());
        for (std::int64_t i = 0; i < scores.numel(); ++i) {
            scores[i] = std::abs(p->value[i]);
        }
        set.add(p, mask_from_scores(scores, sparsity));
    }
    set.apply();
    return set;
}

std::vector<double> measured_weight_sparsity(MimeNetwork& network) {
    std::vector<double> result;
    for (nn::Parameter* p : prunable_weights(network)) {
        result.push_back(zero_fraction(p->value));
    }
    return result;
}

}  // namespace mime::core
