#include "core/distillation.h"

#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace mime::core {

void DistillationOptions::validate() const {
    MIME_REQUIRE(temperature > 0.0f, "temperature must be positive");
    MIME_REQUIRE(alpha >= 0.0f && alpha <= 1.0f, "alpha must be in [0, 1]");
    MIME_REQUIRE(train.epochs > 0, "epochs must be positive");
}

double distillation_loss(const Tensor& student_logits,
                         const Tensor& teacher_logits, float temperature) {
    MIME_REQUIRE(student_logits.shape() == teacher_logits.shape(),
                 "student/teacher logit shapes differ");
    MIME_REQUIRE(temperature > 0.0f, "temperature must be positive");
    const Tensor teacher_probs =
        softmax_rows(mul(teacher_logits, 1.0f / temperature));
    const Tensor student_log_probs =
        log_softmax_rows(mul(student_logits, 1.0f / temperature));
    const std::int64_t batch = student_logits.shape().dim(0);

    double kl = 0.0;
    for (std::int64_t i = 0; i < teacher_probs.numel(); ++i) {
        const double p = teacher_probs[i];
        if (p > 0.0) {
            kl += p * (std::log(p) - student_log_probs[i]);
        }
    }
    return kl / static_cast<double>(batch);
}

TrainHistory train_distilled(MimeNetwork& student, MimeNetwork& teacher,
                             const data::Dataset& train_set,
                             const DistillationOptions& options) {
    options.validate();
    const TrainOptions& train = options.train;

    student.set_mode(ActivationMode::relu);
    student.freeze_backbone(false);
    student.set_pool(train.pool);
    student.set_training(true);
    teacher.set_mode(ActivationMode::relu);
    teacher.set_pool(train.pool);
    teacher.set_training(false);

    nn::Adam optimizer(student.backbone_parameters(), train.learning_rate);
    nn::SoftmaxCrossEntropy ce;
    data::DataLoader loader(train_set, train.batch_size,
                            Rng(train.shuffle_seed));

    const float temperature = options.temperature;
    const float alpha = options.alpha;

    TrainHistory history;
    for (std::int64_t epoch = 0; epoch < train.epochs; ++epoch) {
        double epoch_loss = 0.0;
        std::int64_t correct = 0;
        std::int64_t seen = 0;

        for (const data::Batch& batch : loader.epoch()) {
            optimizer.zero_grad();
            const Tensor student_logits = student.forward(batch.images);
            const Tensor teacher_logits = teacher.forward(batch.images);

            const double hard_loss = ce.forward(student_logits, batch.labels);
            const double soft_loss = distillation_loss(
                student_logits, teacher_logits, temperature);
            const double total =
                alpha * temperature * temperature * soft_loss +
                (1.0 - alpha) * hard_loss;

            // d(total)/d(student_logits):
            //   hard term: (1-alpha) * (softmax(z_s) - onehot) / B
            //   soft term: alpha * T * (softmax(z_s/T) - softmax(z_t/T)) / B
            // (the T^2 prefactor cancels one 1/T from the inner softmax
            // derivative, leaving a single factor T).
            const Tensor hard_grad = ce.backward();
            const Tensor student_soft =
                softmax_rows(mul(student_logits, 1.0f / temperature));
            const Tensor teacher_soft =
                softmax_rows(mul(teacher_logits, 1.0f / temperature));
            const auto batch_size = static_cast<float>(batch.size());

            Tensor grad(student_logits.shape());
            for (std::int64_t i = 0; i < grad.numel(); ++i) {
                grad[i] = (1.0f - alpha) * hard_grad[i] +
                          alpha * temperature *
                              (student_soft[i] - teacher_soft[i]) /
                              batch_size;
            }
            student.backward(grad);
            optimizer.step();

            epoch_loss += total * static_cast<double>(batch.size());
            correct += ce.last_correct();
            seen += batch.size();
        }

        EpochStats stats;
        stats.epoch = epoch + 1;
        stats.train_loss = epoch_loss / static_cast<double>(seen);
        stats.train_accuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        history.epochs.push_back(stats);
        if (train.verbose) {
            log_info("distill epoch " + std::to_string(stats.epoch) +
                     " loss " + std::to_string(stats.train_loss) + " acc " +
                     std::to_string(stats.train_accuracy));
        }
    }
    student.set_training(false);
    return history;
}

}  // namespace mime::core
