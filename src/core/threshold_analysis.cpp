#include "core/threshold_analysis.h"

#include <cmath>

#include "common/check.h"

namespace mime::core {

std::vector<ThresholdLayerStats> threshold_statistics(
    const ThresholdSet& set, const std::vector<arch::LayerSpec>& layers,
    float floor) {
    MIME_REQUIRE(set.thresholds.size() == layers.size(),
                 "threshold set / layer spec size mismatch");
    std::vector<ThresholdLayerStats> stats;
    stats.reserve(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Tensor& t = set.thresholds[i];
        ThresholdLayerStats s;
        s.layer = layers[i].name;
        s.count = t.numel();
        double acc = 0.0;
        double acc_sq = 0.0;
        std::int64_t at_floor = 0;
        s.min = t[0];
        s.max = t[0];
        for (std::int64_t j = 0; j < t.numel(); ++j) {
            const double v = t[j];
            acc += v;
            acc_sq += v * v;
            s.min = std::min(s.min, static_cast<double>(t[j]));
            s.max = std::max(s.max, static_cast<double>(t[j]));
            if (t[j] <= floor) {
                ++at_floor;
            }
        }
        const auto n = static_cast<double>(t.numel());
        s.mean = acc / n;
        s.stddev = std::sqrt(std::max(0.0, acc_sq / n - s.mean * s.mean));
        s.at_floor_fraction = static_cast<double>(at_floor) / n;
        stats.push_back(s);
    }
    return stats;
}

std::vector<MaskOverlap> mask_overlap(MimeNetwork& network,
                                      const ThresholdSet& task_a,
                                      const ThresholdSet& task_b,
                                      const data::Batch& probe) {
    MIME_REQUIRE(probe.size() > 0, "probe batch must be non-empty");

    const ThresholdSet saved = network.snapshot_thresholds("__saved__");
    const ActivationMode saved_mode = network.mode();
    network.set_training(false);
    network.set_mode(ActivationMode::threshold);

    // Pass 1: task A masks.
    network.load_thresholds(task_a);
    network.forward(probe.images);
    std::vector<Tensor> masks_a;
    masks_a.reserve(static_cast<std::size_t>(network.site_count()));
    for (std::int64_t i = 0; i < network.site_count(); ++i) {
        masks_a.push_back(network.site(i).mask().last_mask());
    }

    // Pass 2: task B masks.
    network.load_thresholds(task_b);
    network.forward(probe.images);

    std::vector<MaskOverlap> overlaps;
    overlaps.reserve(masks_a.size());
    for (std::int64_t i = 0; i < network.site_count(); ++i) {
        const Tensor& a = masks_a[static_cast<std::size_t>(i)];
        const Tensor& b = network.site(i).mask().last_mask();
        MIME_ENSURE(a.shape() == b.shape(), "mask shape mismatch");

        std::int64_t intersection = 0;
        std::int64_t union_count = 0;
        std::int64_t active_a = 0;
        std::int64_t active_b = 0;
        for (std::int64_t j = 0; j < a.numel(); ++j) {
            const bool fa = a[j] != 0.0f;
            const bool fb = b[j] != 0.0f;
            intersection += (fa && fb) ? 1 : 0;
            union_count += (fa || fb) ? 1 : 0;
            active_a += fa ? 1 : 0;
            active_b += fb ? 1 : 0;
        }
        MaskOverlap o;
        o.layer = network.site_name(i);
        o.jaccard = union_count == 0
                        ? 1.0
                        : static_cast<double>(intersection) /
                              static_cast<double>(union_count);
        o.active_fraction_a =
            static_cast<double>(active_a) / static_cast<double>(a.numel());
        o.active_fraction_b =
            static_cast<double>(active_b) / static_cast<double>(b.numel());
        overlaps.push_back(o);
    }

    network.load_thresholds(saved);
    network.set_mode(saved_mode);
    return overlaps;
}

double mean_overlap(const std::vector<MaskOverlap>& overlaps) {
    MIME_REQUIRE(!overlaps.empty(), "no overlaps to average");
    double acc = 0.0;
    for (const auto& o : overlaps) {
        acc += o.jaccard;
    }
    return acc / static_cast<double>(overlaps.size());
}

}  // namespace mime::core
