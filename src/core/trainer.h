// Training loops for the three model families of the paper:
//   * parent backbone training / conventional per-child fine-tuning
//     (Table III baselines),
//   * MIME threshold training with a frozen backbone (Table II),
//   * masked (pruned) training for the 90%-weight-sparse comparators
//     (Fig 8).
#pragma once

#include <cstdint>
#include <vector>

#include "core/mime_network.h"
#include "core/pruning.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "nn/lr_schedule.h"

namespace mime::core {

/// Hyper-parameters. Defaults follow the paper's threshold training:
/// 10 epochs, Adam, lr = 1e-3, beta = 1e-6 at batch size 100.
struct TrainOptions {
    std::int64_t epochs = 10;
    std::int64_t batch_size = 100;
    float learning_rate = 1e-3f;
    /// Weight of the threshold regularizer L_t (eq. 3). Only used by
    /// train_thresholds.
    float beta = 1e-6f;
    /// Thresholds are clamped to >= this after every step (paper: t > 0).
    float threshold_floor = 0.0f;
    /// Train the classifier head together with the thresholds. The paper
    /// is silent on task heads; child tasks with differing class counts
    /// require one (see DESIGN.md), and its parameters are negligible
    /// next to W_parent.
    bool train_classifier_with_thresholds = true;
    std::uint64_t shuffle_seed = 13;
    ThreadPool* pool = nullptr;
    bool verbose = false;
    /// When set, weights are re-masked after every optimizer step
    /// (pruned-model training).
    const WeightMaskSet* weight_masks = nullptr;
    /// Optional per-epoch learning-rate schedule (null = constant).
    nn::LrSchedule lr_schedule = nullptr;
    /// Optional training-time augmentation applied to every batch.
    const data::AugmentOptions* augment = nullptr;
    std::uint64_t augment_seed = 29;
};

/// Loss / accuracy after each epoch.
struct EpochStats {
    std::int64_t epoch = 0;
    double train_loss = 0.0;
    double train_accuracy = 0.0;
};

struct TrainHistory {
    std::vector<EpochStats> epochs;

    const EpochStats& final_epoch() const;
};

/// Trains all parameters (backbone + classifier) in ReLU mode. Used for
/// the parent task and for conventional per-child fine-tuning.
TrainHistory train_backbone(MimeNetwork& network,
                            const data::Dataset& train_set,
                            const TrainOptions& options);

/// Trains only threshold parameters (plus optionally the classifier
/// head) in threshold mode with the backbone frozen; loss is
/// L = L_CE + beta * L_t (eq. 3). This is Algorithm "MIME" of the paper.
TrainHistory train_thresholds(MimeNetwork& network,
                              const data::Dataset& train_set,
                              const TrainOptions& options);

/// Accuracy / loss on a dataset in the network's current mode.
struct EvalResult {
    double loss = 0.0;
    double accuracy = 0.0;
};

EvalResult evaluate(MimeNetwork& network, const data::Dataset& test_set,
                    std::int64_t batch_size = 100,
                    ThreadPool* pool = nullptr);

}  // namespace mime::core
