#include "core/sparsity.h"

#include "common/check.h"

namespace mime::core {

double SparsityReport::overall() const {
    MIME_REQUIRE(!average_sparsity.empty(), "empty sparsity report");
    double acc = 0.0;
    for (const double s : average_sparsity) {
        acc += s;
    }
    return acc / static_cast<double>(average_sparsity.size());
}

double SparsityReport::layer(const std::string& name) const {
    for (std::size_t i = 0; i < layer_names.size(); ++i) {
        if (layer_names[i] == name) {
            return average_sparsity[i];
        }
    }
    MIME_REQUIRE(false, "no layer named '" + name + "' in sparsity report");
    return 0.0;  // unreachable
}

SparsityReport measure_sparsity(MimeNetwork& network,
                                const data::Dataset& dataset,
                                std::int64_t batch_size, ThreadPool* pool) {
    MIME_REQUIRE(dataset.size() > 0, "cannot measure sparsity on empty data");
    network.set_pool(pool);
    network.set_training(false);

    const std::int64_t sites = network.site_count();
    std::vector<double> weighted(static_cast<std::size_t>(sites), 0.0);
    std::int64_t seen = 0;

    const std::int64_t n = dataset.size();
    for (std::int64_t begin = 0; begin < n; begin += batch_size) {
        const std::int64_t count = std::min(batch_size, n - begin);
        std::vector<std::size_t> indices(static_cast<std::size_t>(count));
        for (std::int64_t i = 0; i < count; ++i) {
            indices[static_cast<std::size_t>(i)] =
                static_cast<std::size_t>(begin + i);
        }
        const data::Batch batch = dataset.gather(indices);
        network.forward(batch.images);
        const std::vector<double> s = network.last_site_sparsities();
        for (std::int64_t i = 0; i < sites; ++i) {
            weighted[static_cast<std::size_t>(i)] +=
                s[static_cast<std::size_t>(i)] * static_cast<double>(count);
        }
        seen += count;
    }

    SparsityReport report;
    report.layer_names.reserve(static_cast<std::size_t>(sites));
    report.average_sparsity.reserve(static_cast<std::size_t>(sites));
    for (std::int64_t i = 0; i < sites; ++i) {
        report.layer_names.push_back(network.site_name(i));
        report.average_sparsity.push_back(
            weighted[static_cast<std::size_t>(i)] /
            static_cast<double>(seen));
    }
    return report;
}

}  // namespace mime::core
