#include "core/multitask.h"

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime::core {

TaskAdaptation capture_adaptation(MimeNetwork& network,
                                  const std::string& task_name,
                                  std::int64_t num_classes) {
    TaskAdaptation adaptation;
    adaptation.name = task_name;
    adaptation.thresholds = network.snapshot_thresholds(task_name);
    auto backbone = network.backbone_parameters();
    MIME_REQUIRE(backbone.size() >= 2,
                 "backbone must end with classifier weight+bias");
    adaptation.head_weight = backbone[backbone.size() - 2]->value;
    adaptation.head_bias = backbone[backbone.size() - 1]->value;
    adaptation.num_classes = num_classes;
    return adaptation;
}

std::vector<PipelinedItem> interleave_tasks(
    const std::vector<const data::Dataset*>& datasets,
    std::int64_t items_per_task) {
    MIME_REQUIRE(!datasets.empty(), "need at least one dataset");
    MIME_REQUIRE(items_per_task > 0, "items_per_task must be positive");
    std::vector<PipelinedItem> items;
    items.reserve(datasets.size() * static_cast<std::size_t>(items_per_task));
    for (std::int64_t round = 0; round < items_per_task; ++round) {
        for (std::size_t t = 0; t < datasets.size(); ++t) {
            const data::Dataset* ds = datasets[t];
            MIME_REQUIRE(ds != nullptr && round < ds->size(),
                         "dataset too small for requested stream");
            PipelinedItem item;
            item.image = batch_slice(ds->images(), round);
            item.task = static_cast<std::int64_t>(t);
            item.label = ds->labels()[static_cast<std::size_t>(round)];
            items.push_back(std::move(item));
        }
    }
    return items;
}

MultiTaskEngine::MultiTaskEngine(MimeNetwork& network) : network_(&network) {}

std::int64_t MultiTaskEngine::register_mime_task(TaskAdaptation adaptation) {
    MIME_REQUIRE(adaptation.num_classes > 0,
                 "adaptation needs a positive class count");
    mime_tasks_.push_back(std::move(adaptation));
    return static_cast<std::int64_t>(mime_tasks_.size()) - 1;
}

std::int64_t MultiTaskEngine::register_conventional_task(
    const std::string& name, std::vector<Tensor> backbone_snapshot,
    std::int64_t num_classes) {
    MIME_REQUIRE(num_classes > 0, "task needs a positive class count");
    conventional_backbones_.push_back(std::move(backbone_snapshot));
    conventional_names_.push_back(name);
    conventional_classes_.push_back(num_classes);
    return static_cast<std::int64_t>(conventional_backbones_.size()) - 1;
}

std::int64_t MultiTaskEngine::task_count(Scheme scheme) const {
    return scheme == Scheme::mime
               ? static_cast<std::int64_t>(mime_tasks_.size())
               : static_cast<std::int64_t>(conventional_backbones_.size());
}

void MultiTaskEngine::activate_mime_task(std::int64_t task) {
    MIME_REQUIRE(task >= 0 && task < task_count(Scheme::mime),
                 "unknown MIME task " + std::to_string(task));
    if (task == active_mime_task_) {
        return;  // weights and thresholds already resident
    }
    const TaskAdaptation& a = mime_tasks_[static_cast<std::size_t>(task)];
    // Invalidate before mutating so a throw mid-install can't leave a
    // stale active index pointing at mixed thresholds.
    active_mime_task_ = -1;
    active_conventional_task_ = -1;
    network_->load_thresholds(a.thresholds);
    auto backbone = network_->backbone_parameters();
    backbone[backbone.size() - 2]->value.copy_from(a.head_weight);
    backbone[backbone.size() - 1]->value.copy_from(a.head_bias);
    active_mime_task_ = task;
    ++threshold_switches_;
}

void MultiTaskEngine::activate_conventional_task(std::int64_t task) {
    MIME_REQUIRE(task >= 0 && task < task_count(Scheme::conventional),
                 "unknown conventional task " + std::to_string(task));
    if (task == active_conventional_task_) {
        return;
    }
    network_->load_backbone(
        conventional_backbones_[static_cast<std::size_t>(task)]);
    active_conventional_task_ = task;
    active_mime_task_ = -1;
    ++backbone_switches_;
}

std::vector<std::int64_t> MultiTaskEngine::predict(
    Scheme scheme, const std::vector<PipelinedItem>& items) {
    MIME_REQUIRE(!items.empty(), "empty pipelined stream");
    network_->set_training(false);
    if (scheme == Scheme::mime) {
        network_->set_mode(ActivationMode::threshold);
    } else {
        network_->set_mode(ActivationMode::relu);
    }

    std::vector<std::int64_t> predictions;
    predictions.reserve(items.size());
    for (const PipelinedItem& item : items) {
        if (scheme == Scheme::mime) {
            activate_mime_task(item.task);
        } else {
            activate_conventional_task(item.task);
        }
        const Tensor batch = stack({item.image});
        const Tensor logits = network_->forward(batch);
        const std::int64_t classes =
            scheme == Scheme::mime
                ? mime_tasks_[static_cast<std::size_t>(item.task)].num_classes
                : conventional_classes_[static_cast<std::size_t>(item.task)];
        // Restrict the argmax to the task's label range (the shared head
        // is sized for the largest task).
        const float* row = logits.data();
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < classes; ++c) {
            if (row[c] > row[best]) {
                best = c;
            }
        }
        predictions.push_back(best);
    }
    return predictions;
}

double MultiTaskEngine::accuracy(Scheme scheme,
                                 const std::vector<PipelinedItem>& items) {
    const std::vector<std::int64_t> predictions = predict(scheme, items);
    std::int64_t correct = 0;
    std::int64_t labeled = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].label >= 0) {
            ++labeled;
            if (predictions[i] == items[i].label) {
                ++correct;
            }
        }
    }
    MIME_REQUIRE(labeled > 0, "no labeled items in stream");
    return static_cast<double>(correct) / static_cast<double>(labeled);
}

void MultiTaskEngine::reset_switch_counters() {
    threshold_switches_ = 0;
    backbone_switches_ = 0;
    // Force a reload on the next item so counters reflect a fresh run.
    active_mime_task_ = -1;
    active_conventional_task_ = -1;
}

}  // namespace mime::core
