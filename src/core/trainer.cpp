#include "core/trainer.h"

#include "common/check.h"
#include "common/logging.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mime::core {

namespace {

/// Shared epoch loop. `post_step` runs after every optimizer step
/// (threshold clamping / weight re-masking).
template <typename PostStep>
TrainHistory run_training(MimeNetwork& network,
                          const data::Dataset& train_set,
                          const TrainOptions& options,
                          std::vector<nn::Parameter*> trainable,
                          float beta, PostStep post_step) {
    MIME_REQUIRE(options.epochs > 0, "epochs must be positive");
    MIME_REQUIRE(!trainable.empty(), "no trainable parameters");

    network.set_pool(options.pool);
    network.set_training(true);

    nn::Adam optimizer(trainable, options.learning_rate);
    nn::SoftmaxCrossEntropy loss;
    data::DataLoader loader(train_set, options.batch_size,
                            Rng(options.shuffle_seed));
    Rng augment_rng(options.augment_seed);

    TrainHistory history;
    for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
        double epoch_loss = 0.0;
        std::int64_t correct = 0;
        std::int64_t seen = 0;

        if (options.lr_schedule != nullptr) {
            optimizer.set_learning_rate(
                options.lr_schedule(epoch, options.learning_rate));
        }

        for (data::Batch& batch : loader.epoch()) {
            if (options.augment != nullptr) {
                data::augment_batch(batch, *options.augment, augment_rng);
            }
            optimizer.zero_grad();
            const Tensor logits = network.forward(batch.images);
            double batch_loss = loss.forward(logits, batch.labels);
            if (beta > 0.0f) {
                batch_loss +=
                    beta * network.threshold_regularization_loss();
            }
            network.backward(loss.backward());
            if (beta > 0.0f) {
                network.add_threshold_regularization_gradient(beta);
            }
            optimizer.step();
            post_step();

            epoch_loss += batch_loss * static_cast<double>(batch.size());
            correct += loss.last_correct();
            seen += batch.size();
        }

        EpochStats stats;
        stats.epoch = epoch + 1;
        stats.train_loss = epoch_loss / static_cast<double>(seen);
        stats.train_accuracy =
            static_cast<double>(correct) / static_cast<double>(seen);
        history.epochs.push_back(stats);

        if (options.verbose) {
            log_info("epoch " + std::to_string(stats.epoch) + "/" +
                     std::to_string(options.epochs) + " loss " +
                     std::to_string(stats.train_loss) + " acc " +
                     std::to_string(stats.train_accuracy));
        }
    }
    network.set_training(false);
    return history;
}

}  // namespace

const EpochStats& TrainHistory::final_epoch() const {
    MIME_REQUIRE(!epochs.empty(), "empty training history");
    return epochs.back();
}

TrainHistory train_backbone(MimeNetwork& network,
                            const data::Dataset& train_set,
                            const TrainOptions& options) {
    network.set_mode(ActivationMode::relu);
    network.freeze_backbone(false);
    const WeightMaskSet* masks = options.weight_masks;
    if (masks != nullptr) {
        masks->apply();
    }
    return run_training(
        network, train_set, options, network.backbone_parameters(),
        /*beta=*/0.0f, [masks] {
            if (masks != nullptr) {
                masks->apply();
            }
        });
}

TrainHistory train_thresholds(MimeNetwork& network,
                              const data::Dataset& train_set,
                              const TrainOptions& options) {
    network.set_mode(ActivationMode::threshold);
    network.freeze_backbone(true);

    std::vector<nn::Parameter*> trainable = network.threshold_parameters();
    if (options.train_classifier_with_thresholds) {
        // The task head must adapt to the child label space; its
        // parameters are negligible next to W_parent (see DESIGN.md).
        auto backbone = network.backbone_parameters();
        MIME_REQUIRE(backbone.size() >= 2,
                     "backbone must end with classifier weight+bias");
        nn::Parameter* cls_weight = backbone[backbone.size() - 2];
        nn::Parameter* cls_bias = backbone[backbone.size() - 1];
        cls_weight->trainable = true;
        cls_bias->trainable = true;
        trainable.push_back(cls_weight);
        trainable.push_back(cls_bias);
    }

    MimeNetwork* net = &network;
    const float floor = options.threshold_floor;
    return run_training(network, train_set, options, std::move(trainable),
                        options.beta,
                        [net, floor] { net->clamp_thresholds(floor); });
}

EvalResult evaluate(MimeNetwork& network, const data::Dataset& test_set,
                    std::int64_t batch_size, ThreadPool* pool) {
    MIME_REQUIRE(batch_size > 0, "batch size must be positive");
    network.set_pool(pool);
    network.set_training(false);

    nn::SoftmaxCrossEntropy loss;
    EvalResult result;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    double total_loss = 0.0;

    const std::int64_t n = test_set.size();
    for (std::int64_t begin = 0; begin < n; begin += batch_size) {
        const std::int64_t count = std::min(batch_size, n - begin);
        std::vector<std::size_t> indices(static_cast<std::size_t>(count));
        for (std::int64_t i = 0; i < count; ++i) {
            indices[static_cast<std::size_t>(i)] =
                static_cast<std::size_t>(begin + i);
        }
        const data::Batch batch = test_set.gather(indices);
        const Tensor logits = network.forward(batch.images);
        total_loss +=
            loss.forward(logits, batch.labels) * static_cast<double>(count);
        correct += loss.last_correct();
        seen += count;
    }
    result.loss = total_loss / static_cast<double>(seen);
    result.accuracy =
        static_cast<double>(correct) / static_cast<double>(seen);
    return result;
}

}  // namespace mime::core
