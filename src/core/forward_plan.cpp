#include "core/forward_plan.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/check.h"
#include "core/mime_network.h"
#include "nn/layers.h"

namespace mime::core {

namespace {

std::int64_t tensor_bytes(const Tensor& t) {
    return t.numel() * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

ForwardPlan::ForwardPlan(MimeNetwork& network, std::int64_t batch_size)
    : network_(&network),
      batch_size_(batch_size),
      quantized_(network.quantized_execution().enabled) {
    MIME_REQUIRE(batch_size >= 1, "ForwardPlan batch size must be >= 1");
    MIME_REQUIRE(!network.layer_specs().empty(),
                 "ForwardPlan needs a built network");
    const arch::LayerSpec& first = network.layer_specs().front();
    input_shape_ = Shape(
        {batch_size, first.in_channels, first.in_height, first.in_width});
    input_slab_ = Tensor(input_shape_);

    nn::Sequential& graph = network.network();
    // Reserved up front: `last_buffer` points into steps_ during the
    // build, so the vector must never reallocate.
    steps_.reserve(graph.size());
    profiles_.reserve(graph.size());
    // Per-kind ordinals for profile names (conv1, bn1, act1, ...). bn
    // and act number after the conv/linear they follow, matching how
    // the arch layer specs are usually read.
    int conv_ordinal = 0;
    int bn_ordinal = 0;
    int act_ordinal = 0;
    int pool_ordinal = 0;
    int fc_ordinal = 0;
    Shape current = input_shape_;
    Tensor* last_buffer = nullptr;  // most recent plan-owned buffer

    // Deadness provenance for the sparse path: the most recent threshold
    // mask whose structural zeros still cover the current buffer. Masks
    // introduce it, max-pool keeps it at channel granularity (a pooled
    // all-zero channel stays all-zero), flatten keeps it (row-major
    // [C,H,W] flattens channels to contiguous feature ranges), and any
    // compute layer (conv/bn/linear) replaces the values, killing it.
    ActivationSite* upstream_site = nullptr;
    bool upstream_channel_only = false;

    for (std::size_t i = 0; i < graph.size(); ++i) {
        nn::Module& layer = graph.layer(i);
        Step step{};
        obs::LayerProfile profile;
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
            step.kind = Step::Kind::conv;
            step.conv = conv;
            // One validated geometry drives both the buffer shape and
            // the scratch reservation, so the plan can never diverge
            // from what forward_into computes.
            const ConvGeometry g =
                conv->geometry(current.dim(2), current.dim(3));
            std::size_t scratch;
            if (quantized_) {
                step.qweight =
                    nn::quantize_weights_per_channel(conv->weight().value);
                quantized_max_rel_error_ = std::max(
                    quantized_max_rel_error_, step.qweight.max_rel_error);
                scratch = conv->quantized_workspace_bytes(
                    current.dim(2), current.dim(3), batch_size);
            } else {
                scratch = static_cast<std::size_t>(conv->workspace_floats(
                              current.dim(2), current.dim(3), batch_size)) *
                          sizeof(float);
            }
            if (scratch > workspace_bytes_) {
                workspace_bytes_ = scratch;
            }
            profile.name = "conv" + std::to_string(++conv_ordinal);
            profile.workspace_bytes = scratch;
            // Conv consumes channel-level deadness (a fully-masked input
            // channel zeroes its K*K rows of the column matrix), which
            // both channel-only and full neuron-level provenance supply.
            if (upstream_site != nullptr &&
                upstream_site->mask().activation_shape().dim(0) ==
                    conv->in_channels()) {
                step.input_site = upstream_site;
            }
            step.buffer = Tensor({batch_size, conv->out_channels(),
                                  g.out_height(), g.out_width()});
            step.mac_per_k = static_cast<std::uint64_t>(
                batch_size * conv->out_channels() * g.col_cols());
            step.k_total = static_cast<std::uint64_t>(g.col_rows());
            current = step.buffer.shape();
            upstream_site = nullptr;
        } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "BatchNorm2d cannot be the first planned layer");
            step.kind = Step::Kind::batchnorm;
            step.bn = bn;
            profile.name = "bn" + std::to_string(++bn_ordinal);
            // The affine shift maps zeros to nonzeros: deadness dies.
            upstream_site = nullptr;
        } else if (auto* site = dynamic_cast<ActivationSite*>(&layer)) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "ActivationSite cannot be the first planned layer");
            step.kind = Step::Kind::activation;
            step.site = site;
            profile.name = "act" + std::to_string(++act_ordinal);
            upstream_site = site;
            upstream_channel_only = false;
        } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
            step.kind = Step::Kind::pool;
            step.pool = pool;
            profile.name = "pool" + std::to_string(++pool_ordinal);
            step.buffer = Tensor(pool->output_shape(current));
            current = step.buffer.shape();
            // Pooling mixes neurons within a channel but a structurally
            // dead channel (all zeros) pools to all zeros.
            upstream_channel_only = true;
        } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "Flatten cannot be the first planned layer");
            step.kind = Step::Kind::flatten;
            profile.name = "flatten";
            const std::int64_t features = current.numel() / batch_size;
            step.buffer = last_buffer->alias(Shape({batch_size, features}));
            current = step.buffer.shape();
        } else if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
            step.kind = Step::Kind::linear;
            step.linear = linear;
            profile.name = "fc" + std::to_string(++fc_ordinal);
            if (upstream_site != nullptr) {
                const ThresholdMask& mask = upstream_site->mask();
                const std::int64_t channels = mask.activation_shape().dim(0);
                if (!upstream_channel_only &&
                    mask.activation_shape().numel() == linear->in_features()) {
                    // Flatten of [C,H,W] is neuron-index order, so the
                    // mask's live list IS the live-feature list.
                    step.input_site = upstream_site;
                    step.input_neuron_level = true;
                } else if (channels > 0 &&
                           linear->in_features() % channels == 0) {
                    // Only channel deadness survived (pool in between):
                    // each mask channel owns a contiguous run of
                    // in_features/channels flattened features.
                    step.input_site = upstream_site;
                    step.input_neuron_level = false;
                    step.input_channel_extent =
                        linear->in_features() / channels;
                    step.live_scratch.reserve(
                        static_cast<std::size_t>(linear->in_features()));
                }
            }
            if (quantized_) {
                // Linear keeps its int8 snapshot transposed ([in, out])
                // so the GEMM tiles 16-wide over out_features; the
                // per-output-channel scales are unaffected.
                step.qweight = nn::transpose_quantized(
                    nn::quantize_weights_per_channel(linear->weight().value));
                quantized_max_rel_error_ = std::max(
                    quantized_max_rel_error_, step.qweight.max_rel_error);
                // Unlike the float path, quantized linear needs scratch
                // (int8 activations + int32 accumulators).
                const std::size_t scratch =
                    linear->quantized_workspace_bytes(batch_size);
                if (scratch > workspace_bytes_) {
                    workspace_bytes_ = scratch;
                }
                profile.workspace_bytes = scratch;
            }
            step.buffer = Tensor({batch_size, linear->out_features()});
            step.mac_per_k = static_cast<std::uint64_t>(
                batch_size * linear->out_features());
            step.k_total = static_cast<std::uint64_t>(linear->in_features());
            current = step.buffer.shape();
            upstream_site = nullptr;
        } else {
            MIME_REQUIRE(false, "ForwardPlan cannot schedule layer kind '" +
                                    layer.kind() + "'");
        }
        steps_.push_back(std::move(step));
        profiles_.push_back(std::move(profile));
        if (steps_.back().buffer.shape().rank() != 0) {
            last_buffer = &steps_.back().buffer;
        }
    }

    buffer_bytes_ = static_cast<std::size_t>(tensor_bytes(input_slab_));
    for (const Step& step : steps_) {
        if (step.kind == Step::Kind::conv ||
            step.kind == Step::Kind::pool ||
            step.kind == Step::Kind::linear) {
            buffer_bytes_ +=
                static_cast<std::size_t>(tensor_bytes(step.buffer));
        }
    }
}

const Tensor& ForwardPlan::run(const Tensor& input, Workspace& workspace) {
    MIME_REQUIRE(input.shape() == input_shape_,
                 "ForwardPlan::run input must be " + input_shape_.to_string() +
                     ", got " + input.shape().to_string());
    // Scratch has no cross-batch lifetime, so discard any leftover
    // offset up front: a batch that threw mid-conv (between alloc and
    // rewind) must not wedge every subsequent batch on this workspace.
    workspace.reset();
    if (workspace.capacity_bytes() < workspace_bytes_) {
        workspace.reserve(workspace_bytes_);  // warm-up only
    }

    const bool sparse_enabled = network_->sparse_execution().enabled;
    // Hoisted once per run: profiling costs one branch per step when
    // off, two steady_clock reads per step when on.
    const bool profiling = network_->plan_profiling();
    const Tensor* cur = &input;
    Tensor* cur_mut = nullptr;  // null while cur is the caller's input
    for (std::size_t si = 0; si < steps_.size(); ++si) {
        Step& step = steps_[si];
        std::chrono::steady_clock::time_point step_begin;
        std::uint64_t skipped_before = 0;
        std::uint64_t dense_before = 0;
        if (profiling) {
            skipped_before = skipped_macs_;
            dense_before = dense_macs_;
            step_begin = std::chrono::steady_clock::now();
        }
        switch (step.kind) {
            case Step::Kind::conv: {
                dense_macs_ += step.mac_per_k * step.k_total;
                nn::ActiveIndexView view;
                const nn::ActiveIndexView* viewp = nullptr;
                if (sparse_enabled && step.input_site != nullptr &&
                    step.input_site->mode() == ActivationMode::threshold) {
                    const ActiveSet& as =
                        step.input_site->mask().active_set();
                    view = {as.live_channels.data(),
                            static_cast<std::int64_t>(
                                as.live_channels.size()),
                            as.channels};
                    viewp = &view;
                }
                bool compacted;
                if (quantized_) {
                    compacted = step.conv->forward_into_quantized(
                        *cur, workspace, step.buffer, step.qweight, viewp);
                    ++quantized_hits_;
                } else {
                    compacted = step.conv->forward_into(*cur, workspace,
                                                        step.buffer, viewp);
                }
                if (compacted) {
                    ++sparse_hits_;
                    const std::uint64_t kk = static_cast<std::uint64_t>(
                        step.conv->kernel() * step.conv->kernel());
                    skipped_macs_ +=
                        step.mac_per_k *
                        (step.k_total -
                         static_cast<std::uint64_t>(view.count) * kk);
                }
                cur = cur_mut = &step.buffer;
                break;
            }
            case Step::Kind::batchnorm:
                step.bn->forward_into(*cur, *cur_mut);
                break;
            case Step::Kind::activation:
                step.site->forward_eval_inplace(*cur_mut);
                break;
            case Step::Kind::pool:
                step.pool->forward_into(*cur, step.buffer);
                cur = cur_mut = &step.buffer;
                break;
            case Step::Kind::flatten:
                // The view aliases cur_mut's storage; nothing to compute.
                cur = cur_mut = &step.buffer;
                break;
            case Step::Kind::linear: {
                dense_macs_ += step.mac_per_k * step.k_total;
                nn::ActiveIndexView view;
                const nn::ActiveIndexView* viewp = nullptr;
                if (sparse_enabled && step.input_site != nullptr &&
                    step.input_site->mode() == ActivationMode::threshold) {
                    const ActiveSet& as =
                        step.input_site->mask().active_set();
                    if (step.input_neuron_level) {
                        view = {as.live.data(),
                                static_cast<std::int64_t>(as.live.size()),
                                as.neurons};
                    } else {
                        // Expand live channels to their contiguous
                        // feature runs; capacity was reserved at build,
                        // so this never allocates.
                        step.live_scratch.clear();
                        for (const std::int64_t c : as.live_channels) {
                            const std::int64_t base =
                                c * step.input_channel_extent;
                            for (std::int64_t t = 0;
                                 t < step.input_channel_extent; ++t) {
                                step.live_scratch.push_back(base + t);
                            }
                        }
                        view = {step.live_scratch.data(),
                                static_cast<std::int64_t>(
                                    step.live_scratch.size()),
                                step.linear->in_features()};
                    }
                    viewp = &view;
                }
                bool compacted;
                if (quantized_) {
                    compacted = step.linear->forward_into_quantized(
                        *cur, workspace, step.buffer, step.qweight, viewp);
                    ++quantized_hits_;
                } else {
                    compacted =
                        step.linear->forward_into(*cur, step.buffer, viewp);
                }
                if (compacted) {
                    ++sparse_hits_;
                    skipped_macs_ +=
                        step.mac_per_k *
                        (step.k_total - static_cast<std::uint64_t>(view.count));
                }
                cur = cur_mut = &step.buffer;
                break;
            }
        }
        if (profiling) {
            obs::LayerProfile& profile = profiles_[si];
            ++profile.runs;
            profile.total_us +=
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - step_begin)
                    .count();
            profile.skipped_macs +=
                static_cast<std::int64_t>(skipped_macs_ - skipped_before);
            profile.dense_macs +=
                static_cast<std::int64_t>(dense_macs_ - dense_before);
        }
    }
    return *cur;
}

}  // namespace mime::core
