#include "core/forward_plan.h"

#include <string>

#include "common/check.h"
#include "core/mime_network.h"
#include "nn/layers.h"

namespace mime::core {

namespace {

std::int64_t tensor_bytes(const Tensor& t) {
    return t.numel() * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

ForwardPlan::ForwardPlan(MimeNetwork& network, std::int64_t batch_size)
    : batch_size_(batch_size) {
    MIME_REQUIRE(batch_size >= 1, "ForwardPlan batch size must be >= 1");
    MIME_REQUIRE(!network.layer_specs().empty(),
                 "ForwardPlan needs a built network");
    const arch::LayerSpec& first = network.layer_specs().front();
    input_shape_ = Shape(
        {batch_size, first.in_channels, first.in_height, first.in_width});
    input_slab_ = Tensor(input_shape_);

    nn::Sequential& graph = network.network();
    // Reserved up front: `last_buffer` points into steps_ during the
    // build, so the vector must never reallocate.
    steps_.reserve(graph.size());
    Shape current = input_shape_;
    Tensor* last_buffer = nullptr;  // most recent plan-owned buffer

    for (std::size_t i = 0; i < graph.size(); ++i) {
        nn::Module& layer = graph.layer(i);
        Step step{};
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
            step.kind = Step::Kind::conv;
            step.conv = conv;
            // One validated geometry drives both the buffer shape and
            // the scratch reservation, so the plan can never diverge
            // from what forward_into computes.
            const ConvGeometry g =
                conv->geometry(current.dim(2), current.dim(3));
            const std::size_t scratch =
                Workspace::aligned_floats(g.col_rows() * g.col_cols()) *
                sizeof(float);
            if (scratch > workspace_bytes_) {
                workspace_bytes_ = scratch;
            }
            step.buffer = Tensor({batch_size, conv->out_channels(),
                                  g.out_height(), g.out_width()});
            current = step.buffer.shape();
        } else if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "BatchNorm2d cannot be the first planned layer");
            step.kind = Step::Kind::batchnorm;
            step.bn = bn;
        } else if (auto* site = dynamic_cast<ActivationSite*>(&layer)) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "ActivationSite cannot be the first planned layer");
            step.kind = Step::Kind::activation;
            step.site = site;
        } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
            step.kind = Step::Kind::pool;
            step.pool = pool;
            step.buffer = Tensor(pool->output_shape(current));
            current = step.buffer.shape();
        } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
            MIME_REQUIRE(last_buffer != nullptr,
                         "Flatten cannot be the first planned layer");
            step.kind = Step::Kind::flatten;
            const std::int64_t features = current.numel() / batch_size;
            step.buffer = last_buffer->alias(Shape({batch_size, features}));
            current = step.buffer.shape();
        } else if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
            step.kind = Step::Kind::linear;
            step.linear = linear;
            step.buffer = Tensor({batch_size, linear->out_features()});
            current = step.buffer.shape();
        } else {
            MIME_REQUIRE(false, "ForwardPlan cannot schedule layer kind '" +
                                    layer.kind() + "'");
        }
        steps_.push_back(std::move(step));
        if (steps_.back().buffer.shape().rank() != 0) {
            last_buffer = &steps_.back().buffer;
        }
    }

    buffer_bytes_ = static_cast<std::size_t>(tensor_bytes(input_slab_));
    for (const Step& step : steps_) {
        if (step.kind == Step::Kind::conv ||
            step.kind == Step::Kind::pool ||
            step.kind == Step::Kind::linear) {
            buffer_bytes_ +=
                static_cast<std::size_t>(tensor_bytes(step.buffer));
        }
    }
}

const Tensor& ForwardPlan::run(const Tensor& input, Workspace& workspace) {
    MIME_REQUIRE(input.shape() == input_shape_,
                 "ForwardPlan::run input must be " + input_shape_.to_string() +
                     ", got " + input.shape().to_string());
    // Scratch has no cross-batch lifetime, so discard any leftover
    // offset up front: a batch that threw mid-conv (between alloc and
    // rewind) must not wedge every subsequent batch on this workspace.
    workspace.reset();
    if (workspace.capacity_bytes() < workspace_bytes_) {
        workspace.reserve(workspace_bytes_);  // warm-up only
    }

    const Tensor* cur = &input;
    Tensor* cur_mut = nullptr;  // null while cur is the caller's input
    for (Step& step : steps_) {
        switch (step.kind) {
            case Step::Kind::conv:
                step.conv->forward_into(*cur, workspace, step.buffer);
                cur = cur_mut = &step.buffer;
                break;
            case Step::Kind::batchnorm:
                step.bn->forward_into(*cur, *cur_mut);
                break;
            case Step::Kind::activation:
                step.site->forward_eval_inplace(*cur_mut);
                break;
            case Step::Kind::pool:
                step.pool->forward_into(*cur, step.buffer);
                cur = cur_mut = &step.buffer;
                break;
            case Step::Kind::flatten:
                // The view aliases cur_mut's storage; nothing to compute.
                cur = cur_mut = &step.buffer;
                break;
            case Step::Kind::linear:
                step.linear->forward_into(*cur, step.buffer);
                cur = cur_mut = &step.buffer;
                break;
        }
    }
    return *cur;
}

}  // namespace mime::core
