// Analysis of learned threshold sets and the subnetworks they select.
//
// The paper's Fig 2(b) pictures MIME as activating a different
// sub-network of the shared backbone per (task, input). These tools
// quantify that: per-layer threshold statistics, per-task mask firing
// rates, and the overlap between the subnetworks two tasks select on the
// same inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mime_network.h"
#include "data/dataset.h"

namespace mime::core {

/// Distribution summary of one layer's thresholds.
struct ThresholdLayerStats {
    std::string layer;
    std::int64_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Fraction of thresholds at (or below) the clamp floor — neurons the
    /// task leaves essentially ungated.
    double at_floor_fraction = 0.0;
};

/// Per-layer statistics of a threshold set.
std::vector<ThresholdLayerStats> threshold_statistics(
    const ThresholdSet& set, const std::vector<arch::LayerSpec>& layers,
    float floor = 1e-4f);

/// Overlap between the binary masks two tasks produce on identical
/// inputs, per layer. Overlap = |A ∩ B| / |A ∪ B| (Jaccard) over active
/// neurons, averaged across the probe batch.
struct MaskOverlap {
    std::string layer;
    double jaccard = 0.0;
    double active_fraction_a = 0.0;  ///< mean firing rate under task A
    double active_fraction_b = 0.0;  ///< mean firing rate under task B
};

/// Runs `probe` through the network once under each task's thresholds
/// (threshold mode) and measures per-layer mask agreement. The network's
/// threshold state is restored afterwards.
std::vector<MaskOverlap> mask_overlap(MimeNetwork& network,
                                      const ThresholdSet& task_a,
                                      const ThresholdSet& task_b,
                                      const data::Batch& probe);

/// Mean Jaccard overlap across layers.
double mean_overlap(const std::vector<MaskOverlap>& overlaps);

}  // namespace mime::core
