// Functional multi-task inference engine.
//
// Runs interleaved per-image task streams against one MimeNetwork under
// either scheme:
//   * MIME: one shared backbone; per item only the threshold set (and
//     task head) is swapped,
//   * conventional: a full fine-tuned backbone snapshot is swapped per
//     item.
// The engine both produces predictions and records the parameter-switch
// trace that mirrors what the hardware simulator charges DRAM traffic
// for in Pipelined task mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mime_network.h"
#include "data/dataset.h"

namespace mime::core {

/// Everything MIME stores per child task: the threshold set plus the
/// (tiny) task head.
struct TaskAdaptation {
    std::string name;
    ThresholdSet thresholds;
    Tensor head_weight;
    Tensor head_bias;
    std::int64_t num_classes = 0;
};

/// Captures the current thresholds + classifier head of `network` as the
/// adaptation for one child task.
TaskAdaptation capture_adaptation(MimeNetwork& network,
                                  const std::string& task_name,
                                  std::int64_t num_classes);

/// One image tagged with its task.
struct PipelinedItem {
    Tensor image;            ///< [C, H, W]
    std::int64_t task = 0;   ///< index into the engine's registered tasks
    std::int64_t label = -1; ///< optional ground truth
};

/// Builds a pipelined stream that interleaves tasks round-robin, taking
/// consecutive samples from each dataset (the paper's Pipelined task
/// mode: a batch of images in succession belonging to different tasks).
std::vector<PipelinedItem> interleave_tasks(
    const std::vector<const data::Dataset*>& datasets,
    std::int64_t items_per_task);

/// Multi-task inference over a shared MimeNetwork.
class MultiTaskEngine {
public:
    enum class Scheme { mime, conventional };

    explicit MultiTaskEngine(MimeNetwork& network);

    /// Registers a MIME child task; returns its task index.
    std::int64_t register_mime_task(TaskAdaptation adaptation);

    /// Registers a conventional fine-tuned model (full backbone snapshot
    /// incl. classifier); returns its task index.
    std::int64_t register_conventional_task(
        const std::string& name, std::vector<Tensor> backbone_snapshot,
        std::int64_t num_classes);

    std::int64_t task_count(Scheme scheme) const;

    /// Runs a pipelined stream; item order is preserved. Returns the
    /// predicted class per item. Parameter switches are counted.
    std::vector<std::int64_t> predict(Scheme scheme,
                                      const std::vector<PipelinedItem>& items);

    /// Accuracy helper over items carrying labels.
    double accuracy(Scheme scheme, const std::vector<PipelinedItem>& items);

    /// Number of threshold-set swaps performed so far (MIME scheme).
    std::int64_t threshold_switches() const noexcept {
        return threshold_switches_;
    }
    /// Number of full-backbone swaps performed so far (conventional).
    std::int64_t backbone_switches() const noexcept {
        return backbone_switches_;
    }
    void reset_switch_counters();

private:
    void activate_mime_task(std::int64_t task);
    void activate_conventional_task(std::int64_t task);

    MimeNetwork* network_;
    std::vector<TaskAdaptation> mime_tasks_;
    std::vector<std::vector<Tensor>> conventional_backbones_;
    std::vector<std::string> conventional_names_;
    std::vector<std::int64_t> conventional_classes_;
    std::int64_t active_mime_task_ = -1;
    std::int64_t active_conventional_task_ = -1;
    std::int64_t threshold_switches_ = 0;
    std::int64_t backbone_switches_ = 0;
};

}  // namespace mime::core
