// Threshold calibration without gradient training (extension).
//
// The paper *learns* thresholds by backpropagation (10 epochs of Adam).
// A natural cheaper variant — in the spirit of its "low training
// overhead" goal — sets each layer's thresholds from activation
// statistics on a small calibration set: t_i = the q-th percentile of
// the layer's MAC outputs, giving direct control of the target sparsity
// with zero backward passes. The ablation bench compares calibrated
// against trained thresholds (accuracy vs sparsity vs cost).
//
// Two granularities are provided:
//   * per-layer: one percentile threshold shared by all neurons of a
//     layer (coarse, smallest statistics requirement);
//   * per-neuron: each neuron's own percentile over the calibration
//     batch (the paper's per-neuron parameterization).
#pragma once

#include <cstdint>

#include "core/mime_network.h"
#include "data/dataset.h"

namespace mime::core {

/// How thresholds are derived from calibration activations.
enum class CalibrationGranularity {
    per_layer,  ///< one value per layer (percentile over all activations)
    per_neuron  ///< one value per neuron (percentile over the batch axis)
};

struct CalibrationOptions {
    /// Target fraction of masked (zero) activations, in [0, 1).
    double target_sparsity = 0.6;
    CalibrationGranularity granularity =
        CalibrationGranularity::per_neuron;
    /// Thresholds are clamped to at least this (paper: t > 0).
    float floor = 0.0f;
};

/// Runs `calibration` through the network once per layer (threshold mode
/// with masks neutralized so statistics reflect raw MAC outputs is not
/// required — masks downstream of a layer do not affect that layer's
/// inputs given thresholds are set front-to-back) and installs
/// percentile thresholds. Returns the achieved per-layer sparsity on the
/// calibration batch.
std::vector<double> calibrate_thresholds(MimeNetwork& network,
                                         const data::Batch& calibration,
                                         const CalibrationOptions& options);

}  // namespace mime::core
