// Knowledge distillation baseline (paper Table I related work).
//
// The paper positions MIME against distillation-style transfer learning:
// a smaller child model learns from a larger parent via softened logits
// (Hinton et al., 2015). Like conventional fine-tuning — and unlike MIME
// — every child still owns a full weight set; distillation is provided
// as the third per-task baseline so the related-work comparison is
// executable, not just prose.
//
// Loss: L = alpha * T^2 * KL(softmax(z_t / T) || softmax(z_s / T))
//         + (1 - alpha) * CE(z_s, y)
// (the conventional T^2 scaling keeps gradient magnitudes comparable
// across temperatures).
#pragma once

#include <cstdint>

#include "core/mime_network.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace mime::core {

struct DistillationOptions {
    /// Softmax temperature for teacher and student logits.
    float temperature = 3.0f;
    /// Weight of the distillation term vs. the hard-label CE term.
    float alpha = 0.7f;
    /// Underlying optimization settings (epochs, lr, batch size, pool).
    TrainOptions train;

    void validate() const;
};

/// Trains `student` (all parameters, ReLU mode) on `train_set` using
/// `teacher` as the soft-label source. The teacher runs in inference
/// mode and is not modified. Student and teacher must produce logits of
/// the same width.
TrainHistory train_distilled(MimeNetwork& student, MimeNetwork& teacher,
                             const data::Dataset& train_set,
                             const DistillationOptions& options);

/// KL(softmax(teacher/T) || softmax(student/T)) averaged over the batch;
/// exposed for tests.
double distillation_loss(const Tensor& student_logits,
                         const Tensor& teacher_logits, float temperature);

}  // namespace mime::core
