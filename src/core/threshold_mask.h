// The MIME threshold-mask activation (paper eq. 1, 2 and 4).
//
// Each output neuron i owns a learnable threshold t_i. The layer compares
// the neuron's MAC output y_i against t_i and emits
//     m_i = 1[y_i - t_i >= 0],      a_i = y_i * m_i.
// Backbone weights upstream stay frozen while the t_i are trained; the
// non-differentiable step is handled with the piece-wise linear gradient
// estimator of Dynamic Sparse Training (Liu et al., 2020), which the
// paper adopts (its Fig. 3a).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "nn/module.h"

namespace mime::core {

/// Threshold sentinel marking a neuron as structurally pruned: with
/// t_i = +inf the mask condition y_i - t_i >= 0 is false for every
/// finite y_i, so the neuron is dead for ALL inputs — not just
/// data-dependently sparse. The sparse executor may skip its MACs
/// without changing any output bit. (NaN thresholds are treated as dead
/// too, consistent with the mask semantics: NaN comparisons are false.)
inline constexpr float kPrunedThreshold =
    std::numeric_limits<float>::infinity();

/// Compact index sets of the structurally live neurons of one mask,
/// rebuilt lazily when thresholds change (install/reset/clamp), not per
/// batch. Consumed by the sparse planned executor to drive row-compacted
/// GEMMs and partial im2col.
struct ActiveSet {
    /// Strictly ascending indices of live neurons (t_i < +inf) in the
    /// flattened activation shape.
    std::vector<std::int64_t> live;
    /// Strictly ascending dim-0 slices ("channels" for conv-shaped
    /// masks, the neurons themselves for flat masks) holding at least
    /// one live neuron.
    std::vector<std::int64_t> live_channels;
    std::int64_t neurons = 0;   ///< total neuron count
    std::int64_t channels = 0;  ///< total dim-0 extent
    /// Bumped on every rebuild; lets cached consumers detect staleness.
    std::uint64_t version = 0;

    bool all_live() const noexcept {
        return static_cast<std::int64_t>(live.size()) == neurons;
    }
    double density() const noexcept {
        return neurons == 0 ? 1.0
                            : static_cast<double>(live.size()) /
                                  static_cast<double>(neurons);
    }
    double channel_density() const noexcept {
        return channels == 0 ? 1.0
                             : static_cast<double>(live_channels.size()) /
                                   static_cast<double>(channels);
    }
};

/// Piece-wise linear estimate g(x) of d/dx 1[x >= 0]:
///
///   g(x) = inner_peak - slope*|x|   for |x| <= inner_width
///        = outer_value              for inner_width < |x| <= outer_width
///        = 0                        otherwise,
///
/// with slope chosen so g is continuous at |x| = inner_width. Defaults are
/// the DST estimator (2 - 4|x| / 0.4 / cutoff 1).
struct SteConfig {
    float inner_width = 0.4f;
    float inner_peak = 2.0f;
    float outer_width = 1.0f;
    float outer_value = 0.4f;

    /// Evaluates the estimator at x.
    float operator()(float x) const;

    /// Throws if the pieces are inconsistent (negative widths etc.).
    void validate() const;
};

/// Per-neuron threshold masking layer.
///
/// `activation_shape` is the per-sample shape of the incoming MAC output
/// ([C, H, W] after a conv, [F] after a fc); the threshold tensor has
/// exactly that shape — one parameter per neuron, as in the paper.
class ThresholdMask : public nn::Module {
public:
    ThresholdMask(Shape activation_shape, float initial_threshold = 0.05f,
                  SteConfig ste = {});

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "ThresholdMask"; }
    std::vector<nn::Parameter*> parameters() override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: applies a = y * 1[y - t >= 0] to
    /// `activations` in place in one fused pass — no mask tensor, no
    /// cached MAC outputs — counting zeros for last_sparsity().
    /// Bit-identical to forward(). Reads thresholds live, so a task's
    /// threshold install mid-stream takes effect on the next batch.
    void forward_eval_inplace(Tensor& activations);

    /// The threshold parameter tensor t (shape = activation shape).
    nn::Parameter& thresholds() noexcept { return thresholds_; }
    const nn::Parameter& thresholds() const noexcept { return thresholds_; }

    /// Per-sample activation shape this layer was built for.
    const Shape& activation_shape() const noexcept {
        return activation_shape_;
    }

    /// Zero fraction of the most recent forward output (the layerwise
    /// "neuronal sparsity due to MIME" of Table II).
    double last_sparsity() const noexcept { return last_sparsity_; }

    /// Binary mask M of the most recent forward ([N, ...]).
    const Tensor& last_mask() const noexcept { return cached_mask_; }

    /// Raw MAC outputs Y of the most recent forward ([N, ...]); used by
    /// threshold calibration and analysis tooling.
    const Tensor& last_input() const noexcept { return cached_input_; }

    /// Threshold-regularization value L_t = sum_i exp(t_i) (eq. 4).
    /// Exponents are clamped at `kExpClamp` to keep the value finite.
    double regularization_loss() const;

    /// Accumulates dL_t/dt_i = beta * exp(t_i) into the threshold
    /// gradient (used by the trainer to implement eq. 3 without
    /// materializing the loss graph).
    void add_regularization_gradient(float beta);

    /// Clamps every threshold to at least `floor`; the paper requires
    /// t_i > 0, which the trainer enforces after each optimizer step.
    void clamp_thresholds(float floor);

    /// The structurally-live index sets for the current thresholds,
    /// rebuilt on first use after mark_thresholds_dirty() (the returned
    /// reference stays valid until the next rebuild). Rebuilds reuse the
    /// vectors' capacity, so steady-state threshold swaps allocate
    /// nothing.
    const ActiveSet& active_set();

    /// Flags the active set stale. Must be called after any out-of-band
    /// write to thresholds().value (the mask's own mutators do this
    /// themselves).
    void mark_thresholds_dirty() noexcept { active_set_dirty_ = true; }

    static constexpr float kExpClamp = 30.0f;

private:
    Shape activation_shape_;
    SteConfig ste_;
    nn::Parameter thresholds_;
    Tensor cached_input_;
    Tensor cached_mask_;
    double last_sparsity_ = 0.0;
    ActiveSet active_set_;
    bool active_set_dirty_ = true;
};

}  // namespace mime::core
