// MimeNetwork: a VGG16 backbone whose activations are switchable between
// the ReLU baseline and MIME threshold masks, with per-task threshold
// sets that can be snapshotted and swapped (the algorithmic heart of the
// paper: one W_parent, many T_child).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/vgg.h"
#include "core/threshold_mask.h"
#include "obs/profile.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layers.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pooling.h"
#include "tensor/workspace.h"

namespace mime::core {

class ForwardPlan;

/// Which activation the network's sites apply.
enum class ActivationMode {
    relu,      ///< baseline: a = max(y, 0)
    threshold  ///< MIME: a = y * 1[y - t >= 0]
};

/// Policy for the sparse planned executor: whether conv/linear steps may
/// take the row-compacted path for structurally pruned masks, and the
/// density above which they fall back to dense.
struct SparseExecution {
    bool enabled = true;
    double density_cutoff = nn::kDefaultSparseDensityCutoff;
};

/// Policy for the quantized planned executor: when enabled, plans built
/// afterwards pre-quantize conv/linear weights to int8 (per-output-
/// channel scales; float master weights untouched) and run those steps
/// through the int8 row-compacted kernels with per-sample dynamic
/// activation quantization. Composes with SparseExecution — the live
/// sets drive the same row compaction either way.
struct QuantizedExecution {
    bool enabled = false;
};

/// One activation site (after each conv / hidden fc). Owns both a ReLU
/// and a ThresholdMask and dispatches on the current mode, so the same
/// backbone instance can serve as baseline and MIME model.
class ActivationSite : public nn::Module {
public:
    ActivationSite(std::string site_name, Shape activation_shape,
                   float initial_threshold, SteConfig ste);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string kind() const override { return "ActivationSite"; }
    std::vector<nn::Parameter*> parameters() override;
    void set_training(bool training) override;
    void set_eval_mode(bool eval) override;
    std::int64_t cached_state_bytes() const override;

    /// Planned-executor forward: one fused in-place pass over the
    /// activations — ReLU or threshold masking depending on mode() —
    /// updating last_sparsity(). Bit-identical to forward().
    void forward_eval_inplace(Tensor& activations);

    void set_mode(ActivationMode mode) { mode_ = mode; }
    ActivationMode mode() const noexcept { return mode_; }

    const std::string& site_name() const noexcept { return site_name_; }

    /// Zero fraction of the most recent forward (whichever mode ran).
    double last_sparsity() const noexcept;

    ThresholdMask& mask() noexcept { return mask_; }
    const ThresholdMask& mask() const noexcept { return mask_; }

private:
    std::string site_name_;
    ActivationMode mode_ = ActivationMode::relu;
    nn::ReLU relu_;
    ThresholdMask mask_;
};

/// A named snapshot of every site's thresholds for one child task.
struct ThresholdSet {
    std::string task_name;
    std::vector<Tensor> thresholds;  ///< one tensor per site, in site order

    /// Total threshold parameters in the set.
    std::int64_t parameter_count() const;
};

/// Configuration for building a MimeNetwork.
struct MimeNetworkConfig {
    arch::VggConfig vgg{};
    /// When non-empty, build this architecture instead of VGG16.
    /// `custom_classifier` must then be set too. Specs must follow the
    /// builder conventions (convs first, then fcs; pool_after flags).
    std::vector<arch::LayerSpec> custom_layers{};
    arch::LayerSpec custom_classifier{};
    /// Insert BatchNorm2d between conv and activation site. Off by
    /// default (the paper's VGG16 has none); useful for fast CPU
    /// convergence of width-scaled backbones.
    bool batchnorm = false;
    float initial_threshold = 0.05f;
    SteConfig ste{};
    std::uint64_t seed = 1;
};

/// The full model: backbone (conv/fc weights), activation sites, and a
/// classifier head.
class MimeNetwork {
public:
    explicit MimeNetwork(const MimeNetworkConfig& config);
    ~MimeNetwork();  // out-of-line: plans_ holds incomplete ForwardPlan

    // -- running -----------------------------------------------------------

    /// Forward through backbone + classifier; input [N, 3, S, S].
    Tensor forward(const Tensor& input);
    /// Backward from dL/dlogits; accumulates parameter gradients.
    Tensor backward(const Tensor& grad_logits);

    /// Planned, allocation-free forward. Builds (and caches) a
    /// ForwardPlan for this batch size on first use — the warm-up —
    /// then executes against the plan's preallocated buffers with zero
    /// heap allocations, using `workspace` for im2col scratch. Output
    /// bit-matches forward(); the returned reference is overwritten by
    /// the next planned run at this batch size. Requires eval mode.
    const Tensor& forward_planned(const Tensor& input, Workspace& workspace);

    /// The cached plan for one batch size (built on first use). Lets
    /// callers stack images directly into plan_for(n).input_slab().
    /// Plans are never evicted — that is what makes steady state
    /// allocation-free — so a caller serving ragged batch sizes
    /// accumulates one buffer set per distinct size, bounded by
    /// ~(max_batch + 1)/2 times the largest plan (buffers scale
    /// linearly with batch). Keep the batcher's max_batch_size modest
    /// and watch planned_buffer_bytes() (serving surfaces it as
    /// plan_buffer_bytes).
    ForwardPlan& plan_for(std::int64_t batch_size);

    /// Scratch high-water mark (bytes) over every plan built so far;
    /// the workspace capacity a steady-state server replica needs.
    std::size_t planned_workspace_bytes() const;
    /// Plan-owned activation buffer bytes over every plan built so far.
    std::size_t planned_buffer_bytes() const;

    /// Installs the sparse-execution policy, pushing the density cutoff
    /// into every Conv2d / Linear layer.
    void set_sparse_execution(const SparseExecution& policy);
    const SparseExecution& sparse_execution() const noexcept {
        return sparse_execution_;
    }

    /// Cumulative sparse-path counters summed over every cached plan:
    /// conv/linear steps that ran row-compacted, the MACs they skipped,
    /// and the dense-equivalent MAC total (fraction denominator).
    std::uint64_t planned_sparse_hits() const;
    std::uint64_t planned_skipped_macs() const;
    std::uint64_t planned_dense_macs() const;

    /// Installs the quantized-execution policy. Clears cached plans:
    /// each plan snapshots int8 weights at build time (like set_pool,
    /// a stale plan would silently run the wrong mode), so flip this
    /// before the serving warm-up, not per batch.
    void set_quantized_execution(const QuantizedExecution& policy);
    const QuantizedExecution& quantized_execution() const noexcept {
        return quantized_execution_;
    }

    /// Cumulative conv/linear steps run through the int8 kernels,
    /// summed over every cached plan.
    std::uint64_t planned_quantized_hits() const;
    /// Worst per-channel relative weight-quantization error over every
    /// cached plan's pre-quantized weights (0 when none are quantized).
    double planned_quantized_max_rel_error() const;

    /// Enables per-step wall-time / MAC profiling inside every planned
    /// run (see ForwardPlan::profiles). Off by default: when off, runs
    /// pay one branch per step; when on, two steady_clock reads per
    /// step.
    void set_plan_profiling(bool enabled) noexcept {
        plan_profiling_ = enabled;
    }
    bool plan_profiling() const noexcept { return plan_profiling_; }
    /// Per-step profiles merged across every cached plan (step index
    /// aligns across batch sizes because every plan walks the same
    /// Sequential): runs / wall time / MACs sum; workspace bytes take
    /// the max over plans.
    std::vector<obs::LayerProfile> planned_layer_profiles() const;

    /// Sets train/eval mode. While the backbone is frozen, BatchNorm
    /// layers stay in inference mode even during threshold training so
    /// their running statistics — part of W_parent — never drift.
    void set_training(bool training);

    /// Inference-only execution for the whole graph: forwards retain no
    /// backward-only caches (see nn::Module::set_eval_mode). Required
    /// by forward_planned(); the serving stack turns it on.
    void set_eval_mode(bool eval);
    bool eval_mode() const noexcept { return eval_mode_; }

    /// Backward-only cached bytes currently retained across the graph
    /// (0 after any eval-mode forward).
    std::int64_t cached_state_bytes() const {
        return network_.cached_state_bytes();
    }

    /// Installs (or clears) the thread pool and drops cached plans:
    /// plan workspace sizing depends on the pool's band count, so a
    /// stale plan could under-reserve conv scratch.
    void set_pool(ThreadPool* pool);

    // -- modes and parameter groups -----------------------------------------

    /// Switches every activation site between ReLU and threshold mode.
    void set_mode(ActivationMode mode);
    ActivationMode mode() const noexcept { return mode_; }

    /// Conv / fc / batchnorm / classifier parameters (the weights W).
    std::vector<nn::Parameter*> backbone_parameters();
    /// All per-site threshold parameters (the T of one child task).
    std::vector<nn::Parameter*> threshold_parameters();
    /// Everything (backbone + thresholds).
    std::vector<nn::Parameter*> all_parameters();

    /// Marks backbone parameters (non-)trainable and freezes/unfreezes
    /// BatchNorm running statistics; MIME freezes both while training
    /// thresholds.
    void freeze_backbone(bool frozen);

    // -- threshold sets ------------------------------------------------------

    /// Copies the current thresholds into a named set.
    ThresholdSet snapshot_thresholds(const std::string& task_name) const;
    /// Installs a previously snapshotted set.
    void load_thresholds(const ThresholdSet& set);
    /// Resets every threshold to a constant (fresh task).
    void reset_thresholds(float value);

    // -- backbone snapshots (conventional multi-task baseline) ---------------

    /// Copies all backbone parameter values plus persistent buffers
    /// (BatchNorm running statistics).
    std::vector<Tensor> snapshot_backbone() const;
    /// Restores backbone parameter values from a snapshot.
    void load_backbone(const std::vector<Tensor>& snapshot);

    // -- replication (serving pools) -----------------------------------------

    /// Creates a replica for parallel serving: conv/fc/batchnorm weights
    /// and persistent buffers *alias* this network's storage (one
    /// W_parent in memory no matter how many replicas), while the
    /// classifier head and every threshold tensor are deep per-replica
    /// copies — those are exactly the tensors a per-task install
    /// mutates. The replica starts in this network's activation mode.
    /// Safe to run forwards on replicas concurrently as long as nobody
    /// trains or load_backbone()s any of them.
    std::unique_ptr<MimeNetwork> clone_with_shared_backbone();

    /// True when `other` aliases this network's shared (non-classifier)
    /// backbone storage.
    bool shares_backbone_with(const MimeNetwork& other) const;

    /// Bytes of backbone parameters that a shared-backbone replica does
    /// NOT duplicate (everything but the classifier head).
    std::int64_t shared_backbone_bytes() const;

    // -- introspection --------------------------------------------------------

    std::int64_t site_count() const {
        return static_cast<std::int64_t>(sites_.size());
    }
    ActivationSite& site(std::int64_t index);
    const ActivationSite& site(std::int64_t index) const;
    const std::string& site_name(std::int64_t index) const;

    /// Per-site zero fraction of the most recent forward batch.
    std::vector<double> last_site_sparsities() const;

    /// Sum of L_t over all sites (eq. 4).
    double threshold_regularization_loss() const;
    /// Adds beta * exp(t) to every site's threshold gradient (eq. 3).
    void add_threshold_regularization_gradient(float beta);
    /// Clamps all thresholds to >= floor (paper: t_i > 0).
    void clamp_thresholds(float floor);

    const std::vector<arch::LayerSpec>& layer_specs() const noexcept {
        return layer_specs_;
    }
    const arch::LayerSpec& classifier_spec() const noexcept {
        return classifier_spec_;
    }
    const MimeNetworkConfig& config() const noexcept { return config_; }

    /// Underlying module graph (for serialization / gradcheck).
    nn::Sequential& network() noexcept { return network_; }

private:
    MimeNetworkConfig config_;
    std::vector<arch::LayerSpec> layer_specs_;
    arch::LayerSpec classifier_spec_;
    nn::Sequential network_;
    std::vector<ActivationSite*> sites_;       // non-owning
    std::vector<nn::Parameter*> backbone_params_;  // non-owning
    std::vector<nn::BatchNorm2d*> batchnorms_;     // non-owning
    ActivationMode mode_ = ActivationMode::relu;
    bool backbone_frozen_ = false;
    bool eval_mode_ = false;
    bool plan_profiling_ = false;
    SparseExecution sparse_execution_{};
    QuantizedExecution quantized_execution_{};
    /// Plans keyed by batch size, built lazily by plan_for(). Plans
    /// hold pointers into network_'s modules, so they live (and die)
    /// with this network.
    std::map<std::int64_t, std::unique_ptr<ForwardPlan>> plans_;
};

}  // namespace mime::core
