#include "core/mime_network.h"

#include <algorithm>

#include "common/check.h"
#include "core/forward_plan.h"

namespace mime::core {

ActivationSite::ActivationSite(std::string site_name, Shape activation_shape,
                               float initial_threshold, SteConfig ste)
    : site_name_(std::move(site_name)),
      mask_(std::move(activation_shape), initial_threshold, ste) {
    mask_.thresholds().name = site_name_ + ".thresholds";
}

Tensor ActivationSite::forward(const Tensor& input) {
    return mode_ == ActivationMode::relu ? relu_.forward(input)
                                         : mask_.forward(input);
}

Tensor ActivationSite::backward(const Tensor& grad_output) {
    return mode_ == ActivationMode::relu ? relu_.backward(grad_output)
                                         : mask_.backward(grad_output);
}

std::vector<nn::Parameter*> ActivationSite::parameters() {
    return mask_.parameters();
}

void ActivationSite::set_training(bool training) {
    nn::Module::set_training(training);
    relu_.set_training(training);
    mask_.set_training(training);
}

void ActivationSite::set_eval_mode(bool eval) {
    nn::Module::set_eval_mode(eval);
    relu_.set_eval_mode(eval);
    mask_.set_eval_mode(eval);
}

std::int64_t ActivationSite::cached_state_bytes() const {
    return relu_.cached_state_bytes() + mask_.cached_state_bytes();
}

void ActivationSite::forward_eval_inplace(Tensor& activations) {
    if (mode_ == ActivationMode::relu) {
        relu_.forward_eval_inplace(activations);
    } else {
        mask_.forward_eval_inplace(activations);
    }
}

double ActivationSite::last_sparsity() const noexcept {
    return mode_ == ActivationMode::relu ? relu_.last_sparsity()
                                         : mask_.last_sparsity();
}

std::int64_t ThresholdSet::parameter_count() const {
    std::int64_t n = 0;
    for (const auto& t : thresholds) {
        n += t.numel();
    }
    return n;
}

MimeNetwork::MimeNetwork(const MimeNetworkConfig& config)
    : config_(config),
      layer_specs_(config.custom_layers.empty()
                       ? arch::vgg16_spec(config.vgg)
                       : config.custom_layers),
      classifier_spec_(config.custom_layers.empty()
                           ? arch::vgg16_classifier(config.vgg)
                           : config.custom_classifier) {
    Rng rng(config.seed);
    bool flattened = false;

    for (const auto& spec : layer_specs_) {
        if (spec.kind == arch::LayerKind::conv) {
            auto* conv = network_.emplace<nn::Conv2d>(
                spec.in_channels, spec.out_channels, spec.kernel, spec.stride,
                spec.padding, rng, /*bias=*/true);
            conv->weight().name = spec.name + ".weight";
            conv->bias().name = spec.name + ".bias";
            for (nn::Parameter* p : conv->parameters()) {
                backbone_params_.push_back(p);
            }
            if (config.batchnorm) {
                auto* bn = network_.emplace<nn::BatchNorm2d>(spec.out_channels);
                bn->gamma().name = spec.name + ".bn_gamma";
                bn->beta().name = spec.name + ".bn_beta";
                for (nn::Parameter* p : bn->parameters()) {
                    backbone_params_.push_back(p);
                }
                batchnorms_.push_back(bn);
            }
            auto* site = network_.emplace<ActivationSite>(
                spec.name,
                Shape{spec.out_channels, spec.out_height(), spec.out_width()},
                config.initial_threshold, config.ste);
            sites_.push_back(site);
            if (spec.pool_after) {
                network_.emplace<nn::MaxPool2d>(2, 2);
            }
        } else {
            if (!flattened) {
                network_.emplace<nn::Flatten>();
                flattened = true;
            }
            auto* fc = network_.emplace<nn::Linear>(spec.in_channels,
                                                    spec.out_channels, rng,
                                                    /*bias=*/true);
            fc->weight().name = spec.name + ".weight";
            fc->bias().name = spec.name + ".bias";
            for (nn::Parameter* p : fc->parameters()) {
                backbone_params_.push_back(p);
            }
            auto* site = network_.emplace<ActivationSite>(
                spec.name, Shape{spec.out_channels}, config.initial_threshold,
                config.ste);
            sites_.push_back(site);
        }
    }

    if (!flattened) {
        // Architectures without hidden fc layers flatten straight into
        // the classifier.
        network_.emplace<nn::Flatten>();
    }
    auto* classifier = network_.emplace<nn::Linear>(
        classifier_spec_.in_channels, classifier_spec_.out_channels, rng,
        /*bias=*/true);
    classifier->weight().name = "classifier.weight";
    classifier->bias().name = "classifier.bias";
    for (nn::Parameter* p : classifier->parameters()) {
        backbone_params_.push_back(p);
    }

    MIME_ENSURE(sites_.size() == layer_specs_.size(),
                "one activation site per threshold layer");
}

MimeNetwork::~MimeNetwork() = default;

Tensor MimeNetwork::forward(const Tensor& input) {
    return network_.forward(input);
}

ForwardPlan& MimeNetwork::plan_for(std::int64_t batch_size) {
    auto it = plans_.find(batch_size);
    if (it == plans_.end()) {
        it = plans_
                 .emplace(batch_size,
                          std::make_unique<ForwardPlan>(*this, batch_size))
                 .first;
    }
    return *it->second;
}

const Tensor& MimeNetwork::forward_planned(const Tensor& input,
                                           Workspace& workspace) {
    MIME_REQUIRE(eval_mode_,
                 "forward_planned requires eval mode (set_eval_mode(true)): "
                 "backward caching is the allocation it eliminates");
    MIME_REQUIRE(input.shape().rank() == 4,
                 "forward_planned expects [N, C, H, W], got " +
                     input.shape().to_string());
    return plan_for(input.shape().dim(0)).run(input, workspace);
}

std::size_t MimeNetwork::planned_workspace_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [batch, plan] : plans_) {
        if (plan->workspace_bytes() > bytes) {
            bytes = plan->workspace_bytes();
        }
    }
    return bytes;
}

std::size_t MimeNetwork::planned_buffer_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [batch, plan] : plans_) {
        bytes += plan->buffer_bytes();
    }
    return bytes;
}

void MimeNetwork::set_sparse_execution(const SparseExecution& policy) {
    sparse_execution_ = policy;
    for (std::size_t i = 0; i < network_.size(); ++i) {
        nn::Module& layer = network_.layer(i);
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
            conv->set_sparse_density_cutoff(policy.density_cutoff);
        } else if (auto* linear = dynamic_cast<nn::Linear*>(&layer)) {
            linear->set_sparse_density_cutoff(policy.density_cutoff);
        }
    }
}

void MimeNetwork::set_quantized_execution(const QuantizedExecution& policy) {
    quantized_execution_ = policy;
    // Plans snapshot quantized weights (and size scratch) for one mode
    // at build time; rebuild lazily under the new policy.
    plans_.clear();
}

std::uint64_t MimeNetwork::planned_quantized_hits() const {
    std::uint64_t n = 0;
    for (const auto& [batch, plan] : plans_) {
        n += plan->quantized_hits();
    }
    return n;
}

double MimeNetwork::planned_quantized_max_rel_error() const {
    double worst = 0.0;
    for (const auto& [batch, plan] : plans_) {
        worst = std::max(worst, plan->quantized_max_rel_error());
    }
    return worst;
}

std::uint64_t MimeNetwork::planned_sparse_hits() const {
    std::uint64_t n = 0;
    for (const auto& [batch, plan] : plans_) {
        n += plan->sparse_hits();
    }
    return n;
}

std::uint64_t MimeNetwork::planned_skipped_macs() const {
    std::uint64_t n = 0;
    for (const auto& [batch, plan] : plans_) {
        n += plan->skipped_macs();
    }
    return n;
}

std::uint64_t MimeNetwork::planned_dense_macs() const {
    std::uint64_t n = 0;
    for (const auto& [batch, plan] : plans_) {
        n += plan->dense_macs();
    }
    return n;
}

std::vector<obs::LayerProfile> MimeNetwork::planned_layer_profiles() const {
    std::vector<obs::LayerProfile> merged;
    for (const auto& [batch, plan] : plans_) {
        const std::vector<obs::LayerProfile>& profiles = plan->profiles();
        if (merged.empty()) {
            merged = profiles;
            continue;
        }
        // Every plan schedules the same Sequential, so step index i is
        // the same layer in every plan.
        for (std::size_t i = 0;
             i < merged.size() && i < profiles.size(); ++i) {
            merged[i].runs += profiles[i].runs;
            merged[i].total_us += profiles[i].total_us;
            merged[i].skipped_macs += profiles[i].skipped_macs;
            merged[i].dense_macs += profiles[i].dense_macs;
            merged[i].workspace_bytes = std::max(
                merged[i].workspace_bytes, profiles[i].workspace_bytes);
        }
    }
    return merged;
}

void MimeNetwork::set_pool(ThreadPool* pool) {
    network_.set_pool(pool);
    // Conv workspace sizing is band-aware (bands = min(pool size,
    // batch)), so plans built under a different pool may under-reserve;
    // rebuild lazily on next use.
    plans_.clear();
}

void MimeNetwork::set_eval_mode(bool eval) {
    eval_mode_ = eval;
    network_.set_eval_mode(eval);
}

void MimeNetwork::set_training(bool training) {
    network_.set_training(training);
    if (backbone_frozen_) {
        for (nn::BatchNorm2d* bn : batchnorms_) {
            bn->set_training(false);
        }
    }
}

Tensor MimeNetwork::backward(const Tensor& grad_logits) {
    return network_.backward(grad_logits);
}

void MimeNetwork::set_mode(ActivationMode mode) {
    mode_ = mode;
    for (ActivationSite* site : sites_) {
        site->set_mode(mode);
    }
}

std::vector<nn::Parameter*> MimeNetwork::backbone_parameters() {
    return backbone_params_;
}

std::vector<nn::Parameter*> MimeNetwork::threshold_parameters() {
    std::vector<nn::Parameter*> params;
    params.reserve(sites_.size());
    for (ActivationSite* site : sites_) {
        params.push_back(&site->mask().thresholds());
    }
    return params;
}

std::vector<nn::Parameter*> MimeNetwork::all_parameters() {
    std::vector<nn::Parameter*> params = backbone_params_;
    for (nn::Parameter* p : threshold_parameters()) {
        params.push_back(p);
    }
    return params;
}

void MimeNetwork::freeze_backbone(bool frozen) {
    backbone_frozen_ = frozen;
    for (nn::Parameter* p : backbone_params_) {
        p->trainable = !frozen;
    }
    if (frozen) {
        for (nn::BatchNorm2d* bn : batchnorms_) {
            bn->set_training(false);
        }
    }
}

ThresholdSet MimeNetwork::snapshot_thresholds(
    const std::string& task_name) const {
    ThresholdSet set;
    set.task_name = task_name;
    set.thresholds.reserve(sites_.size());
    for (const ActivationSite* site : sites_) {
        set.thresholds.push_back(site->mask().thresholds().value);
    }
    return set;
}

void MimeNetwork::load_thresholds(const ThresholdSet& set) {
    MIME_REQUIRE(set.thresholds.size() == sites_.size(),
                 "threshold set has " + std::to_string(set.thresholds.size()) +
                     " tensors, network has " + std::to_string(sites_.size()) +
                     " sites");
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        nn::Parameter& p = sites_[i]->mask().thresholds();
        MIME_REQUIRE(set.thresholds[i].shape() == p.value.shape(),
                     "threshold shape mismatch at site " +
                         sites_[i]->site_name());
        // Allocation-free install: a task switch on the serving hot path
        // costs exactly one pass over T_child bytes, never a reallocation.
        p.value.copy_from(set.thresholds[i]);
        sites_[i]->mask().mark_thresholds_dirty();
    }
}

void MimeNetwork::reset_thresholds(float value) {
    for (ActivationSite* site : sites_) {
        site->mask().thresholds().value.fill(value);
        site->mask().mark_thresholds_dirty();
    }
}

std::vector<Tensor> MimeNetwork::snapshot_backbone() const {
    auto* self = const_cast<MimeNetwork*>(this);
    std::vector<Tensor> snapshot;
    const auto buffers = self->network_.buffers();
    snapshot.reserve(backbone_params_.size() + buffers.size());
    for (const nn::Parameter* p : backbone_params_) {
        snapshot.push_back(p->value);
    }
    for (const nn::Parameter* b : buffers) {
        snapshot.push_back(b->value);
    }
    return snapshot;
}

void MimeNetwork::load_backbone(const std::vector<Tensor>& snapshot) {
    auto targets = backbone_params_;
    for (nn::Parameter* b : network_.buffers()) {
        targets.push_back(b);
    }
    MIME_REQUIRE(snapshot.size() == targets.size(),
                 "backbone snapshot size mismatch");
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        MIME_REQUIRE(snapshot[i].shape() == targets[i]->value.shape(),
                     "backbone tensor shape mismatch at '" +
                         targets[i]->name + "'");
        // In place, never by assignment: assignment would allocate a
        // fresh storage block, silently detaching any shared-backbone
        // replica (and paying a reallocation per conventional-task
        // switch).
        targets[i]->value.copy_from(snapshot[i]);
    }
}

std::unique_ptr<MimeNetwork> MimeNetwork::clone_with_shared_backbone() {
    auto replica = std::make_unique<MimeNetwork>(config_);

    auto mine = backbone_parameters();
    auto theirs = replica->backbone_parameters();
    MIME_ENSURE(mine.size() == theirs.size() && mine.size() >= 2,
                "replica must mirror the prototype's parameter list");
    // Everything up to the classifier aliases the prototype's storage;
    // the classifier head stays per-replica because serving swaps it on
    // every task install.
    for (std::size_t i = 0; i + 2 < mine.size(); ++i) {
        theirs[i]->value = mine[i]->value.alias();
    }
    for (std::size_t i = mine.size() - 2; i < mine.size(); ++i) {
        theirs[i]->value.copy_from(mine[i]->value);
    }

    auto my_buffers = network_.buffers();
    auto their_buffers = replica->network_.buffers();
    MIME_ENSURE(my_buffers.size() == their_buffers.size(),
                "replica must mirror the prototype's buffer list");
    for (std::size_t i = 0; i < my_buffers.size(); ++i) {
        their_buffers[i]->value = my_buffers[i]->value.alias();
    }

    // Thresholds are each replica's mutable T_child slot; start them at
    // the prototype's current values.
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        replica->sites_[i]->mask().thresholds().value.copy_from(
            sites_[i]->mask().thresholds().value);
    }

    replica->set_mode(mode_);
    replica->set_training(false);
    return replica;
}

bool MimeNetwork::shares_backbone_with(const MimeNetwork& other) const {
    auto* self = const_cast<MimeNetwork*>(this);
    auto* that = const_cast<MimeNetwork*>(&other);
    auto mine = self->backbone_parameters();
    auto theirs = that->backbone_parameters();
    if (mine.size() != theirs.size() || mine.size() < 2) {
        return false;
    }
    for (std::size_t i = 0; i + 2 < mine.size(); ++i) {
        if (!mine[i]->value.aliases(theirs[i]->value)) {
            return false;
        }
    }
    return true;
}

std::int64_t MimeNetwork::shared_backbone_bytes() const {
    auto* self = const_cast<MimeNetwork*>(this);
    auto params = self->backbone_parameters();
    std::int64_t bytes = 0;
    for (std::size_t i = 0; i + 2 < params.size(); ++i) {
        bytes += params[i]->numel() *
                 static_cast<std::int64_t>(sizeof(float));
    }
    for (nn::Parameter* buffer : self->network_.buffers()) {
        bytes += buffer->numel() * static_cast<std::int64_t>(sizeof(float));
    }
    return bytes;
}

ActivationSite& MimeNetwork::site(std::int64_t index) {
    MIME_REQUIRE(index >= 0 && index < site_count(),
                 "site index out of range");
    return *sites_[static_cast<std::size_t>(index)];
}

const ActivationSite& MimeNetwork::site(std::int64_t index) const {
    return const_cast<MimeNetwork*>(this)->site(index);
}

const std::string& MimeNetwork::site_name(std::int64_t index) const {
    return site(index).site_name();
}

std::vector<double> MimeNetwork::last_site_sparsities() const {
    std::vector<double> s;
    s.reserve(sites_.size());
    for (const ActivationSite* site : sites_) {
        s.push_back(site->last_sparsity());
    }
    return s;
}

double MimeNetwork::threshold_regularization_loss() const {
    double acc = 0.0;
    for (const ActivationSite* site : sites_) {
        acc += site->mask().regularization_loss();
    }
    return acc;
}

void MimeNetwork::add_threshold_regularization_gradient(float beta) {
    for (ActivationSite* site : sites_) {
        site->mask().add_regularization_gradient(beta);
    }
}

void MimeNetwork::clamp_thresholds(float floor) {
    for (ActivationSite* site : sites_) {
        site->mask().clamp_thresholds(floor);
    }
}

}  // namespace mime::core
