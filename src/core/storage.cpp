#include "core/storage.h"

#include "common/check.h"

namespace mime::core {

StorageModel::StorageModel(std::vector<arch::LayerSpec> layers,
                           arch::LayerSpec classifier,
                           StorageModelConfig config)
    : layers_(std::move(layers)),
      classifier_(std::move(classifier)),
      config_(config) {
    MIME_REQUIRE(!layers_.empty(), "storage model needs layers");
    MIME_REQUIRE(config_.precision_bits > 0 &&
                     config_.precision_bits % 8 == 0,
                 "precision must be a positive multiple of 8 bits");
    for (const auto& l : layers_) {
        l.validate();
    }
    classifier_.validate();
}

std::int64_t StorageModel::weight_bytes() const {
    const std::int64_t bytes_per = config_.precision_bits / 8;
    std::int64_t params = arch::total_weights(layers_);
    if (config_.include_classifier) {
        params += classifier_.weight_count();
    }
    return params * bytes_per;
}

std::int64_t StorageModel::threshold_bytes() const {
    const std::int64_t bytes_per = config_.precision_bits / 8;
    return arch::total_neurons(layers_) * bytes_per;
}

std::int64_t StorageModel::head_bytes() const {
    const std::int64_t bytes_per = config_.precision_bits / 8;
    return classifier_.weight_count() * bytes_per;
}

std::int64_t StorageModel::conventional_total_bytes(
    std::int64_t child_tasks) const {
    MIME_REQUIRE(child_tasks >= 0, "child task count must be >= 0");
    const std::int64_t models =
        child_tasks + (config_.count_parent_model ? 1 : 0);
    return models * weight_bytes();
}

std::int64_t StorageModel::mime_total_bytes(std::int64_t child_tasks) const {
    MIME_REQUIRE(child_tasks >= 0, "child task count must be >= 0");
    std::int64_t total = weight_bytes() + child_tasks * threshold_bytes();
    if (config_.count_child_heads) {
        total += child_tasks * head_bytes();
    }
    return total;
}

double StorageModel::savings(std::int64_t child_tasks) const {
    return static_cast<double>(conventional_total_bytes(child_tasks)) /
           static_cast<double>(mime_total_bytes(child_tasks));
}

}  // namespace mime::core
