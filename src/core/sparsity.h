// Layerwise neuronal-sparsity measurement (Tables II and III).
//
// Sparsity here means the fraction of zero output activations at each
// activation site, averaged over a dataset — produced by ReLU in the
// baselines and by threshold masking in MIME.
#pragma once

#include <string>
#include <vector>

#include "core/mime_network.h"
#include "data/dataset.h"

namespace mime::core {

/// Average zero-activation fraction per activation site.
struct SparsityReport {
    std::vector<std::string> layer_names;  ///< conv1..conv15
    std::vector<double> average_sparsity;  ///< aligned with layer_names

    /// Mean across layers (unweighted, as the paper's "average layerwise
    /// neuronal sparsity" heading suggests per-layer averages).
    double overall() const;

    /// Sparsity of the layer with the given name; throws if absent.
    double layer(const std::string& name) const;
};

/// Runs the dataset through the network in inference mode (current
/// activation mode) and averages each site's zero fraction, weighted by
/// batch size.
SparsityReport measure_sparsity(MimeNetwork& network,
                                const data::Dataset& dataset,
                                std::int64_t batch_size = 100,
                                ThreadPool* pool = nullptr);

}  // namespace mime::core
