// Off-chip DRAM storage model (paper Fig 1 and Fig 4).
//
// Conventional multi-task inference stores one fine-tuned weight set per
// task; MIME stores a single W_parent plus one (much smaller) threshold
// set per child task. All parameters are 16-bit (Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/layer_spec.h"

namespace mime::core {

struct StorageModelConfig {
    /// Bits per stored parameter (weights and thresholds). Table IV: 16.
    int precision_bits = 16;
    /// Count the classifier head's weights in each weight set.
    bool include_classifier = true;
    /// Conventional scenario also keeps the parent model deployed
    /// alongside the per-child models (the paper's Fig 4 stores "the
    /// parent task and its child tasks").
    bool count_parent_model = true;
    /// Count each child's (tiny) classifier head in MIME's per-child
    /// storage. Off by default to match the paper's parameter list
    /// {W_parent, T_child-1..n}; the bench reports both conventions.
    bool count_child_heads = false;
};

/// Computes DRAM storage for both schemes over a given network geometry.
class StorageModel {
public:
    StorageModel(std::vector<arch::LayerSpec> layers,
                 arch::LayerSpec classifier, StorageModelConfig config = {});

    /// Bytes of one full weight set (optionally incl. classifier).
    std::int64_t weight_bytes() const;
    /// Bytes of one child threshold set (one threshold per neuron across
    /// the 15 threshold layers; the classifier has no thresholds).
    std::int64_t threshold_bytes() const;
    /// Bytes of one child classifier head.
    std::int64_t head_bytes() const;

    /// Total conventional storage for n child tasks.
    std::int64_t conventional_total_bytes(std::int64_t child_tasks) const;
    /// Total MIME storage for n child tasks.
    std::int64_t mime_total_bytes(std::int64_t child_tasks) const;

    /// conventional / MIME storage ratio (the paper's "~3.48x" at n = 3).
    double savings(std::int64_t child_tasks) const;

    const StorageModelConfig& config() const noexcept { return config_; }

private:
    std::vector<arch::LayerSpec> layers_;
    arch::LayerSpec classifier_;
    StorageModelConfig config_;
};

}  // namespace mime::core
