// Thread-safe bounded MPSC queue feeding the server's dispatch loop.
//
// Producers (client threads calling InferenceServer::submit) push
// requests and block when the queue is at capacity (backpressure instead
// of unbounded memory growth under overload). The single consumer (the
// dispatch loop) drains everything available at once, optionally waiting
// up to a deadline for the first arrival.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/sync.h"
#include "serve/request.h"

namespace mime::serve {

class RequestQueue {
public:
    /// `capacity` bounds the number of queued (not yet drained) requests.
    explicit RequestQueue(std::size_t capacity);

    RequestQueue(const RequestQueue&) = delete;
    RequestQueue& operator=(const RequestQueue&) = delete;

    /// Blocks while the queue is full; returns false once the queue is
    /// closed. On failure the request is left untouched so the caller
    /// can still deliver its ServeStatus::shutdown outcome.
    bool push(InferenceRequest&& request) MIME_EXCLUDES(mutex_);

    /// Moves out every queued request, waiting until `deadline` for at
    /// least one to arrive. Returns immediately with whatever is queued
    /// (possibly nothing) once closed or non-empty.
    std::vector<InferenceRequest> drain_until(Clock::time_point deadline)
        MIME_EXCLUDES(mutex_);

    /// Moves out every queued request without waiting.
    std::vector<InferenceRequest> drain_now() MIME_EXCLUDES(mutex_);

    /// Wakes every waiter; subsequent pushes are rejected. Queued
    /// requests remain drainable.
    void close() MIME_EXCLUDES(mutex_);

    bool closed() const MIME_EXCLUDES(mutex_);
    std::size_t size() const MIME_EXCLUDES(mutex_);
    std::size_t capacity() const noexcept { return capacity_; }

private:
    std::vector<InferenceRequest> drain_locked() MIME_REQUIRES(mutex_);

    const std::size_t capacity_;
    mutable Mutex mutex_;
    CondVar not_full_;
    CondVar not_empty_;
    std::deque<InferenceRequest> items_ MIME_GUARDED_BY(mutex_);
    bool closed_ MIME_GUARDED_BY(mutex_) = false;
};

}  // namespace mime::serve
