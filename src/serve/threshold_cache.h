// LRU cache of per-task adaptations (threshold set + task head).
//
// Mirrors the paper's DRAM story at serving time: the parent backbone is
// resident once, and each of N tasks costs only its tiny T_child. The
// cache bounds how many adaptations stay hydrated in memory and pulls
// misses through a loader — typically core::AdaptationStore::task_loader()
// reading the on-disk deployment artifact. Hit / miss / eviction counters
// feed the server's stats table.
//
// Not thread-safe; owned and driven by the server's dispatch loop.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/multitask.h"

namespace mime::serve {

class ThresholdCache {
public:
    using Loader = std::function<core::TaskAdaptation(const std::string&)>;

    /// `capacity` bounds resident adaptations; `loader` hydrates misses.
    ThresholdCache(std::size_t capacity, Loader loader);

    /// Returns the adaptation for `task`, hydrating (and possibly
    /// evicting the least-recently-used entry) on a miss. The reference
    /// stays valid until the next get() call.
    const core::TaskAdaptation& get(const std::string& task);

    /// True when the task is resident (does not touch recency or
    /// counters).
    bool contains(const std::string& task) const;

    std::size_t size() const noexcept { return index_.size(); }
    std::size_t capacity() const noexcept { return capacity_; }

    /// Rebounds the cache. Shrinking below the resident count does not
    /// evict immediately; the next get() drains the overshoot (the
    /// eviction guard is a loop, not an exact-match check).
    void set_capacity(std::size_t capacity);

    std::int64_t hits() const noexcept { return hits_; }
    std::int64_t misses() const noexcept { return misses_; }
    std::int64_t evictions() const noexcept { return evictions_; }

    /// Resident task names, most- to least-recently used.
    std::vector<std::string> resident_tasks() const;

    /// Total bytes of resident threshold tensors + task heads — the
    /// serving-time counterpart of AdaptationStore::adaptation_bytes().
    std::int64_t resident_bytes() const;

private:
    struct Entry {
        std::string task;
        core::TaskAdaptation adaptation;
    };

    std::size_t capacity_;
    Loader loader_;
    std::list<Entry> entries_;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t evictions_ = 0;
};

}  // namespace mime::serve
