#include "serve/latency_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mime::serve {

namespace {

double nearest_rank(const std::vector<double>& sorted, double p) {
    const auto n = static_cast<double>(sorted.size());
    // The epsilon keeps mathematically exact ranks exact: 99.9/100 is
    // slightly above 0.999 in binary, so without it ceil() at n = 1000
    // would land one rank high (p99.9 -> the max, not the 999th).
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * n - 1e-9));  // 1-based
    return sorted[std::max<std::size_t>(rank, 1) - 1];
}

}  // namespace

void LatencyRecorder::add(double latency_us) {
    ++count_;
    sum_ += latency_us;
    max_ = std::max(max_, latency_us);
    if (samples_.size() < kMaxSamples) {
        samples_.push_back(latency_us);
        return;
    }
    // Reservoir sampling: keep each of the count_ samples with equal
    // probability kMaxSamples / count_.
    const std::uint64_t slot =
        reservoir_rng_.uniform_index(static_cast<std::uint64_t>(count_));
    if (slot < kMaxSamples) {
        samples_[static_cast<std::size_t>(slot)] = latency_us;
    }
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
    if (other.count_ == 0) {
        return;
    }
    const std::int64_t self_count = count_;
    const std::int64_t other_count = other.count_;
    count_ += other_count;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);

    if (samples_.size() + other.samples_.size() <= kMaxSamples) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        return;
    }
    // Both reservoirs are uniform samples of their streams; a uniform
    // sample of the union keeps from each side a share proportional to
    // the stream length it stands for.
    const double self_share =
        static_cast<double>(self_count) /
        static_cast<double>(self_count + other_count);
    std::size_t keep_self = std::min(
        samples_.size(),
        static_cast<std::size_t>(
            std::llround(self_share * static_cast<double>(kMaxSamples))));
    std::size_t keep_other = std::min(other.samples_.size(),
                                      kMaxSamples - keep_self);
    // If one side cannot fill its share, let the other take the slack.
    keep_self = std::min(samples_.size(), kMaxSamples - keep_other);

    // Partial Fisher–Yates: the first `keep` slots become a uniform
    // subsample without replacement.
    auto subsample = [this](std::vector<double>& pool, std::size_t keep) {
        for (std::size_t i = 0; i < keep; ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(reservoir_rng_.uniform_index(
                        static_cast<std::uint64_t>(pool.size() - i)));
            std::swap(pool[i], pool[j]);
        }
        pool.resize(keep);
    };
    subsample(samples_, keep_self);
    std::vector<double> theirs = other.samples_;
    subsample(theirs, keep_other);
    samples_.insert(samples_.end(), theirs.begin(), theirs.end());
}

double LatencyRecorder::mean() const {
    if (count_ == 0) {
        return 0.0;
    }
    return sum_ / static_cast<double>(count_);
}

double LatencyRecorder::max() const { return max_; }

double LatencyRecorder::percentile(double p) const {
    MIME_REQUIRE(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return nearest_rank(sorted, p);
}

LatencyRecorder::Summary LatencyRecorder::summary() const {
    Summary result;
    if (samples_.empty()) {
        return result;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    result.p50 = nearest_rank(sorted, 50.0);
    result.p95 = nearest_rank(sorted, 95.0);
    result.p99 = nearest_rank(sorted, 99.0);
    result.p999 = nearest_rank(sorted, 99.9);
    return result;
}

void LatencyRecorder::clear() {
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
}

}  // namespace mime::serve
