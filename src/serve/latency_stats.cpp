#include "serve/latency_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mime::serve {

namespace {

double nearest_rank(const std::vector<double>& sorted, double p) {
    const auto n = static_cast<double>(sorted.size());
    const auto rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));  // 1-based
    return sorted[std::max<std::size_t>(rank, 1) - 1];
}

}  // namespace

void LatencyRecorder::add(double latency_us) {
    ++count_;
    sum_ += latency_us;
    max_ = std::max(max_, latency_us);
    if (samples_.size() < kMaxSamples) {
        samples_.push_back(latency_us);
        return;
    }
    // Reservoir sampling: keep each of the count_ samples with equal
    // probability kMaxSamples / count_.
    const std::uint64_t slot =
        reservoir_rng_.uniform_index(static_cast<std::uint64_t>(count_));
    if (slot < kMaxSamples) {
        samples_[static_cast<std::size_t>(slot)] = latency_us;
    }
}

double LatencyRecorder::mean() const {
    if (count_ == 0) {
        return 0.0;
    }
    return sum_ / static_cast<double>(count_);
}

double LatencyRecorder::max() const { return max_; }

double LatencyRecorder::percentile(double p) const {
    MIME_REQUIRE(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    return nearest_rank(sorted, p);
}

LatencyRecorder::Summary LatencyRecorder::summary() const {
    Summary result;
    if (samples_.empty()) {
        return result;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    result.p50 = nearest_rank(sorted, 50.0);
    result.p95 = nearest_rank(sorted, 95.0);
    result.p99 = nearest_rank(sorted, 99.0);
    return result;
}

void LatencyRecorder::clear() {
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
}

}  // namespace mime::serve
