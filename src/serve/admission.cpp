#include "serve/admission.h"

#include <algorithm>

namespace mime::serve {

const char* to_string(AdmissionMode mode) {
    switch (mode) {
        case AdmissionMode::block:
            return "block";
        case AdmissionMode::shed:
            return "shed";
    }
    return "unknown";
}

AdmissionController::AdmissionController(AdmissionMode mode,
                                         std::size_t max_pending)
    : mode_(mode), max_pending_(max_pending) {}

bool AdmissionController::try_admit() {
    MutexLock lock(mutex_);
    const auto cap = static_cast<std::int64_t>(max_pending_);
    if (max_pending_ != 0 && pending_ >= cap) {
        if (mode_ == AdmissionMode::shed) {
            ++shed_;
            return false;
        }
        while (!closed_ && pending_ >= cap) {
            slot_freed_.wait(lock);
        }
    }
    if (closed_) {
        return false;
    }
    ++pending_;
    ++admitted_;
    peak_pending_ = std::max(peak_pending_, pending_);
    return true;
}

void AdmissionController::release(std::size_t count) {
    {
        MutexLock lock(mutex_);
        pending_ -= static_cast<std::int64_t>(count);
    }
    slot_freed_.notify_all();
}

void AdmissionController::close() {
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    slot_freed_.notify_all();
}

std::int64_t AdmissionController::pending() const {
    MutexLock lock(mutex_);
    return pending_;
}

std::int64_t AdmissionController::peak_pending() const {
    MutexLock lock(mutex_);
    return peak_pending_;
}

std::int64_t AdmissionController::shed_count() const {
    MutexLock lock(mutex_);
    return shed_;
}

std::int64_t AdmissionController::admitted_count() const {
    MutexLock lock(mutex_);
    return admitted_;
}

}  // namespace mime::serve
