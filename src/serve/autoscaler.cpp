#include "serve/autoscaler.h"

#include "common/check.h"

namespace mime::serve {

ReplicaAutoscaler::ReplicaAutoscaler(AutoscalerConfig config)
    : config_(config) {
    MIME_REQUIRE(config_.min_replicas >= 1,
                 "autoscaler needs at least one replica");
    MIME_REQUIRE(config_.max_replicas >= config_.min_replicas,
                 "max_replicas must be >= min_replicas");
    MIME_REQUIRE(config_.grow_backlog_us > config_.shrink_backlog_us,
                 "grow threshold must sit above the shrink threshold "
                 "(the gap is the hysteresis band)");
    MIME_REQUIRE(config_.grow_patience >= 1 && config_.shrink_patience >= 1,
                 "patience must be at least one tick");
}

int ReplicaAutoscaler::step(double backlog_per_replica_us,
                            std::int64_t shed_delta, std::size_t active,
                            std::int64_t replica_cost_bytes) {
    const bool pressured =
        backlog_per_replica_us > config_.grow_backlog_us || shed_delta > 0;
    const bool idle = backlog_per_replica_us < config_.shrink_backlog_us &&
                      shed_delta == 0;

    if (pressured) {
        shrink_streak_ = 0;
        if (++grow_streak_ >= config_.grow_patience) {
            grow_streak_ = 0;
            if (active >= config_.max_replicas) {
                return 0;
            }
            if (config_.memory_budget_bytes > 0 &&
                replica_cost_bytes > 0 &&
                static_cast<std::int64_t>(active + 1) * replica_cost_bytes >
                    config_.memory_budget_bytes) {
                ++budget_blocked_;
                return 0;
            }
            return +1;
        }
        return 0;
    }

    grow_streak_ = 0;
    if (idle) {
        if (++shrink_streak_ >= config_.shrink_patience) {
            shrink_streak_ = 0;
            return active > config_.min_replicas ? -1 : 0;
        }
        return 0;
    }
    // In the hysteresis band: hold, and require fresh consecutive
    // evidence before the next shrink.
    shrink_streak_ = 0;
    return 0;
}

}  // namespace mime::serve
