#include "serve/inference_server.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "core/forward_plan.h"
#include "tensor/tensor_ops.h"

namespace mime::serve {

namespace {

double to_us(Clock::duration d) {
    return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

std::string ServerStats::to_table_string() const {
    Table aggregate({"metric", "value"});
    aggregate.add_row({"requests", std::to_string(requests_completed)});
    aggregate.add_row({"batches", std::to_string(batches_run)});
    aggregate.add_row({"mean batch", Table::num(mean_batch_size, 2)});
    aggregate.add_row({"threshold swaps", std::to_string(threshold_swaps)});
    aggregate.add_row({"cache hit/miss/evict",
                       std::to_string(cache_hits) + "/" +
                           std::to_string(cache_misses) + "/" +
                           std::to_string(cache_evictions)});
    aggregate.add_row({"throughput (req/s)", Table::num(throughput_rps, 1)});
    aggregate.add_row({"latency p50 (us)", Table::num(p50_latency_us, 1)});
    aggregate.add_row({"latency p95 (us)", Table::num(p95_latency_us, 1)});
    aggregate.add_row({"latency p99 (us)", Table::num(p99_latency_us, 1)});
    aggregate.add_row(
        {"workspace peak (bytes)", std::to_string(workspace_peak_bytes)});
    aggregate.add_row(
        {"plan buffers (bytes)", std::to_string(plan_buffer_bytes)});

    Table tasks({"task", "requests", "batches", "mean sparsity"});
    for (const auto& [name, ts] : per_task) {
        tasks.add_row({name, std::to_string(ts.requests),
                       std::to_string(ts.batches),
                       Table::num(ts.mean_sparsity, 4)});
    }
    return aggregate.to_string() + "\n" + tasks.to_string();
}

InferenceServer::InferenceServer(core::MimeNetwork& network,
                                 ThresholdCache::Loader loader,
                                 ServerConfig config)
    : network_(&network),
      config_(config),
      pool_(config.worker_threads),
      queue_(config.queue_capacity),
      batcher_(config.batcher),
      cache_(config.cache_capacity, std::move(loader)) {
    MIME_REQUIRE(!network.layer_specs().empty(),
                 "network has no layers to serve");
    const arch::LayerSpec& first = network.layer_specs().front();
    input_shape_ = Shape({first.in_channels, first.in_height, first.in_width});
    network_->set_training(false);
    // The planned executor needs eval-mode forwards (no backward-only
    // caches); the legacy path keeps the network's previous cache
    // behavior so A/B benches compare against the true old path.
    network_->set_eval_mode(config.planned_executor);
    network_->set_mode(core::ActivationMode::threshold);
    network_->set_pool(&pool_);
    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() { stop(); }

std::future<InferenceResult> InferenceServer::submit_async(
    const std::string& task, Tensor image) {
    MIME_REQUIRE(!task.empty(), "request needs a task name");
    // Validate the full shape here so one mis-shaped request is rejected
    // at the door instead of failing every request co-batched with it.
    MIME_REQUIRE(image.shape() == input_shape_,
                 "request image must be " + input_shape_.to_string() +
                     ", got " + image.shape().to_string());

    InferenceRequest request;
    request.task = task;
    request.image = std::move(image);
    request.enqueue_time = Clock::now();

    std::future<InferenceResult> future = request.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        MIME_REQUIRE(!stopped_, "submit on a stopped server");
        request.id = next_request_id_++;
        if (submitted_ == 0) {
            first_enqueue_ = request.enqueue_time;
        }
        ++submitted_;
    }
    const bool accepted = queue_.push(std::move(request));
    if (!accepted) {
        // Raced with stop(): un-count the request so drain() still
        // terminates, then surface the rejection.
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            --submitted_;
        }
        drained_.notify_all();
        MIME_REQUIRE(accepted, "submit on a stopped server");
    }
    return future;
}

InferenceResult InferenceServer::submit(const std::string& task,
                                        Tensor image) {
    return submit_async(task, std::move(image)).get();
}

void InferenceServer::drain() {
    std::unique_lock<std::mutex> lock(stats_mutex_);
    drained_.wait(lock, [this] { return completed_ == submitted_; });
}

void InferenceServer::stop() {
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (stopped_) {
            return;
        }
        stopped_ = true;
    }
    queue_.close();
    if (dispatcher_.joinable()) {
        dispatcher_.join();
    }
    network_->set_pool(nullptr);
}

void InferenceServer::dispatch_loop() {
    constexpr auto kIdleTick = std::chrono::milliseconds(50);
    for (;;) {
        const auto deadline =
            batcher_.next_deadline().value_or(Clock::now() + kIdleTick);
        std::vector<InferenceRequest> arrived = queue_.drain_until(deadline);
        for (InferenceRequest& request : arrived) {
            batcher_.add(std::move(request));
        }
        // Once the queue is closed no more requests can arrive; flush
        // partial batches instead of waiting out max_wait.
        const bool closing = queue_.closed();
        while (auto batch = batcher_.next_batch(Clock::now(), closing)) {
            run_batch(std::move(*batch));
        }
        if (closing && batcher_.empty() && queue_.size() == 0) {
            return;
        }
    }
}

void InferenceServer::install_task(const std::string& task) {
    if (task == active_task_) {
        cache_.get(task);  // keep recency honest even without a swap
        return;
    }
    const core::TaskAdaptation& adaptation = cache_.get(task);
    // Invalidate before mutating: if a corrupt adaptation throws partway
    // through the install, no task may be considered resident, or the
    // previously active task would silently run on mixed thresholds.
    active_task_.clear();
    active_classes_ = 0;
    network_->load_thresholds(adaptation.thresholds);
    auto backbone = network_->backbone_parameters();
    MIME_REQUIRE(backbone.size() >= 2,
                 "backbone must end with classifier weight+bias");
    backbone[backbone.size() - 2]->value.copy_from(adaptation.head_weight);
    backbone[backbone.size() - 1]->value.copy_from(adaptation.head_bias);
    active_task_ = task;
    active_classes_ = adaptation.num_classes;
    ++threshold_swaps_;
}

void InferenceServer::run_batch(std::vector<InferenceRequest> batch) {
    const Clock::time_point started = Clock::now();
    const std::string task = batch.front().task;
    try {
        install_task(task);

        // Planned path: stack request images into the plan's
        // preallocated input slab and execute against plan buffers +
        // this replica's workspace — zero heap allocations once the
        // plan for this batch size is warm. Legacy path kept for A/B.
        std::optional<Tensor> legacy_logits;
        const Tensor* logits = nullptr;
        if (config_.planned_executor) {
            core::ForwardPlan& plan =
                network_->plan_for(static_cast<std::int64_t>(batch.size()));
            Tensor& slab = plan.input_slab();
            for (std::size_t n = 0; n < batch.size(); ++n) {
                batch_assign(slab, static_cast<std::int64_t>(n),
                             batch[n].image);
            }
            logits = &network_->forward_planned(slab, workspace_);
        } else {
            std::vector<Tensor> images;
            images.reserve(batch.size());
            for (InferenceRequest& request : batch) {
                images.push_back(std::move(request.image));
            }
            legacy_logits = network_->forward(stack(images));
            logits = &*legacy_logits;
        }
        if (config_.simulated_service_time.count() > 0) {
            std::this_thread::sleep_for(config_.simulated_service_time);
        }

        const std::int64_t head_width = logits->shape().dim(1);
        const std::int64_t classes = active_classes_;
        MIME_REQUIRE(classes >= 1 && classes <= head_width,
                     "task " + task + " claims " + std::to_string(classes) +
                         " classes but the head is " +
                         std::to_string(head_width) +
                         " wide (corrupt adaptation?)");
        double sparsity_sum = 0.0;
        const std::vector<double> site_sparsities =
            network_->last_site_sparsities();
        for (const double s : site_sparsities) {
            sparsity_sum += s;
        }
        const double batch_sparsity =
            site_sparsities.empty()
                ? 0.0
                : sparsity_sum / static_cast<double>(site_sparsities.size());

        const Clock::time_point finished = Clock::now();
        std::vector<double> latencies;
        latencies.reserve(batch.size());
        std::vector<InferenceResult> results;
        results.reserve(batch.size());
        for (std::size_t n = 0; n < batch.size(); ++n) {
            InferenceRequest& request = batch[n];
            InferenceResult result;
            result.request_id = request.id;
            result.task = task;
            result.batch_size = static_cast<std::int64_t>(batch.size());
            // Task-restricted logits row (the shared head is sized for
            // the largest task).
            const float* row =
                logits->data() + static_cast<std::int64_t>(n) * head_width;
            std::vector<float> row_values(
                row, row + static_cast<std::size_t>(classes));
            result.logits = Tensor({classes}, std::move(row_values));
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < classes; ++c) {
                if (result.logits[c] > result.logits[best]) {
                    best = c;
                }
            }
            result.predicted_class = best;
            result.latency_us = to_us(finished - request.enqueue_time);
            latencies.push_back(result.latency_us);
            results.push_back(std::move(result));
        }

        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            completed_ += static_cast<std::int64_t>(batch.size());
            ++batches_run_;
            swaps_snapshot_ = threshold_swaps_;
            workspace_peak_snapshot_ =
                static_cast<std::int64_t>(workspace_.peak_bytes());
            plan_buffers_snapshot_ =
                static_cast<std::int64_t>(network_->planned_buffer_bytes());
            cache_hits_snapshot_ = cache_.hits();
            cache_misses_snapshot_ = cache_.misses();
            cache_evictions_snapshot_ = cache_.evictions();
            for (const double latency : latencies) {
                latency_.add(latency);
            }
            TaskServeStats& ts = per_task_[task];
            ts.requests += static_cast<std::int64_t>(batch.size());
            ts.mean_sparsity =
                (ts.mean_sparsity * static_cast<double>(ts.batches) +
                 batch_sparsity) /
                static_cast<double>(ts.batches + 1);
            ++ts.batches;
            last_completion_ = finished;
        }
        // Resolve promises only after the stats are consistent, so a
        // client observing its future also observes its request in
        // stats().
        for (std::size_t n = 0; n < batch.size(); ++n) {
            batch[n].promise.set_value(std::move(results[n]));
        }
    } catch (...) {
        std::exception_ptr error = std::current_exception();
        for (InferenceRequest& request : batch) {
            request.promise.set_exception(error);
        }
        std::lock_guard<std::mutex> lock(stats_mutex_);
        completed_ += static_cast<std::int64_t>(batch.size());
        ++batches_run_;
        last_completion_ = started;
    }
    drained_.notify_all();
    if (config_.on_requests_complete) {
        config_.on_requests_complete(batch.size());
    }
}

LatencyRecorder InferenceServer::latency_recorder() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return latency_;
}

ServerStats InferenceServer::stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ServerStats stats;
    stats.requests_completed = completed_;
    stats.batches_run = batches_run_;
    stats.threshold_swaps = swaps_snapshot_;
    stats.workspace_peak_bytes = workspace_peak_snapshot_;
    stats.plan_buffer_bytes = plan_buffers_snapshot_;
    stats.cache_hits = cache_hits_snapshot_;
    stats.cache_misses = cache_misses_snapshot_;
    stats.cache_evictions = cache_evictions_snapshot_;
    stats.mean_batch_size =
        batches_run_ > 0 ? static_cast<double>(completed_) /
                               static_cast<double>(batches_run_)
                         : 0.0;
    stats.mean_latency_us = latency_.mean();
    if (latency_.count() > 0) {
        const LatencyRecorder::Summary quantiles = latency_.summary();
        stats.p50_latency_us = quantiles.p50;
        stats.p95_latency_us = quantiles.p95;
        stats.p99_latency_us = quantiles.p99;
        stats.max_latency_us = latency_.max();
    }
    if (completed_ > 0) {
        const double elapsed_s =
            to_us(last_completion_ - first_enqueue_) / 1e6;
        stats.throughput_rps =
            elapsed_s > 0.0 ? static_cast<double>(completed_) / elapsed_s
                            : 0.0;
    }
    stats.per_task = per_task_;
    return stats;
}

}  // namespace mime::serve
