#include "serve/inference_server.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "core/forward_plan.h"
#include "tensor/tensor_ops.h"

namespace mime::serve {

namespace {

double to_us(Clock::duration d) {
    return std::chrono::duration<double, std::micro>(d).count();
}

/// Installs the cost model's feasibility hook on the batcher config
/// when cost admission is on and the caller did not bring its own hook.
BatcherConfig make_batcher_config(const ServerConfig& config) {
    BatcherConfig batcher = config.batcher;
    if (config.cost_model && config.cost_admission &&
        !batcher.predict_batch_us) {
        std::shared_ptr<CostModel> model = config.cost_model;
        batcher.predict_batch_us = [model](const std::string& task,
                                           std::int64_t batch_size) {
            return model->predict_batch_us(task, batch_size);
        };
    }
    return batcher;
}

}  // namespace

std::string ServerStats::to_table_string() const {
    Table aggregate({"metric", "value"});
    aggregate.add_row({"requests", std::to_string(requests_completed)});
    aggregate.add_row({"served ok", std::to_string(requests_served)});
    aggregate.add_row({"deadline expired", std::to_string(deadline_expired)});
    aggregate.add_row({"cancelled", std::to_string(cancelled)});
    aggregate.add_row({"batches", std::to_string(batches_run)});
    aggregate.add_row({"mean batch", Table::num(mean_batch_size, 2)});
    aggregate.add_row({"threshold swaps", std::to_string(threshold_swaps)});
    aggregate.add_row({"cache hit/miss/evict",
                       std::to_string(cache_hits) + "/" +
                           std::to_string(cache_misses) + "/" +
                           std::to_string(cache_evictions)});
    aggregate.add_row({"throughput (req/s)", Table::num(throughput_rps, 1)});
    aggregate.add_row({"latency p50 (us)", Table::num(p50_latency_us, 1)});
    aggregate.add_row({"latency p95 (us)", Table::num(p95_latency_us, 1)});
    aggregate.add_row({"latency p99 (us)", Table::num(p99_latency_us, 1)});
    aggregate.add_row({"latency p99.9 (us)", Table::num(p999_latency_us, 1)});
    aggregate.add_row({"interactive done/p95 (us)",
                       std::to_string(interactive.completed) + " / " +
                           Table::num(interactive.p95_latency_us, 1)});
    aggregate.add_row({"batch done/p95 (us)",
                       std::to_string(batch.completed) + " / " +
                           Table::num(batch.p95_latency_us, 1)});
    aggregate.add_row(
        {"workspace peak (bytes)", std::to_string(workspace_peak_bytes)});
    aggregate.add_row(
        {"plan buffers (bytes)", std::to_string(plan_buffer_bytes)});
    aggregate.add_row(
        {"sparse path hits", std::to_string(sparse_path_hits)});
    aggregate.add_row(
        {"skipped MAC fraction", Table::num(skipped_mac_fraction, 4)});
    aggregate.add_row(
        {"quantized path hits", std::to_string(quantized_path_hits)});
    aggregate.add_row({"quantized weight max rel err",
                       Table::num(quantized_weight_max_rel_error, 4)});
    aggregate.add_row(
        {"cost-infeasible shed", std::to_string(cost_infeasible_shed)});
    aggregate.add_row(
        {"cost prediction error", Table::num(cost_prediction_error, 4)});

    Table tasks({"task", "requests", "batches", "mean sparsity"});
    for (const auto& [name, ts] : per_task) {
        tasks.add_row({name, std::to_string(ts.requests),
                       std::to_string(ts.batches),
                       Table::num(ts.mean_sparsity, 4)});
    }
    return aggregate.to_string() + "\n" + tasks.to_string();
}

Shape InferenceServer::serving_input_shape(
    const core::MimeNetwork& network) {
    MIME_REQUIRE(!network.layer_specs().empty(),
                 "network has no layers to serve");
    const arch::LayerSpec& first = network.layer_specs().front();
    return Shape({first.in_channels, first.in_height, first.in_width});
}

InferenceServer::InferenceServer(core::MimeNetwork& network,
                                 ThresholdCache::Loader loader,
                                 ServerConfig config)
    : network_(&network),
      config_(config),
      input_shape_(serving_input_shape(network)),
      pool_(config.worker_threads),
      queue_(config.queue_capacity),
      batcher_(make_batcher_config(config)),
      cache_(config.cache_capacity, std::move(loader)),
      sampler_(config.trace_sample_rate),
      served_(registry_.counter("serve.requests_served",
                                "requests completed with a result")),
      failed_(registry_.counter("serve.requests_failed",
                                "requests failed by a batch error")),
      deadline_expired_(registry_.counter(
          "serve.deadline_expired", "requests reaped past their deadline")),
      cancelled_(registry_.counter("serve.cancelled",
                                   "requests whose cancel won the race")),
      batches_run_(registry_.counter("serve.batches_run",
                                     "forward batches executed")),
      lane_completed_interactive_(registry_.counter(
          "serve.interactive_completed",
          "interactive-lane requests served ok")),
      lane_completed_batch_(registry_.counter(
          "serve.batch_completed", "batch-lane requests served ok")),
      cost_infeasible_shed_(registry_.counter(
          "serve.cost_infeasible_shed",
          "requests shed at batch forming: predicted cost cannot meet "
          "their deadline")),
      threshold_swaps_gauge_(registry_.gauge(
          "serve.threshold_swaps", "per-task threshold installs")),
      workspace_peak_gauge_(registry_.gauge(
          "serve.workspace_peak_bytes", "planned scratch high-water mark")),
      plan_buffers_gauge_(registry_.gauge(
          "serve.plan_buffer_bytes", "plan-owned activation buffer bytes")),
      cache_hits_gauge_(registry_.gauge("serve.cache_hits",
                                        "threshold cache hits")),
      cache_misses_gauge_(registry_.gauge("serve.cache_misses",
                                          "threshold cache misses")),
      cache_evictions_gauge_(registry_.gauge("serve.cache_evictions",
                                             "threshold cache evictions")),
      sparse_hits_gauge_(registry_.gauge(
          "serve.sparse_path_hits",
          "planned steps that ran row-compacted sparse")),
      skipped_macs_gauge_(registry_.gauge(
          "serve.skipped_macs", "MACs skipped by sparse execution")),
      dense_macs_gauge_(registry_.gauge(
          "serve.dense_equivalent_macs",
          "dense-equivalent MACs of planned steps run")),
      quantized_hits_gauge_(registry_.gauge(
          "serve.quantized_path_hits",
          "planned steps that ran the int8 quantized kernels")),
      quantized_error_gauge_(registry_.gauge(
          "serve.quantized_weight_max_rel_error",
          "worst per-channel relative error of int8 weight snapshots")),
      cost_predicted_gauge_(registry_.gauge(
          "serve.cost_predicted_us",
          "cost model's prediction for the last executed batch (us)")),
      cost_error_gauge_(registry_.gauge(
          "serve.cost_prediction_error",
          "cost model mean |predicted-observed|/observed")),
      batch_size_hist_(registry_.histogram(
          "serve.batch_size", {1, 2, 4, 8, 16, 32}, "formed batch sizes")),
      latency_hist_(registry_.histogram(
          "serve.latency_us",
          {100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000},
          "request latency, enqueue to completion (us)")) {
    network_->set_training(false);
    // The planned executor needs eval-mode forwards (no backward-only
    // caches); the legacy path keeps the network's previous cache
    // behavior so A/B benches compare against the true old path.
    network_->set_eval_mode(config.planned_executor);
    network_->set_mode(core::ActivationMode::threshold);
    network_->set_pool(&pool_);
    network_->set_sparse_execution(
        {config.sparse_execution, config.sparse_density_cutoff});
    network_->set_quantized_execution({config.quantized_execution});
    network_->set_plan_profiling(config.profile_layers);
    dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceServer::~InferenceServer() { stop(); }

RequestTicket InferenceServer::submit(const std::string& task, Tensor image,
                                      SubmitOptions options) {
    return submit_impl(task, std::move(image), std::move(options), nullptr,
                       /*envelope_checked=*/false, /*trace=*/nullptr,
                       /*admission_start=*/Clock::now());
}

RequestTicket InferenceServer::submit_impl(
    const std::string& task, Tensor image, SubmitOptions options,
    bool* accepted, bool envelope_checked, std::shared_ptr<obs::Trace> trace,
    Clock::time_point admission_start) {
    if (accepted != nullptr) {
        *accepted = false;
    }
    if (!envelope_checked) {
        if (auto error =
                envelope_error(task, image, input_shape_, options)) {
            return reject(options, ServeStatus::invalid_request,
                          std::move(*error));
        }
    }
    // Callers that pre-checked the envelope (the pool) own the sampling
    // decision; otherwise this replica's sampler decides.
    if (trace == nullptr && !envelope_checked &&
        (options.trace || sampler_.sample())) {
        trace = std::make_shared<obs::Trace>();
    }

    InferenceRequest request;
    request.task = task;
    request.image = std::move(image);
    request.priority = options.priority;
    request.control = std::make_shared<RequestControl>();
    request.enqueue_time = Clock::now();
    if (options.deadline.count() > 0) {
        request.deadline = request.enqueue_time + options.deadline;
    }
    std::future<Outcome<InferenceResult>> future;
    if (options.on_result) {
        request.on_result = std::move(options.on_result);
    } else {
        future = request.promise.get_future();
    }

    const std::optional<std::int64_t> id =
        state_.register_submit(request.enqueue_time);
    if (!id.has_value()) {
        // Claim so cancel() on the rejected ticket reports false.
        request.control->try_claim();
        request.deliver(Outcome<InferenceResult>(
            ServeStatus::shutdown, "submit on a stopped server"));
        return RequestTicket(-1, std::move(request.control),
                             std::move(future));
    }
    request.id = *id;
    std::shared_ptr<RequestControl> control = request.control;

    // Record admission *before* the queue push: after the push the
    // dispatch thread owns the trace (the queue mutex is the hand-off),
    // so this is the submitter's last write.
    if (trace != nullptr) {
        trace->record(obs::SpanKind::admission, admission_start,
                      Clock::now());
        request.trace = trace;
    }

    if (!queue_.push(std::move(request))) {
        // Raced with stop(): un-count the request so drain() still
        // terminates, then deliver the rejection.
        state_.rollback_submit();
        control->try_claim();
        request.deliver(Outcome<InferenceResult>(
            ServeStatus::shutdown, "submit on a stopped server"));
        return RequestTicket(*id, std::move(control), std::move(future));
    }
    if (accepted != nullptr) {
        *accepted = true;
    }
    return RequestTicket(*id, std::move(control), std::move(future),
                         std::move(trace));
}

void InferenceServer::drain() { state_.drain(); }

void InferenceServer::stop() {
    if (!state_.begin_stop()) {
        return;
    }
    queue_.close();
    if (dispatcher_.joinable()) {
        dispatcher_.join();
    }
    network_->set_pool(nullptr);
}

void InferenceServer::dispatch_loop() {
    constexpr auto kIdleTick = std::chrono::milliseconds(50);
    for (;;) {
        const auto deadline =
            batcher_.next_deadline().value_or(Clock::now() + kIdleTick);
        std::vector<InferenceRequest> arrived = queue_.drain_until(deadline);
        for (InferenceRequest& request : arrived) {
            if (request.trace != nullptr) {
                const Clock::time_point drained = Clock::now();
                request.trace->record(obs::SpanKind::queue_wait,
                                      request.enqueue_time, drained);
                request.batcher_add_time = drained;
            }
            batcher_.add(std::move(request));
        }
        // Once the queue is closed no more requests can arrive; flush
        // partial batches instead of waiting out max_wait.
        const bool closing = queue_.closed();
        for (;;) {
            BatchResult decision = batcher_.next_batch(Clock::now(), closing);
            for (ReapedRequest& reaped : decision.reaped) {
                const char* why = "cancelled before dispatch";
                if (reaped.status == ServeStatus::deadline_exceeded) {
                    why = reaped.predicted_infeasible
                              ? "predicted service time cannot meet the "
                                "deadline; shed at batch formation"
                              : "deadline expired before batch formation";
                }
                if (reaped.predicted_infeasible) {
                    cost_infeasible_shed_.add();
                }
                fail_request(std::move(reaped.request), reaped.status, why);
            }
            if (decision.batch.has_value()) {
                run_batch(std::move(*decision.batch));
            } else if (decision.reaped.empty()) {
                break;  // no batch, nothing reaped: the lanes are settled
            }
            // A reap-only round made progress (shed work may have
            // unblocked a feasible batch); form again before sleeping.
        }
        if (closing && batcher_.empty() && queue_.size() == 0) {
            return;
        }
    }
}

void InferenceServer::fail_request(InferenceRequest request,
                                   ServeStatus status, std::string message) {
    if (status == ServeStatus::deadline_exceeded) {
        deadline_expired_.add();
    } else if (status == ServeStatus::cancelled) {
        cancelled_.add();
    }
    if (request.trace != nullptr) {
        // Reaped at batch-forming: time in the batcher, then straight to
        // failure delivery — no swap/forward spans.
        const Clock::time_point reaped = Clock::now();
        if (request.batcher_add_time != Clock::time_point{}) {
            request.trace->record(obs::SpanKind::batch_form,
                                  request.batcher_add_time, reaped);
        }
        request.trace->record(obs::SpanKind::delivery, reaped, reaped);
    }
    // Deliver before completing the accounting so drain() returning
    // implies every outcome (callback or future) has been delivered.
    request.deliver(Outcome<InferenceResult>(status, std::move(message)));
    state_.complete(1, Clock::now());
    if (config_.on_requests_complete) {
        config_.on_requests_complete(1);
    }
}

void InferenceServer::install_task(const std::string& task) {
    if (task == active_task_) {
        cache_.get(task);  // keep recency honest even without a swap
        return;
    }
    const core::TaskAdaptation& adaptation = cache_.get(task);
    // Invalidate before mutating: if a corrupt adaptation throws partway
    // through the install, no task may be considered resident, or the
    // previously active task would silently run on mixed thresholds.
    active_task_.clear();
    active_classes_ = 0;
    network_->load_thresholds(adaptation.thresholds);
    auto backbone = network_->backbone_parameters();
    MIME_REQUIRE(backbone.size() >= 2,
                 "backbone must end with classifier weight+bias");
    backbone[backbone.size() - 2]->value.copy_from(adaptation.head_weight);
    backbone[backbone.size() - 1]->value.copy_from(adaptation.head_bias);
    active_task_ = task;
    active_classes_ = adaptation.num_classes;
    ++threshold_swaps_;
}

void InferenceServer::run_batch(std::vector<InferenceRequest> batch) {
    const Clock::time_point started = Clock::now();
    const std::size_t batch_size = batch.size();
    const std::string task = batch.front().task;
    bool traced = false;
    for (const InferenceRequest& request : batch) {
        if (request.trace != nullptr) {
            traced = true;
            break;
        }
    }
    try {
        install_task(task);
        // Untraced batches reuse `started` so they pay no extra clock
        // read; the threshold_swap span is then only meaningful on
        // traced batches.
        const Clock::time_point installed = traced ? Clock::now() : started;

        // Planned path: stack request images into the plan's
        // preallocated input slab and execute against plan buffers +
        // this replica's workspace — zero heap allocations once the
        // plan for this batch size is warm. Legacy path kept for A/B.
        std::optional<Tensor> legacy_logits;
        const Tensor* logits = nullptr;
        if (config_.planned_executor) {
            core::ForwardPlan& plan =
                network_->plan_for(static_cast<std::int64_t>(batch.size()));
            Tensor& slab = plan.input_slab();
            for (std::size_t n = 0; n < batch.size(); ++n) {
                batch_assign(slab, static_cast<std::int64_t>(n),
                             batch[n].image);
            }
            logits = &network_->forward_planned(slab, workspace_);
        } else {
            std::vector<Tensor> images;
            images.reserve(batch.size());
            for (InferenceRequest& request : batch) {
                images.push_back(std::move(request.image));
            }
            legacy_logits = network_->forward(stack(images));
            logits = &*legacy_logits;
        }
        if (config_.simulated_service_time.count() > 0) {
            std::this_thread::sleep_for(config_.simulated_service_time);
        }

        const std::int64_t head_width = logits->shape().dim(1);
        const std::int64_t classes = active_classes_;
        MIME_REQUIRE(classes >= 1 && classes <= head_width,
                     "task " + task + " claims " + std::to_string(classes) +
                         " classes but the head is " +
                         std::to_string(head_width) +
                         " wide (corrupt adaptation?)");
        double sparsity_sum = 0.0;
        const std::vector<double> site_sparsities =
            network_->last_site_sparsities();
        for (const double s : site_sparsities) {
            sparsity_sum += s;
        }
        const double batch_sparsity =
            site_sparsities.empty()
                ? 0.0
                : sparsity_sum / static_cast<double>(site_sparsities.size());

        const Clock::time_point finished = Clock::now();
        if (config_.cost_model) {
            // Feed reality back: this task's observed site sparsities
            // refresh the simulated path, and the measured service time
            // (install + forward + simulated accelerator) calibrates
            // the absolute scale.
            config_.cost_model->set_task_sparsity(task, site_sparsities);
            const CostFeedback feedback = config_.cost_model->observe_batch(
                task, static_cast<std::int64_t>(batch.size()),
                to_us(finished - started));
            cost_predicted_gauge_.set(feedback.predicted_us);
            cost_error_gauge_.set(
                config_.cost_model->mean_abs_relative_error());
        }
        std::vector<InferenceResult> results;
        results.reserve(batch.size());
        for (std::size_t n = 0; n < batch.size(); ++n) {
            InferenceRequest& request = batch[n];
            InferenceResult result;
            result.request_id = request.id;
            result.task = task;
            result.batch_size = static_cast<std::int64_t>(batch.size());
            // Task-restricted logits row (the shared head is sized for
            // the largest task).
            const float* row =
                logits->data() + static_cast<std::int64_t>(n) * head_width;
            std::vector<float> row_values(
                row, row + static_cast<std::size_t>(classes));
            result.logits = Tensor({classes}, std::move(row_values));
            std::int64_t best = 0;
            for (std::int64_t c = 1; c < classes; ++c) {
                if (result.logits[c] > result.logits[best]) {
                    best = c;
                }
            }
            result.predicted_class = best;
            result.latency_us = to_us(finished - request.enqueue_time);
            results.push_back(std::move(result));
        }

        // Registry updates: relaxed atomic adds / sets, no lock. The
        // gauges mirror the dispatch-thread-only counters (cache, swap,
        // plan accounting) so stats() never races this thread.
        served_.add(static_cast<std::int64_t>(batch.size()));
        batches_run_.add();
        batch_size_hist_.observe(static_cast<double>(batch.size()));
        threshold_swaps_gauge_.set(static_cast<double>(threshold_swaps_));
        workspace_peak_gauge_.set(
            static_cast<double>(workspace_.peak_bytes()));
        plan_buffers_gauge_.set(
            static_cast<double>(network_->planned_buffer_bytes()));
        cache_hits_gauge_.set(static_cast<double>(cache_.hits()));
        cache_misses_gauge_.set(static_cast<double>(cache_.misses()));
        cache_evictions_gauge_.set(
            static_cast<double>(cache_.evictions()));
        sparse_hits_gauge_.set(
            static_cast<double>(network_->planned_sparse_hits()));
        skipped_macs_gauge_.set(
            static_cast<double>(network_->planned_skipped_macs()));
        dense_macs_gauge_.set(
            static_cast<double>(network_->planned_dense_macs()));
        quantized_hits_gauge_.set(
            static_cast<double>(network_->planned_quantized_hits()));
        quantized_error_gauge_.set(
            network_->planned_quantized_max_rel_error());
        {
            MutexLock lock(stats_mutex_);
            for (std::size_t n = 0; n < batch.size(); ++n) {
                const double latency = results[n].latency_us;
                latency_.add(latency);
                latency_hist_.observe(latency);
                if (batch[n].priority == Priority::interactive) {
                    lane_latency_interactive_.add(latency);
                    lane_completed_interactive_.add();
                } else {
                    lane_latency_batch_.add(latency);
                    lane_completed_batch_.add();
                }
            }
            TaskServeStats& ts = per_task_[task];
            ts.requests += static_cast<std::int64_t>(batch.size());
            ts.mean_sparsity =
                (ts.mean_sparsity * static_cast<double>(ts.batches) +
                 batch_sparsity) /
                static_cast<double>(ts.batches + 1);
            ++ts.batches;
            if (config_.profile_layers) {
                profiles_snapshot_ = network_->planned_layer_profiles();
            }
        }
        // Traced requests get their dispatch-side spans written before
        // delivery — delivery is the hand-off after which the client
        // may read the trace.
        if (traced) {
            const Clock::time_point delivering = Clock::now();
            for (InferenceRequest& request : batch) {
                if (request.trace == nullptr) {
                    continue;
                }
                request.trace->record(obs::SpanKind::batch_form,
                                      request.batcher_add_time, started);
                request.trace->record(obs::SpanKind::threshold_swap,
                                      started, installed);
                request.trace->record(obs::SpanKind::forward, installed,
                                      finished);
                request.trace->record(obs::SpanKind::delivery, finished,
                                      delivering);
            }
        }
        // Deliver outcomes after the serving stats above are consistent
        // (a client observing its result also observes it in stats()),
        // but before state_.complete: drain() returning must imply
        // every outcome — callback or future — has been delivered.
        for (std::size_t n = 0; n < batch.size(); ++n) {
            batch[n].deliver(
                Outcome<InferenceResult>(std::move(results[n])));
        }
        state_.complete(batch.size(), finished);
    } catch (const std::exception& error) {
        fail_batch(std::move(batch), started, error.what());
    } catch (...) {
        // A loader may throw anything; the dispatch thread must never
        // unwind (std::terminate) or strand the batch undelivered.
        fail_batch(std::move(batch), started,
                   "non-standard exception during batch execution");
    }
    // batch_size, not batch.size(): the failure paths moved the batch.
    if (config_.on_requests_complete) {
        config_.on_requests_complete(batch_size);
    }
}

void InferenceServer::fail_batch(std::vector<InferenceRequest> batch,
                                 Clock::time_point started,
                                 const std::string& message) {
    // Batch-level failures (corrupt adaptation, unknown task) are a
    // caller/deployment bug: surface them as structured invalid_request
    // outcomes, never an exception on this thread.
    batches_run_.add();
    failed_.add(static_cast<std::int64_t>(batch.size()));
    const Clock::time_point failed_at = Clock::now();
    for (InferenceRequest& request : batch) {
        if (request.trace != nullptr) {
            request.trace->record(obs::SpanKind::batch_form,
                                  request.batcher_add_time, started);
            request.trace->record(obs::SpanKind::delivery, started,
                                  failed_at);
        }
        request.deliver(Outcome<InferenceResult>(
            ServeStatus::invalid_request, message));
    }
    state_.complete(batch.size(), started);
}

LatencyRecorder InferenceServer::latency_recorder() const {
    MutexLock lock(stats_mutex_);
    return latency_;
}

LatencyRecorder InferenceServer::latency_recorder(Priority lane) const {
    MutexLock lock(stats_mutex_);
    return lane == Priority::interactive ? lane_latency_interactive_
                                         : lane_latency_batch_;
}

ServiceStats InferenceServer::service_stats() const {
    const ServerStats full = stats();
    ServiceStats stats;
    stats.submitted = state_.submitted();
    stats.completed = full.requests_completed;
    stats.shed = 0;  // a lone server blocks at queue_capacity, never sheds
    stats.deadline_expired = full.deadline_expired;
    stats.cancelled = full.cancelled;
    stats.throughput_rps = full.throughput_rps;
    stats.interactive = full.interactive;
    stats.batch = full.batch;
    return stats;
}

ServerStats InferenceServer::stats() const {
    ServerStats stats;
    stats.throughput_rps = state_.throughput_rps();

    // Counters and gauges come straight from the registry (all updated
    // before delivery, so a client observing its result also observes
    // it here). Read served/failed/expired/cancelled once each so the
    // completed sum is consistent with the parts within this snapshot.
    const std::int64_t served = served_.value();
    const std::int64_t failed = failed_.value();
    stats.requests_served = served;
    stats.deadline_expired = deadline_expired_.value();
    stats.cancelled = cancelled_.value();
    stats.requests_completed =
        served + failed + stats.deadline_expired + stats.cancelled;
    stats.batches_run = batches_run_.value();
    stats.threshold_swaps =
        static_cast<std::int64_t>(threshold_swaps_gauge_.value());
    stats.workspace_peak_bytes =
        static_cast<std::int64_t>(workspace_peak_gauge_.value());
    stats.plan_buffer_bytes =
        static_cast<std::int64_t>(plan_buffers_gauge_.value());
    stats.cache_hits = static_cast<std::int64_t>(cache_hits_gauge_.value());
    stats.cache_misses =
        static_cast<std::int64_t>(cache_misses_gauge_.value());
    stats.cache_evictions =
        static_cast<std::int64_t>(cache_evictions_gauge_.value());
    stats.sparse_path_hits =
        static_cast<std::int64_t>(sparse_hits_gauge_.value());
    stats.skipped_macs =
        static_cast<std::int64_t>(skipped_macs_gauge_.value());
    stats.dense_equivalent_macs =
        static_cast<std::int64_t>(dense_macs_gauge_.value());
    stats.skipped_mac_fraction =
        stats.dense_equivalent_macs > 0
            ? static_cast<double>(stats.skipped_macs) /
                  static_cast<double>(stats.dense_equivalent_macs)
            : 0.0;
    stats.quantized_path_hits =
        static_cast<std::int64_t>(quantized_hits_gauge_.value());
    stats.quantized_weight_max_rel_error = quantized_error_gauge_.value();
    stats.cost_infeasible_shed = cost_infeasible_shed_.value();
    stats.cost_predicted_us = cost_predicted_gauge_.value();
    stats.cost_prediction_error = cost_error_gauge_.value();
    // Numerator counts every request that rode in a batch (served or
    // failed with it) so a failed batch does not understate the mean.
    stats.mean_batch_size =
        stats.batches_run > 0
            ? static_cast<double>(served + failed) /
                  static_cast<double>(stats.batches_run)
            : 0.0;
    stats.interactive.completed = lane_completed_interactive_.value();
    stats.batch.completed = lane_completed_batch_.value();

    MutexLock lock(stats_mutex_);
    stats.mean_latency_us = latency_.mean();
    if (latency_.count() > 0) {
        const LatencyRecorder::Summary quantiles = latency_.summary();
        stats.p50_latency_us = quantiles.p50;
        stats.p95_latency_us = quantiles.p95;
        stats.p99_latency_us = quantiles.p99;
        stats.p999_latency_us = quantiles.p999;
        stats.max_latency_us = latency_.max();
    }
    if (lane_latency_interactive_.count() > 0) {
        const LatencyRecorder::Summary lane =
            lane_latency_interactive_.summary();
        stats.interactive.p50_latency_us = lane.p50;
        stats.interactive.p95_latency_us = lane.p95;
        stats.interactive.p99_latency_us = lane.p99;
        stats.interactive.p999_latency_us = lane.p999;
    }
    if (lane_latency_batch_.count() > 0) {
        const LatencyRecorder::Summary lane = lane_latency_batch_.summary();
        stats.batch.p50_latency_us = lane.p50;
        stats.batch.p95_latency_us = lane.p95;
        stats.batch.p99_latency_us = lane.p99;
        stats.batch.p999_latency_us = lane.p999;
    }
    stats.per_task = per_task_;
    stats.layer_profiles = profiles_snapshot_;
    return stats;
}

}  // namespace mime::serve
