#include "serve/cost_model.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "common/check.h"

namespace mime::serve {

namespace {

/// SparsityProfile rejects values outside [0, 1); observed site
/// sparsities can legitimately hit 1.0 (a fully dead site under heavy
/// structural pruning), so cap just below.
constexpr double kMaxSparsity = 0.999;

double clamp_sparsity(double s) {
    if (!(s > 0.0)) {  // also catches NaN
        return 0.0;
    }
    return std::min(s, kMaxSparsity);
}

}  // namespace

CostModel::CostModel(std::vector<arch::LayerSpec> layers,
                     CostModelConfig config)
    : config_(config),
      layers_(std::move(layers)),
      simulator_(config.systolic),
      dense_profile_("cost-model/dense", std::vector<double>(
                         std::max<std::size_t>(layers_.size(), 1), 0.0)) {
    MIME_REQUIRE(config_.accelerator_clock_ghz > 0.0,
                 "accelerator clock must be positive");
    MIME_REQUIRE(config_.default_per_sample_us > 0.0,
                 "default_per_sample_us must be positive");
    MIME_REQUIRE(config_.default_batch_overhead_us >= 0.0,
                 "default_batch_overhead_us must be non-negative");
    MIME_REQUIRE(config_.calibration_alpha > 0.0 &&
                     config_.calibration_alpha <= 1.0,
                 "calibration_alpha must be in (0, 1]");
    MIME_REQUIRE(config_.min_calibration_scale > 0.0 &&
                     config_.min_calibration_scale <=
                         config_.max_calibration_scale,
                 "calibration scale clamp must be a positive range");
    MIME_REQUIRE(config_.quantized_mac_scale > 0.0,
                 "quantized_mac_scale must be positive");
    if (layers_.empty()) {
        // Nothing for the simulator to price; fall back to the linear
        // model rather than faulting on every predict.
        config_.use_simulator = false;
    }
}

void CostModel::set_task_sparsity(
    const std::string& task, const std::vector<double>& site_sparsities) {
    MutexLock lock(mutex_);
    TaskProfile& profile = tasks_[task];
    std::vector<double> clamped;
    clamped.reserve(site_sparsities.size());
    for (const double s : site_sparsities) {
        clamped.push_back(clamp_sparsity(s));
    }
    if (!profile.sparsity.empty() &&
        profile.sparsity.size() == clamped.size()) {
        double max_delta = 0.0;
        for (std::size_t i = 0; i < clamped.size(); ++i) {
            max_delta = std::max(
                max_delta, std::abs(clamped[i] - profile.sparsity[i]));
        }
        if (max_delta < config_.sparsity_epsilon) {
            return;  // keep the memoized prices
        }
    }
    profile.sparsity = std::move(clamped);
    // Invalidate this task's cached profile and prices.
    profiles_.erase(task);
    for (auto it = base_us_memo_.begin(); it != base_us_memo_.end();) {
        it = it->first.first == task ? base_us_memo_.erase(it)
                                     : std::next(it);
    }
    for (auto it = energy_memo_.begin(); it != energy_memo_.end();) {
        it = it->first.first == task ? energy_memo_.erase(it)
                                     : std::next(it);
    }
}

bool CostModel::has_task_profile(const std::string& task) const {
    MutexLock lock(mutex_);
    return tasks_.count(task) > 0;
}

const hw::SparsityProfile& CostModel::profile_for(
    const std::string& task) const {
    const auto found = tasks_.find(task);
    if (found == tasks_.end() || found->second.sparsity.empty()) {
        return dense_profile_;
    }
    const auto cached = profiles_.find(task);
    if (cached != profiles_.end()) {
        return cached->second;
    }
    // The simulator needs one sparsity per priced layer; a shorter
    // observation (fewer threshold sites than layers) repeats its last
    // value, a longer one truncates.
    std::vector<double> per_layer(layers_.size(), 0.0);
    const std::vector<double>& observed = found->second.sparsity;
    for (std::size_t i = 0; i < per_layer.size(); ++i) {
        per_layer[i] =
            i < observed.size() ? observed[i] : observed.back();
    }
    return profiles_
        .emplace(task,
                 hw::SparsityProfile("cost-model/" + task,
                                     std::move(per_layer)))
        .first->second;
}

double CostModel::base_batch_us(const std::string& task,
                                std::int64_t batch_size) const {
    // The compute term scales inversely with the replicas' MAC
    // throughput (int8 replicas price cheaper); the batch overhead is
    // dispatch bookkeeping, which quantization does not touch.
    if (!config_.use_simulator) {
        return config_.default_batch_overhead_us +
               config_.default_per_sample_us *
                   static_cast<double>(batch_size) /
                   config_.quantized_mac_scale;
    }
    const auto key = std::make_pair(task, batch_size);
    const auto memo = base_us_memo_.find(key);
    if (memo != base_us_memo_.end()) {
        return memo->second;
    }
    hw::SimulationOptions options;
    options.scheme = hw::Scheme::mime;
    options.batch.assign(static_cast<std::size_t>(batch_size), 0);
    options.profiles = {profile_for(task)};
    const hw::SimulationResult result = simulator_.run(layers_, options);
    const double us = result.total_cycles /
                      (config_.accelerator_clock_ghz * 1000.0) /
                      config_.quantized_mac_scale;
    energy_memo_[key] = result.total_energy.total();
    base_us_memo_[key] = us;
    return us;
}

double CostModel::predict_locked(const std::string& task,
                                 std::int64_t batch_size) const {
    const double calibrated =
        base_batch_us(task, batch_size) * calibration_scale_;
    const auto observed = observed_.find(std::make_pair(task, batch_size));
    if (observed == observed_.end() || observed->second.samples == 0) {
        return calibrated;
    }
    // Blend toward the shape's own measured EWMA as samples accumulate;
    // the model still anchors unseen shapes (and the relative cost of
    // growing a batch) through the calibrated term.
    const double n = static_cast<double>(observed->second.samples);
    const double w = n / (n + 4.0);
    return (1.0 - w) * calibrated + w * observed->second.ewma_us;
}

double CostModel::predict_batch_us(const std::string& task,
                                   std::int64_t batch_size) const {
    MIME_REQUIRE(batch_size >= 1, "batch_size must be positive");
    MutexLock lock(mutex_);
    return predict_locked(task, batch_size);
}

double CostModel::predict_request_us(const std::string& task,
                                     std::int64_t expected_batch) const {
    MIME_REQUIRE(expected_batch >= 1, "expected_batch must be positive");
    MutexLock lock(mutex_);
    return predict_locked(task, expected_batch) /
           static_cast<double>(expected_batch);
}

double CostModel::predict_batch_energy(const std::string& task,
                                       std::int64_t batch_size) const {
    MIME_REQUIRE(batch_size >= 1, "batch_size must be positive");
    MutexLock lock(mutex_);
    if (!config_.use_simulator) {
        return 0.0;
    }
    base_batch_us(task, batch_size);  // fills energy_memo_
    return energy_memo_[std::make_pair(task, batch_size)];
}

CostFeedback CostModel::observe_batch(const std::string& task,
                                      std::int64_t batch_size,
                                      double measured_us) {
    MIME_REQUIRE(batch_size >= 1, "batch_size must be positive");
    MutexLock lock(mutex_);
    CostFeedback feedback;
    feedback.predicted_us = predict_locked(task, batch_size);
    if (!(measured_us > 0.0)) {
        return feedback;  // clock glitch; never calibrate on it
    }
    feedback.abs_relative_error =
        std::abs(feedback.predicted_us - measured_us) / measured_us;
    ++observation_count_;
    abs_relative_error_sum_ += feedback.abs_relative_error;

    const double base = base_batch_us(task, batch_size);
    if (base > 0.0) {
        const double ratio = measured_us / base;
        calibration_scale_ = std::clamp(
            (1.0 - config_.calibration_alpha) * calibration_scale_ +
                config_.calibration_alpha * ratio,
            config_.min_calibration_scale, config_.max_calibration_scale);
    }
    ObservedShape& shape = observed_[std::make_pair(task, batch_size)];
    shape.ewma_us =
        shape.samples == 0
            ? measured_us
            : (1.0 - config_.calibration_alpha) * shape.ewma_us +
                  config_.calibration_alpha * measured_us;
    ++shape.samples;
    return feedback;
}

double CostModel::calibration_scale() const {
    MutexLock lock(mutex_);
    return calibration_scale_;
}

std::int64_t CostModel::observation_count() const {
    MutexLock lock(mutex_);
    return observation_count_;
}

double CostModel::mean_abs_relative_error() const {
    MutexLock lock(mutex_);
    return observation_count_ == 0
               ? 0.0
               : abs_relative_error_sum_ /
                     static_cast<double>(observation_count_);
}

}  // namespace mime::serve
