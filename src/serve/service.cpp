#include "serve/service.h"

#include <exception>
#include <thread>
#include <utility>

#include "common/sync.h"
#include "serve/admission.h"

namespace mime::serve {

const char* to_string(ServeStatus status) {
    switch (status) {
        case ServeStatus::ok:
            return "ok";
        case ServeStatus::overloaded:
            return "overloaded";
        case ServeStatus::deadline_exceeded:
            return "deadline_exceeded";
        case ServeStatus::cancelled:
            return "cancelled";
        case ServeStatus::shutdown:
            return "shutdown";
        case ServeStatus::invalid_request:
            return "invalid_request";
    }
    return "unknown";
}

const char* to_string(Priority priority) {
    switch (priority) {
        case Priority::interactive:
            return "interactive";
        case Priority::batch:
            return "batch";
    }
    return "unknown";
}

const char* to_string(DeliveryMode mode) {
    switch (mode) {
        case DeliveryMode::future:
            return "future";
        case DeliveryMode::callback:
            return "callback";
    }
    return "unknown";
}

void InferenceRequest::deliver(Outcome<InferenceResult> outcome) {
    if (on_result) {
        try {
            on_result(std::move(outcome));
        } catch (...) {
            // Callbacks must not throw; the dispatch thread cannot
            // unwind on their behalf.
        }
        return;
    }
    promise.set_value(std::move(outcome));
}

Outcome<InferenceResult> InferenceService::run(const std::string& task,
                                               Tensor image,
                                               SubmitOptions options) {
    MIME_REQUIRE(!options.on_result,
                 "run() waits on the ticket; use submit() for callback "
                 "delivery");
    return submit(task, std::move(image), std::move(options)).wait();
}

namespace {

std::exception_ptr to_legacy_exception(const Outcome<InferenceResult>& outcome) {
    if (outcome.status() == ServeStatus::overloaded) {
        return std::make_exception_ptr(overload_error(outcome.message()));
    }
    return std::make_exception_ptr(check_error(
        to_string(outcome.status()), __FILE__, __LINE__, outcome.message()));
}

/// Bridges the Outcome channel back to the legacy promise/exception
/// contract. Failures delivered synchronously (from the submitting
/// thread, inside submit()) are recorded so the shim can rethrow them at
/// the call site, exactly where the old API threw.
struct LegacyRelay {
    Mutex mutex;
    std::promise<InferenceResult> promise;
    std::thread::id submitter = std::this_thread::get_id();
    std::exception_ptr sync_error MIME_GUARDED_BY(mutex);
};

}  // namespace

std::future<InferenceResult> InferenceService::submit_async(
    const std::string& task, Tensor image) {
    auto relay = std::make_shared<LegacyRelay>();
    std::future<InferenceResult> future = relay->promise.get_future();

    SubmitOptions options;
    options.on_result = [relay](Outcome<InferenceResult> outcome) {
        if (outcome.ok()) {
            relay->promise.set_value(std::move(outcome).value());
            return;
        }
        std::exception_ptr error = to_legacy_exception(outcome);
        relay->promise.set_exception(error);
        if (std::this_thread::get_id() == relay->submitter) {
            MutexLock lock(relay->mutex);
            relay->sync_error = error;
        }
    };
    submit(task, std::move(image), std::move(options));

    {
        MutexLock lock(relay->mutex);
        if (relay->sync_error) {
            std::rethrow_exception(relay->sync_error);
        }
    }
    return future;
}

InferenceResult InferenceService::submit(const std::string& task,
                                         Tensor image) {
    return submit_async(task, std::move(image)).get();
}

std::optional<std::string> InferenceService::envelope_error(
    const std::string& task, const Tensor& image, const Shape& input_shape,
    const SubmitOptions& options) {
    if (task.empty()) {
        return "request needs a task name";
    }
    // Validate the full shape at the door so one mis-shaped request is
    // rejected here instead of failing every request co-batched with it.
    if (image.shape() != input_shape) {
        return "request image must be " + input_shape.to_string() +
               ", got " + image.shape().to_string();
    }
    if (options.deadline.count() < 0) {
        return "deadline must be non-negative (relative to submission; "
               "zero = none)";
    }
    return std::nullopt;
}

RequestTicket InferenceService::reject(SubmitOptions& options,
                                       ServeStatus status,
                                       std::string message) {
    // The control starts claimed-equivalent: cancel() on a rejected
    // ticket must report false (nothing left to stop).
    auto control = std::make_shared<RequestControl>();
    control->try_claim();

    Outcome<InferenceResult> outcome(status, std::move(message));
    if (options.on_result) {
        try {
            options.on_result(std::move(outcome));
        } catch (...) {
            // Callbacks must not throw (see SubmitOptions::on_result).
        }
        return RequestTicket(-1, std::move(control), {});
    }
    std::promise<Outcome<InferenceResult>> promise;
    std::future<Outcome<InferenceResult>> future = promise.get_future();
    promise.set_value(std::move(outcome));
    return RequestTicket(-1, std::move(control), std::move(future));
}

}  // namespace mime::serve
