#include "serve/request_queue.h"

#include "common/check.h"

namespace mime::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
    MIME_REQUIRE(capacity > 0, "queue capacity must be positive");
}

bool RequestQueue::push(InferenceRequest&& request) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
        return false;
    }
    items_.push_back(std::move(request));
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

std::vector<InferenceRequest> RequestQueue::drain_until(
    Clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    return drain_locked();
}

std::vector<InferenceRequest> RequestQueue::drain_now() {
    std::lock_guard<std::mutex> lock(mutex_);
    return drain_locked();
}

std::vector<InferenceRequest> RequestQueue::drain_locked() {
    std::vector<InferenceRequest> out;
    out.reserve(items_.size());
    while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
    }
    not_full_.notify_all();
    return out;
}

void RequestQueue::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

bool RequestQueue::closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t RequestQueue::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

}  // namespace mime::serve
