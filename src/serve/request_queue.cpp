#include "serve/request_queue.h"

#include "common/check.h"

namespace mime::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
    MIME_REQUIRE(capacity > 0, "queue capacity must be positive");
}

bool RequestQueue::push(InferenceRequest&& request) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
        not_full_.wait(lock);
    }
    if (closed_) {
        return false;
    }
    items_.push_back(std::move(request));
    lock.unlock();
    not_empty_.notify_one();
    return true;
}

std::vector<InferenceRequest> RequestQueue::drain_until(
    Clock::time_point deadline) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
        if (not_empty_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            break;
        }
    }
    return drain_locked();
}

std::vector<InferenceRequest> RequestQueue::drain_now() {
    MutexLock lock(mutex_);
    return drain_locked();
}

std::vector<InferenceRequest> RequestQueue::drain_locked() {
    std::vector<InferenceRequest> out;
    out.reserve(items_.size());
    while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
    }
    not_full_.notify_all();
    return out;
}

void RequestQueue::close() {
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
}

bool RequestQueue::closed() const {
    MutexLock lock(mutex_);
    return closed_;
}

std::size_t RequestQueue::size() const {
    MutexLock lock(mutex_);
    return items_.size();
}

}  // namespace mime::serve
