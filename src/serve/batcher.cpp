#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace mime::serve {

const char* to_string(BatchingPolicy policy) {
    switch (policy) {
        case BatchingPolicy::fifo:
            return "fifo";
        case BatchingPolicy::task_grouped:
            return "task_grouped";
    }
    return "unknown";
}

namespace {

/// now + predicted microseconds, saturating at the clock's maximum.
Clock::time_point after_us(Clock::time_point now, double us) {
    if (us <= 0.0) {
        return now;
    }
    const auto predicted = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::micro>(us));
    if (predicted > Clock::time_point::max() - now) {
        return Clock::time_point::max();
    }
    return now + predicted;
}

}  // namespace

TaskBatcher::TaskBatcher(BatcherConfig config) : config_(std::move(config)) {
    MIME_REQUIRE(config.max_batch_size > 0,
                 "max_batch_size must be positive");
    MIME_REQUIRE(config.max_wait.count() >= 0,
                 "max_wait must be non-negative");
}

void TaskBatcher::add(InferenceRequest request) {
    Lane& lane =
        request.priority == Priority::interactive ? interactive_ : batch_;
    lane.push_back(std::move(request));
}

std::optional<Clock::time_point> TaskBatcher::next_deadline() const {
    if (empty()) {
        return std::nullopt;
    }
    std::optional<Clock::time_point> earliest;
    const auto consider = [&earliest](Clock::time_point candidate) {
        if (!earliest || candidate < *earliest) {
            earliest = candidate;
        }
    };
    for (const Lane* lane : {&interactive_, &batch_}) {
        if (!lane->empty()) {
            consider(lane->front().enqueue_time + config_.max_wait);
        }
        for (const InferenceRequest& request : *lane) {
            if (request.deadline != Clock::time_point::max()) {
                consider(request.deadline);
            }
        }
    }
    return earliest;
}

void TaskBatcher::reap_lane(Lane& lane, Clock::time_point now,
                            std::vector<ReapedRequest>& reaped) {
    for (auto it = lane.begin(); it != lane.end();) {
        InferenceRequest& request = *it;
        if (request.control && request.control->cancelled()) {
            reaped.push_back(
                ReapedRequest{std::move(request), ServeStatus::cancelled});
            it = lane.erase(it);
            continue;
        }
        if (request.deadline <= now) {
            // Claim so a concurrent cancel cannot also win; if the
            // cancel got in first, it owns the terminal status.
            const bool claimed =
                !request.control || request.control->try_claim();
            reaped.push_back(ReapedRequest{
                std::move(request), claimed ? ServeStatus::deadline_exceeded
                                            : ServeStatus::cancelled});
            it = lane.erase(it);
            continue;
        }
        // Predictive shedding: when the cost hook says even a batch of
        // one overruns this request's deadline, running it would only
        // waste a forward — fail it now, before it occupies a batch.
        if (config_.predict_batch_us &&
            request.deadline != Clock::time_point::max() &&
            after_us(now, config_.predict_batch_us(request.task, 1)) >
                request.deadline) {
            const bool claimed =
                !request.control || request.control->try_claim();
            reaped.push_back(ReapedRequest{
                std::move(request),
                claimed ? ServeStatus::deadline_exceeded
                        : ServeStatus::cancelled,
                /*predicted_infeasible=*/claimed});
            it = lane.erase(it);
            continue;
        }
        ++it;
    }
}

std::optional<std::vector<InferenceRequest>> TaskBatcher::form_from(
    Lane& lane, Clock::time_point now, bool flush,
    std::vector<ReapedRequest>& reaped) {
    if (lane.empty()) {
        return std::nullopt;
    }

    // The oldest pending request picks the batch's task; this bounds
    // per-request delay under both policies.
    const std::string& task = lane.front().task;
    const auto max_batch = static_cast<std::size_t>(config_.max_batch_size);

    std::vector<std::size_t> member_indices;
    member_indices.reserve(max_batch);
    // Earliest deadline across admitted members: the feasibility bound
    // every growth of the batch must still satisfy.
    Clock::time_point min_deadline = Clock::time_point::max();
    for (std::size_t i = 0; i < lane.size(); ++i) {
        if (lane[i].task != task) {
            if (config_.policy == BatchingPolicy::fifo) {
                break;  // fifo never reaches past a task change
            }
            continue;
        }
        // Cost-aware join check (the front always seeds the batch; its
        // solo feasibility was settled at reap time): admit a candidate
        // only if the grown batch's predicted cost still meets the
        // earliest deadline among members and candidate. Later
        // candidates may still fit — a looser deadline tolerates the
        // bigger batch — so a refusal skips, not breaks.
        if (config_.predict_batch_us && !member_indices.empty()) {
            const Clock::time_point bound =
                std::min(min_deadline, lane[i].deadline);
            if (bound != Clock::time_point::max() &&
                after_us(now,
                         config_.predict_batch_us(
                             task, static_cast<std::int64_t>(
                                       member_indices.size() + 1))) >
                    bound) {
                continue;
            }
        }
        member_indices.push_back(i);
        min_deadline = std::min(min_deadline, lane[i].deadline);
        if (member_indices.size() == max_batch) {
            break;
        }
    }

    const bool full = member_indices.size() == max_batch;
    const bool expired = now >= lane.front().enqueue_time + config_.max_wait;
    if (!full && !expired && !flush) {
        return std::nullopt;
    }

    std::vector<InferenceRequest> batch;
    batch.reserve(member_indices.size());
    // Single stable compaction pass: members move into the batch, the
    // rest slide left over the holes. One O(lane) sweep per formed
    // batch — the old back-to-front erase repaid O(lane) per member,
    // quadratic on deep lanes under burst load.
    std::size_t next_member = 0;
    std::size_t write = 0;
    for (std::size_t read = 0; read < lane.size(); ++read) {
        if (next_member < member_indices.size() &&
            member_indices[next_member] == read) {
            ++next_member;
            InferenceRequest& request = lane[read];
            // Dispatch claims the request here; a cancel that won in
            // the window since the reap pass turns into a reaped entry
            // instead of a batch member.
            if (request.control && !request.control->try_claim()) {
                reaped.push_back(ReapedRequest{std::move(request),
                                               ServeStatus::cancelled});
            } else {
                batch.push_back(std::move(request));
            }
            continue;
        }
        if (write != read) {
            lane[write] = std::move(lane[read]);
        }
        ++write;
    }
    lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(write),
               lane.end());
    if (batch.empty()) {
        return std::nullopt;
    }
    return batch;
}

BatchResult TaskBatcher::next_batch(Clock::time_point now, bool flush) {
    BatchResult result;
    reap_lane(interactive_, now, result.reaped);
    reap_lane(batch_, now, result.reaped);

    // Interactive requests get batch-forming precedence: the batch lane
    // is only consulted when no interactive batch is ready.
    result.batch = form_from(interactive_, now, flush, result.reaped);
    if (!result.batch) {
        result.batch = form_from(batch_, now, flush, result.reaped);
    }
    return result;
}

}  // namespace mime::serve
