#include "serve/batcher.h"

#include <algorithm>

#include "common/check.h"

namespace mime::serve {

const char* to_string(BatchingPolicy policy) {
    switch (policy) {
        case BatchingPolicy::fifo:
            return "fifo";
        case BatchingPolicy::task_grouped:
            return "task_grouped";
    }
    return "unknown";
}

TaskBatcher::TaskBatcher(BatcherConfig config) : config_(config) {
    MIME_REQUIRE(config.max_batch_size > 0,
                 "max_batch_size must be positive");
    MIME_REQUIRE(config.max_wait.count() >= 0,
                 "max_wait must be non-negative");
}

void TaskBatcher::add(InferenceRequest request) {
    pending_.push_back(std::move(request));
}

std::optional<Clock::time_point> TaskBatcher::next_deadline() const {
    if (pending_.empty()) {
        return std::nullopt;
    }
    return pending_.front().enqueue_time + config_.max_wait;
}

std::optional<std::vector<InferenceRequest>> TaskBatcher::next_batch(
    Clock::time_point now, bool flush) {
    if (pending_.empty()) {
        return std::nullopt;
    }

    // The oldest pending request picks the batch's task; this bounds
    // per-request delay under both policies.
    const std::string& task = pending_.front().task;
    const auto max_batch = static_cast<std::size_t>(config_.max_batch_size);

    std::vector<std::size_t> member_indices;
    member_indices.reserve(max_batch);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].task == task) {
            member_indices.push_back(i);
            if (member_indices.size() == max_batch) {
                break;
            }
        } else if (config_.policy == BatchingPolicy::fifo) {
            break;  // fifo never reaches past a task change
        }
    }

    const bool full = member_indices.size() == max_batch;
    const bool expired = now >= pending_.front().enqueue_time + config_.max_wait;
    if (!full && !expired && !flush) {
        return std::nullopt;
    }

    std::vector<InferenceRequest> batch;
    batch.reserve(member_indices.size());
    // Erase back-to-front so earlier indices stay valid.
    for (auto it = member_indices.rbegin(); it != member_indices.rend();
         ++it) {
        batch.push_back(std::move(pending_[*it]));
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(*it));
    }
    std::reverse(batch.begin(), batch.end());
    return batch;
}

}  // namespace mime::serve
