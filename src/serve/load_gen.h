// Synthetic mixed-task arrival streams for serving benchmarks.
//
// Generates a timestamped sequence of (arrival offset, task) events
// under three traffic shapes:
//   * uniform — Poisson arrivals, tasks drawn uniformly,
//   * skewed  — Poisson arrivals, tasks drawn Zipf(s) (a few hot tasks
//               dominate, the realistic multi-tenant case),
//   * bursty  — arrivals come in task-coherent bursts: one task sends a
//               run of closely spaced requests, then the stream idles
//               (models per-client sessions; the best case for
//               task-grouped batching).
// Each event also carries a priority class for the InferenceService
// envelope: `interactive_fraction` of the stream is tagged interactive,
// the rest batch (drawn from a dedicated rng so task/offset sequences
// are unchanged for a given seed).
// Deterministic in the seed so bench runs are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"

namespace mime::serve {

enum class ArrivalPattern { uniform, skewed, bursty };

const char* to_string(ArrivalPattern pattern);

struct LoadSpec {
    ArrivalPattern pattern = ArrivalPattern::uniform;
    std::int64_t task_count = 3;
    std::int64_t request_count = 200;
    /// Mean gap between arrivals (exponential for uniform/skewed; for
    /// bursty this is the mean over bursts + idle gaps combined).
    double mean_interarrival_us = 500.0;
    /// Zipf exponent for `skewed` (task 0 hottest).
    double zipf_s = 1.1;
    /// Mean requests per burst for `bursty`.
    double mean_burst_length = 8.0;
    /// Intra-burst gap as a fraction of mean_interarrival_us.
    double burst_gap_fraction = 0.05;
    /// Fraction of requests tagged Priority::interactive (the rest are
    /// Priority::batch); must be in [0, 1].
    double interactive_fraction = 1.0;
    std::uint64_t seed = 1;
};

/// One scheduled request: submit at `offset_us` after stream start.
struct ArrivalEvent {
    double offset_us = 0.0;
    std::int64_t task = 0;  ///< index into the caller's task-name list
    Priority priority = Priority::interactive;
};

/// Generates `spec.request_count` events with non-decreasing offsets.
std::vector<ArrivalEvent> generate_arrivals(const LoadSpec& spec);

/// Per-task request counts of a stream (diagnostics / tests).
std::vector<std::int64_t> task_histogram(const std::vector<ArrivalEvent>& events,
                                         std::int64_t task_count);

}  // namespace mime::serve
