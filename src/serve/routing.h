// Replica-selection policies for the server pool.
//
// Routing decides which replica InferenceServer a request lands on. The
// three policies trade cache locality against load balance:
//   * round_robin   — strict rotation; perfectly fair, task-blind, so
//                     every replica ends up hydrating every task,
//   * task_affinity — hash task -> replica; a task's thresholds live on
//                     exactly one replica, maximizing ThresholdCache
//                     hits (the pool-level analogue of task-grouped
//                     batching),
//   * least_loaded  — pick the replica with the least outstanding work
//                     (in-flight request count, or predicted cost in
//                     microseconds when the pool runs cost-aware); best
//                     tail latency under skew, task-blind.
// Pure single-threaded logic — the pool drives it under its own mutex —
// so every policy is deterministic and directly unit-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mime::serve {

enum class RoutingPolicy { round_robin, task_affinity, least_loaded };

const char* to_string(RoutingPolicy policy);

/// Stable 64-bit FNV-1a over the task name. Exposed so tests can pin
/// down which replica a task maps to; self-contained (not std::hash)
/// so the mapping is identical across platforms and runs.
std::uint64_t task_hash(const std::string& task);

class Router {
public:
    Router(RoutingPolicy policy, std::size_t replica_count);

    RoutingPolicy policy() const noexcept { return policy_; }
    std::size_t replica_count() const noexcept { return replica_count_; }

    /// Retargets the router to a new (active) replica count — the pool's
    /// autoscaler grows/shrinks the routable set. round_robin keeps its
    /// cursor (modulo the new count); task_affinity remaps tasks, which
    /// trades a one-time cache re-hydration for balanced placement.
    void set_replica_count(std::size_t replica_count);

    /// Picks the replica for `task`. `loads` holds per-replica
    /// outstanding work — in-flight request counts, or predicted
    /// microseconds when the pool runs cost-aware scheduling (only
    /// least_loaded reads it) — and must have replica_count entries.
    /// Exact ties rotate round-robin among the minima so an idle pool
    /// (or equal predicted costs) never hot-spots replica 0.
    std::size_t route(const std::string& task,
                      const std::vector<double>& loads);

private:
    RoutingPolicy policy_;
    std::size_t replica_count_;
    std::size_t next_ = 0;  ///< round-robin cursor
};

}  // namespace mime::serve
