// Unified client API for the serving runtime.
//
// `InferenceService` is the one submission surface every serving backend
// implements — today `InferenceServer` (one network, one dispatch
// thread) and `ServerPool` (N sharded replicas); the ROADMAP's
// cross-host sharding step plugs behind the same contract. A submission
// carries a `SubmitOptions` envelope (relative deadline, priority class,
// delivery mode) and returns a move-only `RequestTicket` supporting
// best-effort cancel(). Results arrive as `Outcome<InferenceResult>` —
// overload shedding, stopped-service submission, deadline expiry and
// cancellation are ServeStatus values on that channel, never exceptions
// — through the ticket's future or, when `on_result` is set, a callback
// invoked from the dispatch side (the async delivery step named in
// ROADMAP.md).
//
// The pre-redesign throwing API (`submit(task, image)` /
// `submit_async(task, image)`) survives only as thin deprecated shims
// implemented on top of submit(); new code should branch on ServeStatus.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "obs/trace.h"
#include "serve/request.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace mime::serve {

/// How a request's outcome reaches the caller.
enum class DeliveryMode {
    future,   ///< wait on RequestTicket::wait() / the ticket's future
    callback  ///< SubmitOptions::on_result runs on the dispatch side
};

const char* to_string(DeliveryMode mode);

/// Per-request submission envelope.
struct SubmitOptions {
    /// Relative deadline from submission; zero = none. Enforced at
    /// batch-forming time: an expired request completes with
    /// ServeStatus::deadline_exceeded and never occupies a forward.
    std::chrono::microseconds deadline{0};
    /// interactive requests get batch-forming precedence over batch.
    Priority priority = Priority::interactive;
    /// When set, selects callback delivery: invoked exactly once with
    /// the terminal outcome — from the dispatch side for accepted
    /// requests, or inline from submit() itself for immediate
    /// rejections (shed, shutdown, malformed envelope) — and the
    /// ticket's future stays invalid. Must not throw and must not block
    /// or retake locks held across submit().
    std::function<void(Outcome<InferenceResult>)> on_result;
    /// Force a span trace for this request regardless of the backend's
    /// sampling rate (rate-based sampling still applies when false).
    /// The trace arrives on RequestTicket::trace().
    bool trace = false;

    DeliveryMode delivery_mode() const noexcept {
        return on_result ? DeliveryMode::callback : DeliveryMode::future;
    }
};

/// Move-only handle to one submitted request. Immediately-rejected
/// submissions (stopped service, shed, malformed envelope) still return
/// a ticket whose outcome is already delivered.
class RequestTicket {
public:
    RequestTicket() = default;
    /// Built by InferenceService implementations.
    RequestTicket(std::int64_t id, std::shared_ptr<RequestControl> control,
                  std::future<Outcome<InferenceResult>> future,
                  std::shared_ptr<const obs::Trace> trace = nullptr)
        : id_(id),
          control_(std::move(control)),
          future_(std::move(future)),
          trace_(std::move(trace)) {}

    RequestTicket(RequestTicket&&) = default;
    RequestTicket& operator=(RequestTicket&&) = default;
    RequestTicket(const RequestTicket&) = delete;
    RequestTicket& operator=(const RequestTicket&) = delete;

    /// Service-local request id (replica-local under a pool).
    std::int64_t id() const noexcept { return id_; }
    bool valid() const noexcept { return control_ != nullptr; }
    /// True for future delivery while wait() has not consumed the
    /// outcome; false for callback delivery.
    bool can_wait() const noexcept { return future_.valid(); }

    /// Best-effort cancellation. True when the cancel won the race with
    /// dispatch: the request completes with ServeStatus::cancelled and
    /// never runs a forward. False when it was already dispatched (or
    /// finished, or cancelled before) — its outcome arrives unchanged.
    bool cancel() { return control_ != nullptr && control_->cancel(); }

    /// Blocks for the outcome (future delivery only; consumes it).
    Outcome<InferenceResult> wait() {
        MIME_REQUIRE(future_.valid(),
                     "RequestTicket::wait() needs future delivery and an "
                     "unconsumed outcome");
        return future_.get();
    }

    /// Span timeline for this request, when it was traced (forced via
    /// SubmitOptions::trace or picked by the backend's sampler); null
    /// otherwise. The spans are written by the service while the request
    /// is in flight — read only after the outcome has been delivered
    /// (wait() returned, or on_result ran).
    const obs::Trace* trace() const noexcept { return trace_.get(); }

private:
    std::int64_t id_ = -1;
    std::shared_ptr<RequestControl> control_;
    std::future<Outcome<InferenceResult>> future_;
    std::shared_ptr<const obs::Trace> trace_;
};

/// Completion count and latency quantiles of one priority class.
struct PriorityLaneStats {
    std::int64_t completed = 0;  ///< requests served ok in this class
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;  ///< p99.9, the SLO tail quantile
};

/// Backend-agnostic serving counters, comparable across every
/// InferenceService implementation (the richer ServerStats / PoolStats
/// remain on the concrete classes).
struct ServiceStats {
    std::int64_t submitted = 0;  ///< accepted past the front door
    std::int64_t completed = 0;  ///< terminal outcomes delivered
    std::int64_t shed = 0;       ///< rejected with ServeStatus::overloaded
    std::int64_t deadline_expired = 0;
    std::int64_t cancelled = 0;
    /// Completed requests per wall-clock second between first accept and
    /// last completion; 0 while the window is empty or zero-length.
    double throughput_rps = 0.0;
    PriorityLaneStats interactive;
    PriorityLaneStats batch;
};

class InferenceService {
public:
    virtual ~InferenceService() = default;

    /// Submits one request under `options`. Never throws for runtime
    /// conditions: overload, shutdown, expiry, cancellation and envelope
    /// errors all arrive as ServeStatus on the result channel.
    virtual RequestTicket submit(const std::string& task, Tensor image,
                                 SubmitOptions options) = 0;

    /// Convenience: submit with future delivery and wait for the
    /// outcome. `options.on_result` must be empty.
    Outcome<InferenceResult> run(const std::string& task, Tensor image,
                                 SubmitOptions options = {});

    /// Blocks until every accepted request has a delivered (or
    /// concurrently delivering) outcome.
    virtual void drain() = 0;

    /// Drains in-flight work, then stops serving. Idempotent.
    virtual void stop() = 0;

    virtual ServiceStats service_stats() const = 0;

    // --- Deprecated throwing shims (pre-InferenceService API) ---------
    // Thin wrappers over submit() that translate failure statuses back
    // into the old exceptions: overloaded -> overload_error, everything
    // else -> check_error. Kept so existing callers compile; new code
    // should branch on ServeStatus instead.

    /// Deprecated: future resolves with the result or the mapped
    /// exception; rejections detected at submission rethrow here.
    std::future<InferenceResult> submit_async(const std::string& task,
                                              Tensor image);

    /// Deprecated: submit and wait, throwing on any non-ok status.
    InferenceResult submit(const std::string& task, Tensor image);

protected:
    /// Delivers an immediate rejection on the envelope's channel and
    /// returns the (already-completed) ticket. Shared by every backend's
    /// front door.
    static RequestTicket reject(SubmitOptions& options, ServeStatus status,
                                std::string message);

    /// The envelope rules every backend's front door enforces (task
    /// named, image matches `input_shape`, deadline non-negative):
    /// returns the invalid_request message, or nullopt when valid. One
    /// definition so a lone server and a pool can never drift on what
    /// they accept.
    static std::optional<std::string> envelope_error(
        const std::string& task, const Tensor& image,
        const Shape& input_shape, const SubmitOptions& options);
};

}  // namespace mime::serve
