#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace mime::serve {

namespace {

/// Exponential variate with the given mean.
double exponential(Rng& rng, double mean) {
    // uniform() is in [0, 1); flip to (0, 1] so log() stays finite.
    return -mean * std::log(1.0 - rng.uniform());
}

/// Unnormalized Zipf(s) CDF over ranks 1..task_count, built once per
/// arrival stream. The prefix sums accumulate in the same order the old
/// per-event scan did, so draws against it are bit-identical for
/// existing seeds.
std::vector<double> zipf_cdf(std::int64_t task_count, double s) {
    std::vector<double> cdf;
    cdf.reserve(static_cast<std::size_t>(task_count));
    double cumulative = 0.0;
    for (std::int64_t k = 1; k <= task_count; ++k) {
        cumulative += 1.0 / std::pow(static_cast<double>(k), s);
        cdf.push_back(cumulative);
    }
    return cdf;
}

/// Samples a task index from Zipf(s) over [0, cdf.size()) by inverting
/// the precomputed CDF. cdf.back() is the normalization, and the first
/// entry >= u is exactly the rank the old linear scan stopped at.
std::int64_t zipf_sample(Rng& rng, const std::vector<double>& cdf) {
    const double u = rng.uniform() * cdf.back();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end()) {
        return static_cast<std::int64_t>(cdf.size()) - 1;
    }
    return static_cast<std::int64_t>(it - cdf.begin());
}

}  // namespace

const char* to_string(ArrivalPattern pattern) {
    switch (pattern) {
        case ArrivalPattern::uniform:
            return "uniform";
        case ArrivalPattern::skewed:
            return "skewed";
        case ArrivalPattern::bursty:
            return "bursty";
    }
    return "unknown";
}

std::vector<ArrivalEvent> generate_arrivals(const LoadSpec& spec) {
    MIME_REQUIRE(spec.task_count > 0, "need at least one task");
    MIME_REQUIRE(spec.request_count > 0, "need at least one request");
    MIME_REQUIRE(spec.mean_interarrival_us > 0.0,
                 "mean_interarrival_us must be positive");
    MIME_REQUIRE(spec.interactive_fraction >= 0.0 &&
                     spec.interactive_fraction <= 1.0,
                 "interactive_fraction must be in [0, 1]");

    Rng rng(spec.seed);
    // Priorities draw from their own stream so tagging a mix does not
    // perturb the task/offset sequence of an existing seed.
    Rng priority_rng(spec.seed ^ 0x9e37'79b9'7f4a'7c15ULL);
    const auto draw_priority = [&priority_rng, &spec] {
        if (spec.interactive_fraction >= 1.0) {
            return Priority::interactive;
        }
        return priority_rng.uniform() < spec.interactive_fraction
                   ? Priority::interactive
                   : Priority::batch;
    };
    std::vector<ArrivalEvent> events;
    events.reserve(static_cast<std::size_t>(spec.request_count));
    double clock_us = 0.0;

    if (spec.pattern == ArrivalPattern::bursty) {
        MIME_REQUIRE(spec.mean_burst_length >= 1.0,
                     "mean_burst_length must be >= 1");
        MIME_REQUIRE(spec.burst_gap_fraction >= 0.0 &&
                         spec.burst_gap_fraction < 1.0,
                     "burst_gap_fraction must be in [0, 1) so the idle "
                     "gap stays positive");
        // A burst of mean length L followed by an idle gap; the gap mean
        // is scaled so the overall arrival rate still matches
        // mean_interarrival_us.
        const double intra_gap =
            spec.mean_interarrival_us * spec.burst_gap_fraction;
        const double idle_mean =
            spec.mean_burst_length *
            (spec.mean_interarrival_us - intra_gap);
        while (events.size() <
               static_cast<std::size_t>(spec.request_count)) {
            const std::int64_t task =
                static_cast<std::int64_t>(rng.uniform_index(
                    static_cast<std::uint64_t>(spec.task_count)));
            const auto burst_length = static_cast<std::int64_t>(
                std::max(1.0, std::round(exponential(
                                  rng, spec.mean_burst_length))));
            for (std::int64_t i = 0;
                 i < burst_length &&
                 events.size() <
                     static_cast<std::size_t>(spec.request_count);
                 ++i) {
                events.push_back(
                    ArrivalEvent{clock_us, task, draw_priority()});
                clock_us += exponential(rng, intra_gap);
            }
            clock_us += exponential(rng, idle_mean);
        }
        return events;
    }

    const std::vector<double> cdf =
        spec.pattern == ArrivalPattern::skewed
            ? zipf_cdf(spec.task_count, spec.zipf_s)
            : std::vector<double>{};
    for (std::int64_t i = 0; i < spec.request_count; ++i) {
        const std::int64_t task =
            spec.pattern == ArrivalPattern::skewed
                ? zipf_sample(rng, cdf)
                : static_cast<std::int64_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(spec.task_count)));
        events.push_back(ArrivalEvent{clock_us, task, draw_priority()});
        clock_us += exponential(rng, spec.mean_interarrival_us);
    }
    return events;
}

std::vector<std::int64_t> task_histogram(
    const std::vector<ArrivalEvent>& events, std::int64_t task_count) {
    std::vector<std::int64_t> histogram(
        static_cast<std::size_t>(task_count), 0);
    for (const ArrivalEvent& event : events) {
        MIME_REQUIRE(event.task >= 0 && event.task < task_count,
                     "event task out of range");
        ++histogram[static_cast<std::size_t>(event.task)];
    }
    return histogram;
}

}  // namespace mime::serve
