// Request / result / envelope types for the multi-task inference
// serving runtime.
//
// A request carries one image tagged with the child task it belongs to,
// plus the client envelope of the unified InferenceService API: an
// absolute deadline (enforced at batch-forming time — an expired request
// never occupies a forward), a priority class (interactive traffic gets
// batch-forming precedence over batch traffic), a cancellation handle,
// and the delivery channel. Results travel as `Outcome<InferenceResult>`
// — an expected-style value-or-ServeStatus — through either a future or
// a dispatch-side callback; overload, shutdown, expiry and cancellation
// are data on this channel, never exceptions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace mime::serve {

using Clock = std::chrono::steady_clock;

/// Terminal status of a served request. Everything except `ok` is a
/// structured failure delivered on the result channel.
enum class ServeStatus {
    ok,                 ///< result delivered
    overloaded,         ///< shed by admission control (retryable)
    deadline_exceeded,  ///< expired before its batch formed
    cancelled,          ///< RequestTicket::cancel() won before dispatch
    shutdown,           ///< submitted to a stopped service
    /// Malformed envelope (task, shape, options) — or the task proved
    /// unservable at execution time (unknown task, corrupt adaptation,
    /// throwing loader); the message says which.
    invalid_request
};

const char* to_string(ServeStatus status);

/// Scheduling class of a request. `interactive` requests get
/// batch-forming precedence over `batch` in every batching policy.
enum class Priority { interactive, batch };

const char* to_string(Priority priority);

/// Outcome of serving one request.
struct InferenceResult {
    std::int64_t request_id = -1;
    std::string task;
    Tensor logits;                    ///< [num_classes] row for this task
    std::int64_t predicted_class = -1;
    double latency_us = 0.0;          ///< enqueue -> completion
    std::int64_t batch_size = 0;      ///< size of the batch it rode in
};

/// Expected-style result channel: either a value (status `ok`) or a
/// ServeStatus failure with a human-readable message. Accessing value()
/// on a failure is a caller bug (check_error), so clients that branch on
/// ok() / status() never see an exception from the serving runtime.
template <typename T>
class Outcome {
public:
    /// Success.
    Outcome(T value) : value_(std::move(value)) {}

    /// Failure; `status` must not be `ok`.
    Outcome(ServeStatus status, std::string message)
        : status_(status), message_(std::move(message)) {
        MIME_REQUIRE(status != ServeStatus::ok,
                     "a failure Outcome cannot carry ServeStatus::ok");
    }

    bool ok() const noexcept { return status_ == ServeStatus::ok; }
    ServeStatus status() const noexcept { return status_; }
    /// Empty on success; explains the failure otherwise.
    const std::string& message() const noexcept { return message_; }

    const T& value() const& { return require_value(); }
    T& value() & { return require_value(); }
    T&& value() && { return std::move(require_value()); }

private:
    T& require_value() const {
        MIME_REQUIRE(ok(), std::string("Outcome::value() on status ") +
                               to_string(status_) + ": " + message_);
        return const_cast<T&>(*value_);
    }

    ServeStatus status_ = ServeStatus::ok;
    std::optional<T> value_;
    std::string message_;
};

/// Cancellation state shared between a RequestTicket and the request it
/// tracks. A request is claimed by the dispatch side exactly when it is
/// placed into a forward batch (or reaped for deadline expiry), so
/// cancel() and dispatch race through one atomic: whichever transition
/// wins decides whether the request runs.
class RequestControl {
public:
    /// Client side. True when the cancel won: the request will complete
    /// with ServeStatus::cancelled and never run a forward. False when
    /// the dispatch side already claimed it (its real outcome is on the
    /// way) or a previous cancel already won.
    bool cancel() noexcept {
        int expected = kPending;
        return stage_.compare_exchange_strong(expected, kCancelled,
                                              std::memory_order_acq_rel);
    }

    /// Dispatch side: claim the request for a batch (or for deadline
    /// delivery). False when a cancel won first.
    bool try_claim() noexcept {
        int expected = kPending;
        return stage_.compare_exchange_strong(expected, kClaimed,
                                              std::memory_order_acq_rel);
    }

    bool cancelled() const noexcept {
        return stage_.load(std::memory_order_acquire) == kCancelled;
    }

private:
    static constexpr int kPending = 0;
    static constexpr int kClaimed = 1;
    static constexpr int kCancelled = 2;
    std::atomic<int> stage_{kPending};
};

/// One in-flight request. Move-only (owns the delivery side of the
/// caller's channel: the promise for future delivery, or the callback).
struct InferenceRequest {
    std::int64_t id = -1;
    std::string task;
    Tensor image;                     ///< [C, H, W]
    Clock::time_point enqueue_time{};
    /// Absolute expiry; max() = no deadline.
    Clock::time_point deadline = Clock::time_point::max();
    Priority priority = Priority::interactive;
    /// Shared with the caller's RequestTicket; null for requests built
    /// outside the service front door (unit tests).
    std::shared_ptr<RequestControl> control;
    /// Future-delivery channel (unused when on_result is set).
    std::promise<Outcome<InferenceResult>> promise;
    /// Callback-delivery channel, invoked from the dispatch side.
    std::function<void(Outcome<InferenceResult>)> on_result;
    /// Span timeline, present only for traced requests. Written by one
    /// thread at a time: the submitter records admission before the
    /// queue push, the dispatch thread records the rest, and the client
    /// reads via RequestTicket::trace() only after delivery — each
    /// hand-off already synchronizes, so no atomics needed.
    std::shared_ptr<obs::Trace> trace;
    /// When the dispatch thread handed this request to the batcher;
    /// start of the batch_form span (traced requests only).
    Clock::time_point batcher_add_time{};

    /// Delivers the terminal outcome on whichever channel the caller
    /// chose. Callback exceptions are swallowed (callbacks must not
    /// throw; the dispatch thread cannot unwind on their behalf).
    void deliver(Outcome<InferenceResult> outcome);
};

}  // namespace mime::serve
