// Request / result types for the multi-task inference serving runtime.
//
// A request carries one image tagged with the child task it belongs to;
// the result carries the task-restricted logits and the latency measured
// from enqueue to completion. Futures connect the two across threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>

#include "tensor/tensor.h"

namespace mime::serve {

using Clock = std::chrono::steady_clock;

/// Outcome of serving one request.
struct InferenceResult {
    std::int64_t request_id = -1;
    std::string task;
    Tensor logits;                    ///< [num_classes] row for this task
    std::int64_t predicted_class = -1;
    double latency_us = 0.0;          ///< enqueue -> completion
    std::int64_t batch_size = 0;      ///< size of the batch it rode in
};

/// One in-flight request. Move-only (owns the promise side of the
/// caller's future).
struct InferenceRequest {
    std::int64_t id = -1;
    std::string task;
    Tensor image;                     ///< [C, H, W]
    Clock::time_point enqueue_time{};
    std::promise<InferenceResult> promise;
};

}  // namespace mime::serve
