// Replica autoscaling policy for the server pool.
//
// ReplicaAutoscaler is the pure decision core: each tick it sees the
// pool's predicted outstanding work per active replica (the cost
// model's microseconds, summed over loads), the admission-shed delta
// since the last tick, and the current/active bounds, and answers
// grow (+1), hold (0) or shrink (-1). Hysteresis lives here — a grow
// needs `grow_patience` consecutive over-threshold ticks, a shrink
// `shrink_patience` under-threshold ticks, and the grow/shrink
// thresholds are separated so the pool never oscillates around one
// line. Keeping the policy free of threads and clocks makes the
// grow/shrink behavior directly unit-testable; ServerPool drives it
// from a background thread and applies the deltas (see
// server_pool.h for how replicas are provisioned and activated).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstddef>

namespace mime::serve {

struct AutoscalerConfig {
    bool enabled = false;
    /// Active-replica bounds. PoolConfig::replica_count is the starting
    /// point, clamped into [min_replicas, max_replicas].
    std::size_t min_replicas = 1;
    std::size_t max_replicas = 4;
    /// Decision cadence of the pool's autoscaler thread.
    std::chrono::milliseconds interval{20};
    /// Grow when predicted outstanding work per active replica exceeds
    /// this (microseconds) — or when admission shed anything since the
    /// last tick — for grow_patience consecutive ticks.
    double grow_backlog_us = 4000.0;
    /// Shrink when it stays below this for shrink_patience ticks. Keep
    /// well under grow_backlog_us: the gap is the hysteresis band.
    double shrink_backlog_us = 500.0;
    int grow_patience = 2;
    int shrink_patience = 5;
    /// Pool-wide budget for replica activation bytes (plan buffers +
    /// workspace per replica, the PR 4 price of a replica); a grow that
    /// would exceed it is skipped. 0 = unlimited.
    std::int64_t memory_budget_bytes = 0;
};

class ReplicaAutoscaler {
public:
    explicit ReplicaAutoscaler(AutoscalerConfig config);

    const AutoscalerConfig& config() const noexcept { return config_; }

    /// One decision tick. `backlog_per_replica_us` is predicted
    /// outstanding microseconds over active replicas, `shed_delta` the
    /// admission sheds since the previous tick, `active` the current
    /// active count, and `replica_cost_bytes` the price of activating
    /// one more replica (0 = unknown/free). Returns +1 / 0 / -1;
    /// the caller applies the change and the bounds here already
    /// guarantee min_replicas <= active + result <= max_replicas.
    int step(double backlog_per_replica_us, std::int64_t shed_delta,
             std::size_t active, std::int64_t replica_cost_bytes = 0);

    /// Grows skipped because activation would overrun the memory budget.
    std::int64_t budget_blocked() const noexcept { return budget_blocked_; }

private:
    AutoscalerConfig config_;
    int grow_streak_ = 0;
    int shrink_streak_ = 0;
    std::int64_t budget_blocked_ = 0;
};

}  // namespace mime::serve
