// Multi-task inference server over one MimeNetwork.
//
// Owns the network for its lifetime and serves per-task requests from
// many client threads: requests flow through a bounded RequestQueue into
// a TaskBatcher, a dedicated dispatch thread forms same-task batches,
// installs the task's threshold set + head from the ThresholdCache (a
// swap touches only T_child bytes — never W_parent), and runs one
// forward per batch. Kernel-level parallelism inside the forward is
// driven by a common/thread_pool the server owns.
//
// submit_async() returns a future; submit() blocks for the result.
// Per-request latency plus aggregate throughput, swap, cache and
// per-task sparsity statistics are collected continuously and printable
// as a common/table.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/mime_network.h"
#include "serve/batcher.h"
#include "serve/latency_stats.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/threshold_cache.h"
#include "tensor/shape.h"
#include "tensor/workspace.h"

namespace mime {
class Table;
}

namespace mime::serve {

struct ServerConfig {
    BatcherConfig batcher{};
    /// Resident adaptations (LRU); serving more tasks than this evicts.
    std::size_t cache_capacity = 8;
    /// Kernel worker threads for the forward pass; 0 = hardware.
    std::size_t worker_threads = 0;
    /// Bounded request queue depth (backpressure under overload).
    std::size_t queue_capacity = 4096;
    /// Models an attached accelerator with a fixed per-batch service
    /// time: each batch blocks this long after the (functional) CPU
    /// forward. Lets pool benches expose dispatch-level parallelism on
    /// hosts whose cores the tiny forward would otherwise saturate —
    /// the hw-simulator-backed cost-model hook named in ROADMAP.md.
    /// Zero (the default) disables it.
    std::chrono::microseconds simulated_service_time{0};
    /// Invoked after each batch fully completes (results or error
    /// delivered), with the number of requests in it. Runs on the
    /// dispatch thread; a ServerPool uses it for admission-slot release
    /// and load tracking.
    std::function<void(std::size_t)> on_requests_complete;
    /// Execute batches with the planned, allocation-free executor:
    /// requests stack into the plan's preallocated input slab and the
    /// forward runs against plan buffers plus this server's Workspace
    /// (zero heap allocations after the first batch of each size). Off
    /// falls back to the legacy allocate-per-call path — kept so
    /// benches can A/B the two.
    bool planned_executor = true;
};

/// Per-task aggregate serving statistics.
struct TaskServeStats {
    std::int64_t requests = 0;
    std::int64_t batches = 0;
    double mean_sparsity = 0.0;  ///< mean over sites, averaged per batch
};

/// Aggregate serving statistics (a consistent snapshot).
struct ServerStats {
    std::int64_t requests_completed = 0;
    std::int64_t batches_run = 0;
    std::int64_t threshold_swaps = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t cache_evictions = 0;
    double mean_batch_size = 0.0;
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double max_latency_us = 0.0;
    /// Completed requests per wall-clock second between the first
    /// enqueue and the last completion.
    double throughput_rps = 0.0;
    /// Steady-state scratch high-water mark of this replica's Workspace
    /// (0 when the legacy executor is configured).
    std::int64_t workspace_peak_bytes = 0;
    /// Bytes of plan-owned activation buffers across every batch size
    /// planned so far (0 for the legacy executor).
    std::int64_t plan_buffer_bytes = 0;
    std::map<std::string, TaskServeStats> per_task;

    /// Renders the aggregate + per-task rows via common/table.
    std::string to_table_string() const;
};

class InferenceServer {
public:
    /// The network must outlive the server. The loader hydrates cache
    /// misses (see core::AdaptationStore::task_loader()). The server
    /// puts the network into eval + threshold mode and attaches its own
    /// thread pool.
    InferenceServer(core::MimeNetwork& network, ThresholdCache::Loader loader,
                    ServerConfig config = {});
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    const ServerConfig& config() const noexcept { return config_; }

    /// Enqueues one request; the future resolves when its batch has run.
    /// Throws once the server is stopped.
    std::future<InferenceResult> submit_async(const std::string& task,
                                              Tensor image);

    /// Convenience: submit and wait.
    InferenceResult submit(const std::string& task, Tensor image);

    /// Blocks until every request submitted so far has completed.
    void drain();

    /// Drains, then stops the dispatch thread. Idempotent; the
    /// destructor calls it.
    void stop();

    ServerStats stats() const;

    /// Snapshot of the latency reservoir; pool-wide percentiles merge
    /// these across replicas (see LatencyRecorder::merge).
    LatencyRecorder latency_recorder() const;

private:
    void dispatch_loop();
    void run_batch(std::vector<InferenceRequest> batch);
    void install_task(const std::string& task);

    core::MimeNetwork* network_;
    ServerConfig config_;
    Shape input_shape_;  ///< per-sample [C, H, W] the network accepts
    Workspace workspace_;  ///< planned-executor scratch; dispatch-thread only
    ThreadPool pool_;
    RequestQueue queue_;
    TaskBatcher batcher_;      ///< dispatch-thread only
    ThresholdCache cache_;     ///< dispatch-thread only
    std::thread dispatcher_;

    std::string active_task_;          ///< dispatch-thread only
    std::int64_t active_classes_ = 0;  ///< dispatch-thread only
    std::int64_t threshold_swaps_ = 0; ///< dispatch-thread only

    mutable std::mutex stats_mutex_;
    std::int64_t next_request_id_ = 0;  ///< guarded by stats_mutex_
    std::int64_t submitted_ = 0;        ///< guarded by stats_mutex_
    std::int64_t completed_ = 0;        ///< guarded by stats_mutex_
    std::int64_t batches_run_ = 0;      ///< guarded by stats_mutex_
    // Snapshots of the dispatch-thread-only counters above, refreshed
    // after every batch so stats() never races the dispatch thread.
    std::int64_t swaps_snapshot_ = 0;        ///< guarded by stats_mutex_
    std::int64_t workspace_peak_snapshot_ = 0;  ///< guarded by stats_mutex_
    std::int64_t plan_buffers_snapshot_ = 0;    ///< guarded by stats_mutex_
    std::int64_t cache_hits_snapshot_ = 0;   ///< guarded by stats_mutex_
    std::int64_t cache_misses_snapshot_ = 0; ///< guarded by stats_mutex_
    std::int64_t cache_evictions_snapshot_ = 0;  ///< guarded by stats_mutex_
    LatencyRecorder latency_;           ///< guarded by stats_mutex_
    std::map<std::string, TaskServeStats> per_task_;  ///< stats_mutex_
    Clock::time_point first_enqueue_{};               ///< stats_mutex_
    Clock::time_point last_completion_{};             ///< stats_mutex_
    std::condition_variable drained_;
    bool stopped_ = false;  ///< guarded by stats_mutex_
};

}  // namespace mime::serve
