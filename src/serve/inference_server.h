// Multi-task inference server over one MimeNetwork.
//
// Owns the network for its lifetime and serves per-task requests from
// many client threads through the unified InferenceService API: requests
// flow through a bounded RequestQueue into a TaskBatcher, a dedicated
// dispatch thread forms same-task batches (interactive lane ahead of
// batch, expired deadlines and won cancels reaped before any forward),
// installs the task's threshold set + head from the ThresholdCache (a
// swap touches only T_child bytes — never W_parent), and runs one
// forward per batch. Kernel-level parallelism inside the forward is
// driven by a common/thread_pool the server owns.
//
// submit() returns a cancellable RequestTicket; outcomes arrive as
// Outcome<InferenceResult> through the ticket's future or a
// dispatch-side callback. Per-request latency plus aggregate throughput,
// swap, cache, per-priority and per-task sparsity statistics are
// collected continuously and printable as a common/table.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/mime_network.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/cost_model.h"
#include "serve/latency_stats.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "serve/service_state.h"
#include "serve/threshold_cache.h"
#include "tensor/shape.h"
#include "tensor/workspace.h"

namespace mime {
class Table;
}

namespace mime::serve {

struct ServerConfig {
    BatcherConfig batcher{};
    /// Resident adaptations (LRU); serving more tasks than this evicts.
    std::size_t cache_capacity = 8;
    /// Kernel worker threads for the forward pass; 0 = hardware.
    std::size_t worker_threads = 0;
    /// Bounded request queue depth (backpressure under overload).
    std::size_t queue_capacity = 4096;
    /// Models an attached accelerator with a fixed per-batch service
    /// time: each batch blocks this long after the (functional) CPU
    /// forward. Lets pool benches expose dispatch-level parallelism on
    /// hosts whose cores the tiny forward would otherwise saturate —
    /// the hw-simulator-backed cost-model hook named in ROADMAP.md.
    /// Zero (the default) disables it.
    std::chrono::microseconds simulated_service_time{0};
    /// Invoked after each accepted request reaches a terminal outcome —
    /// batch completions (with the batch size), reaped deadline/cancel
    /// failures, and batch errors. Runs on the dispatch thread; a
    /// ServerPool uses it for admission-slot release and load tracking.
    std::function<void(std::size_t)> on_requests_complete;
    /// Execute batches with the planned, allocation-free executor:
    /// requests stack into the plan's preallocated input slab and the
    /// forward runs against plan buffers plus this server's Workspace
    /// (zero heap allocations after the first batch of each size). Off
    /// falls back to the legacy allocate-per-call path — kept so
    /// benches can A/B the two.
    bool planned_executor = true;
    /// Let planned conv/linear steps skip structurally pruned rows via
    /// row-compacted GEMM (bit-identical outputs; only effective with
    /// the planned executor and tasks whose installed thresholds prune
    /// neurons with core::kPrunedThreshold). Off forces dense — kept so
    /// benches can A/B sparse against dense planned execution.
    bool sparse_execution = true;
    /// Density above which sparse-capable layers run dense anyway.
    double sparse_density_cutoff = nn::kDefaultSparseDensityCutoff;
    /// Execute planned conv/linear steps through the int8 quantized
    /// kernels (per-output-channel weight scales snapshotted at plan
    /// build; per-sample dynamic activation scales; float masters and
    /// threshold machinery untouched). Composes with sparse_execution —
    /// the same live sets drive the row-compacted int8 GEMM. Off (the
    /// default) keeps full-precision execution; benches A/B the two.
    bool quantized_execution = false;
    /// Fraction of requests that get a span Trace (0 = only requests
    /// with SubmitOptions::trace set, 1 = all). Deterministic rate
    /// sampling (see obs::TraceSampler); untraced requests pay one
    /// branch.
    double trace_sample_rate = 0.0;
    /// Record per-layer wall time / skipped-MAC / workspace profiles in
    /// ForwardPlan::run (see ServerStats::layer_profiles). One
    /// steady_clock read per plan step per batch when on; a single
    /// branch per step when off.
    bool profile_layers = false;
    /// Optional shared service-time predictor (see serve/cost_model.h).
    /// When set, every batch's measured service time calibrates the
    /// model and the task's observed site sparsities feed its simulated
    /// path; the serve.cost_* metrics go live. A pool hands the same
    /// instance to every replica.
    std::shared_ptr<CostModel> cost_model;
    /// With a cost model attached, also install its batcher hook:
    /// requests whose predicted cost cannot meet their deadline are
    /// shed at batch-forming time, and batches only grow while
    /// predicted cost meets every member's deadline. Off keeps batching
    /// heuristic (calibration still runs) — benches A/B this.
    bool cost_admission = true;
};

/// Per-task aggregate serving statistics.
struct TaskServeStats {
    std::int64_t requests = 0;
    std::int64_t batches = 0;
    double mean_sparsity = 0.0;  ///< mean over sites, averaged per batch
};

/// Aggregate serving statistics (a consistent snapshot).
struct ServerStats {
    /// Terminal outcomes delivered (results + structured failures).
    std::int64_t requests_completed = 0;
    /// Requests served with a result (ServeStatus::ok).
    std::int64_t requests_served = 0;
    std::int64_t deadline_expired = 0;
    std::int64_t cancelled = 0;
    std::int64_t batches_run = 0;
    std::int64_t threshold_swaps = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t cache_evictions = 0;
    double mean_batch_size = 0.0;
    double mean_latency_us = 0.0;
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    double max_latency_us = 0.0;
    /// Completed requests per wall-clock second between the first
    /// enqueue and the last completion (0 for a zero-length window).
    double throughput_rps = 0.0;
    /// Per-priority completion counts and latency quantiles.
    PriorityLaneStats interactive;
    PriorityLaneStats batch;
    /// Steady-state scratch high-water mark of this replica's Workspace
    /// (0 when the legacy executor is configured).
    std::int64_t workspace_peak_bytes = 0;
    /// Bytes of plan-owned activation buffers across every batch size
    /// planned so far (0 for the legacy executor).
    std::int64_t plan_buffer_bytes = 0;
    /// Planned conv/linear steps that ran the row-compacted sparse path.
    std::int64_t sparse_path_hits = 0;
    /// MACs those sparse hits skipped versus dense execution.
    std::int64_t skipped_macs = 0;
    /// Dense-equivalent MACs of every planned conv/linear step run.
    std::int64_t dense_equivalent_macs = 0;
    /// skipped_macs / dense_equivalent_macs (0 when nothing ran).
    double skipped_mac_fraction = 0.0;
    /// Planned conv/linear steps that ran the int8 quantized kernels.
    std::int64_t quantized_path_hits = 0;
    /// Worst per-channel relative error of the int8 weight snapshots
    /// across this replica's plans (0 without quantized execution).
    double quantized_weight_max_rel_error = 0.0;
    /// Requests shed at batch-forming time because predicted cost could
    /// not meet their deadline (counted inside deadline_expired too —
    /// infeasibility is a deadline failure, just an early one).
    std::int64_t cost_infeasible_shed = 0;
    /// Cost model's prediction for the last executed batch (us) and its
    /// running mean |predicted-observed|/observed; 0 without a model.
    double cost_predicted_us = 0.0;
    double cost_prediction_error = 0.0;
    std::map<std::string, TaskServeStats> per_task;
    /// Per-plan-step cost profiles, populated only when
    /// ServerConfig::profile_layers is on (empty otherwise).
    std::vector<obs::LayerProfile> layer_profiles;

    /// Renders the aggregate + per-task rows via common/table.
    std::string to_table_string() const;
};

class InferenceServer : public InferenceService {
public:
    /// The network must outlive the server. The loader hydrates cache
    /// misses (see core::AdaptationStore::task_loader()). The server
    /// puts the network into eval + threshold mode and attaches its own
    /// thread pool.
    InferenceServer(core::MimeNetwork& network, ThresholdCache::Loader loader,
                    ServerConfig config = {});
    ~InferenceServer() override;

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    const ServerConfig& config() const noexcept { return config_; }

    // Keep the deprecated throwing shims visible next to the override.
    using InferenceService::submit;

    /// Unified submission surface (see InferenceService::submit): never
    /// throws for runtime conditions — shutdown, deadline expiry,
    /// cancellation and envelope errors arrive as ServeStatus.
    RequestTicket submit(const std::string& task, Tensor image,
                         SubmitOptions options) override;

    /// Blocks until every accepted request has completed.
    void drain() override;

    /// Drains, then stops the dispatch thread. Idempotent; the
    /// destructor calls it.
    void stop() override;

    ServiceStats service_stats() const override;
    /// Compatibility view over the metrics registry (plus the
    /// reservoir-backed latency quantiles and per-task table, which
    /// live outside it).
    ServerStats stats() const MIME_EXCLUDES(stats_mutex_);

    /// The underlying runtime metrics ("serve.*" counters / gauges /
    /// histograms); snapshot() + obs/export.h turn this into JSON or
    /// Prometheus text.
    const obs::MetricsRegistry& metrics() const noexcept {
        return registry_;
    }

    /// Snapshot of the latency reservoir; pool-wide percentiles merge
    /// these across replicas (see LatencyRecorder::merge).
    LatencyRecorder latency_recorder() const MIME_EXCLUDES(stats_mutex_);
    /// Per-priority reservoir (ok-served requests of that class only).
    LatencyRecorder latency_recorder(Priority lane) const
        MIME_EXCLUDES(stats_mutex_);

    /// The per-sample [C, H, W] a network's serving front door accepts
    /// (shared by InferenceServer and ServerPool construction).
    static Shape serving_input_shape(const core::MimeNetwork& network);

private:
    friend class ServerPool;

    /// Shared submission path. `accepted` (optional) reports whether the
    /// request was registered and enqueued — rejected-at-door
    /// submissions deliver their failure outcome without touching the
    /// drain/completion accounting; the pool unwinds its own bookkeeping
    /// off this flag. `envelope_checked` skips re-validation for callers
    /// (the pool) that already ran envelope_error on this request; such
    /// callers also own the sampling decision and pass their `trace`
    /// (or null) plus the time their front door was entered, so the
    /// admission span covers pool admission + routing. Local callers
    /// leave `trace` null and this replica's sampler decides.
    RequestTicket submit_impl(const std::string& task, Tensor image,
                              SubmitOptions options, bool* accepted,
                              bool envelope_checked = false,
                              std::shared_ptr<obs::Trace> trace = nullptr,
                              Clock::time_point admission_start = {});

    void dispatch_loop();
    void run_batch(std::vector<InferenceRequest> batch);
    /// Delivers a structured failure for a reaped request and records it
    /// in the completion accounting.
    void fail_request(InferenceRequest request, ServeStatus status,
                      std::string message);
    /// Delivers invalid_request to a whole batch after an execution
    /// failure (corrupt adaptation, throwing loader).
    void fail_batch(std::vector<InferenceRequest> batch,
                    Clock::time_point started, const std::string& message);
    void install_task(const std::string& task);

    core::MimeNetwork* network_;
    ServerConfig config_;
    Shape input_shape_;  ///< per-sample [C, H, W] the network accepts
    Workspace workspace_;  ///< planned-executor scratch; dispatch-thread only
    ThreadPool pool_;
    RequestQueue queue_;
    TaskBatcher batcher_;      ///< dispatch-thread only
    ThresholdCache cache_;     ///< dispatch-thread only
    std::thread dispatcher_;

    std::string active_task_;          ///< dispatch-thread only
    std::int64_t active_classes_ = 0;  ///< dispatch-thread only
    std::int64_t threshold_swaps_ = 0; ///< dispatch-thread only

    /// Submission ids, drain condvar, idempotent stop, throughput window
    /// — the bookkeeping shared with ServerPool via ServiceState.
    ServiceState state_;

    /// Runtime metrics. Handles below are registered once in the
    /// constructor; the hot path (dispatch thread, submitters) touches
    /// them with relaxed atomic adds only. ServerStats is assembled
    /// from these — what used to be a dozen mutex-guarded counters and
    /// their "snapshot" shadows.
    obs::MetricsRegistry registry_;
    obs::TraceSampler sampler_;
    obs::Counter& served_;            ///< ok results delivered
    obs::Counter& failed_;            ///< batch-error outcomes
    obs::Counter& deadline_expired_;
    obs::Counter& cancelled_;
    obs::Counter& batches_run_;
    obs::Counter& lane_completed_interactive_;
    obs::Counter& lane_completed_batch_;
    obs::Counter& cost_infeasible_shed_;
    // Gauges refreshed by the dispatch thread after every batch from
    // its thread-local counters (cache, swaps, plan accounting).
    obs::Gauge& threshold_swaps_gauge_;
    obs::Gauge& workspace_peak_gauge_;
    obs::Gauge& plan_buffers_gauge_;
    obs::Gauge& cache_hits_gauge_;
    obs::Gauge& cache_misses_gauge_;
    obs::Gauge& cache_evictions_gauge_;
    obs::Gauge& sparse_hits_gauge_;
    obs::Gauge& skipped_macs_gauge_;
    obs::Gauge& dense_macs_gauge_;
    obs::Gauge& quantized_hits_gauge_;
    obs::Gauge& quantized_error_gauge_;
    obs::Gauge& cost_predicted_gauge_;
    obs::Gauge& cost_error_gauge_;
    obs::Histogram& batch_size_hist_;
    obs::Histogram& latency_hist_;

    mutable Mutex stats_mutex_;
    LatencyRecorder latency_ MIME_GUARDED_BY(stats_mutex_);
    LatencyRecorder lane_latency_interactive_ MIME_GUARDED_BY(stats_mutex_);
    LatencyRecorder lane_latency_batch_ MIME_GUARDED_BY(stats_mutex_);
    std::map<std::string, TaskServeStats> per_task_
        MIME_GUARDED_BY(stats_mutex_);
    /// Per-layer profiles, refreshed after each batch when
    /// config_.profile_layers.
    std::vector<obs::LayerProfile> profiles_snapshot_
        MIME_GUARDED_BY(stats_mutex_);
};

}  // namespace mime::serve
