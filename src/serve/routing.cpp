#include "serve/routing.h"

#include "common/check.h"

namespace mime::serve {

const char* to_string(RoutingPolicy policy) {
    switch (policy) {
        case RoutingPolicy::round_robin:
            return "round_robin";
        case RoutingPolicy::task_affinity:
            return "task_affinity";
        case RoutingPolicy::least_loaded:
            return "least_loaded";
    }
    return "unknown";
}

std::uint64_t task_hash(const std::string& task) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    for (const char c : task) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;  // FNV-1a prime
    }
    return h;
}

Router::Router(RoutingPolicy policy, std::size_t replica_count)
    : policy_(policy), replica_count_(replica_count) {
    MIME_REQUIRE(replica_count >= 1, "router needs at least one replica");
}

void Router::set_replica_count(std::size_t replica_count) {
    MIME_REQUIRE(replica_count >= 1, "router needs at least one replica");
    replica_count_ = replica_count;
    next_ %= replica_count_;
}

std::size_t Router::route(const std::string& task,
                          const std::vector<double>& loads) {
    MIME_REQUIRE(loads.size() == replica_count_,
                 "loads must have one entry per replica");
    switch (policy_) {
        case RoutingPolicy::round_robin: {
            const std::size_t replica = next_;
            next_ = (next_ + 1) % replica_count_;
            return replica;
        }
        case RoutingPolicy::task_affinity:
            return static_cast<std::size_t>(
                task_hash(task) %
                static_cast<std::uint64_t>(replica_count_));
        case RoutingPolicy::least_loaded: {
            double min_load = loads[0];
            for (std::size_t i = 1; i < replica_count_; ++i) {
                if (loads[i] < min_load) {
                    min_load = loads[i];
                }
            }
            // Rotate among the minima: start the scan at the cursor so
            // exact ties (idle pool, equal predicted cost) spread over
            // the replicas instead of pinning replica 0.
            for (std::size_t offset = 0; offset < replica_count_;
                 ++offset) {
                const std::size_t i = (next_ + offset) % replica_count_;
                if (loads[i] == min_load) {
                    next_ = (i + 1) % replica_count_;
                    return i;
                }
            }
            return 0;  // unreachable: min_load came from loads
        }
    }
    return 0;
}

}  // namespace mime::serve
