#include "serve/threshold_cache.h"

#include <utility>

#include "common/check.h"

namespace mime::serve {

ThresholdCache::ThresholdCache(std::size_t capacity, Loader loader)
    : capacity_(capacity), loader_(std::move(loader)) {
    MIME_REQUIRE(capacity_ > 0, "cache capacity must be positive");
    MIME_REQUIRE(static_cast<bool>(loader_), "cache needs a loader");
}

const core::TaskAdaptation& ThresholdCache::get(const std::string& task) {
    auto found = index_.find(task);
    if (found != index_.end()) {
        ++hits_;
        entries_.splice(entries_.begin(), entries_, found->second);
        return entries_.front().adaptation;
    }

    ++misses_;
    // Hydrate before evicting so a throwing loader leaves the cache
    // untouched.
    core::TaskAdaptation adaptation = loader_(task);
    // A loop, not an == check: an overshoot (capacity shrunk below the
    // resident count) must drain back under the bound instead of
    // disabling eviction forever.
    while (entries_.size() >= capacity_) {
        index_.erase(entries_.back().task);
        entries_.pop_back();
        ++evictions_;
    }
    entries_.push_front(Entry{task, std::move(adaptation)});
    index_[task] = entries_.begin();
    return entries_.front().adaptation;
}

void ThresholdCache::set_capacity(std::size_t capacity) {
    MIME_REQUIRE(capacity > 0, "cache capacity must be positive");
    capacity_ = capacity;
}

bool ThresholdCache::contains(const std::string& task) const {
    return index_.count(task) > 0;
}

std::vector<std::string> ThresholdCache::resident_tasks() const {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry& entry : entries_) {
        names.push_back(entry.task);
    }
    return names;
}

std::int64_t ThresholdCache::resident_bytes() const {
    std::int64_t total = 0;
    for (const Entry& entry : entries_) {
        const core::TaskAdaptation& a = entry.adaptation;
        total += a.thresholds.parameter_count() *
                 static_cast<std::int64_t>(sizeof(float));
        total += (a.head_weight.numel() + a.head_bias.numel()) *
                 static_cast<std::int64_t>(sizeof(float));
    }
    return total;
}

}  // namespace mime::serve
