#include "serve/service_state.h"

#include <chrono>

namespace mime::serve {

std::optional<std::int64_t> ServiceState::register_submit(
    Clock::time_point now) {
    MutexLock lock(mutex_);
    if (stopped_) {
        return std::nullopt;
    }
    if (submitted_ == 0) {
        first_enqueue_ = now;
    }
    ++submitted_;
    return next_id_++;
}

void ServiceState::rollback_submit() {
    {
        MutexLock lock(mutex_);
        --submitted_;
    }
    drained_.notify_all();
}

void ServiceState::complete(std::size_t count, Clock::time_point now) {
    {
        MutexLock lock(mutex_);
        completed_ += static_cast<std::int64_t>(count);
        last_completion_ = now;
    }
    drained_.notify_all();
}

void ServiceState::drain() {
    MutexLock lock(mutex_);
    while (completed_ != submitted_) {
        drained_.wait(lock);
    }
}

bool ServiceState::begin_stop() {
    MutexLock lock(mutex_);
    if (stopped_) {
        return false;
    }
    stopped_ = true;
    return true;
}

bool ServiceState::stopped() const {
    MutexLock lock(mutex_);
    return stopped_;
}

std::int64_t ServiceState::submitted() const {
    MutexLock lock(mutex_);
    return submitted_;
}

std::int64_t ServiceState::completed() const {
    MutexLock lock(mutex_);
    return completed_;
}

double ServiceState::throughput_rps() const {
    MutexLock lock(mutex_);
    if (completed_ <= 0) {
        return 0.0;
    }
    const double elapsed_s =
        std::chrono::duration<double>(last_completion_ - first_enqueue_)
            .count();
    // Zero-length window (single instantly-completed request): report 0
    // rather than inf/NaN.
    return elapsed_s > 0.0 ? static_cast<double>(completed_) / elapsed_s
                           : 0.0;
}

}  // namespace mime::serve
