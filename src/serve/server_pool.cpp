#include "serve/server_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "serve/latency_stats.h"

namespace mime::serve {

void PoolStats::accumulate(const ServerStats& server) {
    requests_served += server.requests_served;
    deadline_expired += server.deadline_expired;
    cancelled += server.cancelled;
    batches_run += server.batches_run;
    threshold_swaps += server.threshold_swaps;
    cache_hits += server.cache_hits;
    cache_misses += server.cache_misses;
    cache_evictions += server.cache_evictions;
    workspace_peak_bytes += server.workspace_peak_bytes;
    plan_buffer_bytes += server.plan_buffer_bytes;
    sparse_path_hits += server.sparse_path_hits;
    skipped_macs += server.skipped_macs;
    dense_equivalent_macs += server.dense_equivalent_macs;
    quantized_path_hits += server.quantized_path_hits;
    quantized_weight_max_rel_error = std::max(
        quantized_weight_max_rel_error, server.quantized_weight_max_rel_error);
    cost_infeasible_shed += server.cost_infeasible_shed;
    interactive.completed += server.interactive.completed;
    batch.completed += server.batch.completed;
}

std::string PoolStats::to_table_string() const {
    Table aggregate({"metric", "value"});
    aggregate.add_row({"replicas (active/provisioned)",
                       std::to_string(active_replicas) + "/" +
                           std::to_string(replicas.size())});
    aggregate.add_row({"submitted", std::to_string(requests_submitted)});
    aggregate.add_row({"completed", std::to_string(requests_completed)});
    aggregate.add_row({"served ok", std::to_string(requests_served)});
    aggregate.add_row({"shed", std::to_string(requests_shed)});
    aggregate.add_row({"deadline expired", std::to_string(deadline_expired)});
    aggregate.add_row({"cancelled", std::to_string(cancelled)});
    aggregate.add_row({"peak pending", std::to_string(peak_pending)});
    aggregate.add_row({"batches", std::to_string(batches_run)});
    aggregate.add_row({"threshold swaps", std::to_string(threshold_swaps)});
    aggregate.add_row({"cache hit/miss/evict",
                       std::to_string(cache_hits) + "/" +
                           std::to_string(cache_misses) + "/" +
                           std::to_string(cache_evictions)});
    aggregate.add_row({"cache hit rate", Table::num(cache_hit_rate, 3)});
    aggregate.add_row(
        {"workspace peak (bytes)", std::to_string(workspace_peak_bytes)});
    aggregate.add_row(
        {"plan buffers (bytes)", std::to_string(plan_buffer_bytes)});
    aggregate.add_row(
        {"sparse path hits", std::to_string(sparse_path_hits)});
    aggregate.add_row(
        {"skipped MAC fraction", Table::num(skipped_mac_fraction, 4)});
    aggregate.add_row(
        {"quantized path hits", std::to_string(quantized_path_hits)});
    aggregate.add_row({"quantized weight max rel err",
                       Table::num(quantized_weight_max_rel_error, 4)});
    aggregate.add_row(
        {"cost-infeasible shed", std::to_string(cost_infeasible_shed)});
    aggregate.add_row(
        {"cost prediction error", Table::num(cost_prediction_error, 4)});
    aggregate.add_row(
        {"cost calibration scale", Table::num(cost_calibration_scale, 3)});
    aggregate.add_row({"autoscale grow/shrink/blocked",
                       std::to_string(autoscale_grows) + "/" +
                           std::to_string(autoscale_shrinks) + "/" +
                           std::to_string(autoscale_budget_blocked)});
    aggregate.add_row({"predicted outstanding (us)",
                       Table::num(predicted_outstanding_us, 1)});
    aggregate.add_row({"throughput (req/s)", Table::num(throughput_rps, 1)});
    aggregate.add_row({"latency p50 (us)", Table::num(p50_latency_us, 1)});
    aggregate.add_row({"latency p95 (us)", Table::num(p95_latency_us, 1)});
    aggregate.add_row({"latency p99 (us)", Table::num(p99_latency_us, 1)});
    aggregate.add_row({"latency p99.9 (us)", Table::num(p999_latency_us, 1)});
    aggregate.add_row({"interactive done/p95 (us)",
                       std::to_string(interactive.completed) + " / " +
                           Table::num(interactive.p95_latency_us, 1)});
    aggregate.add_row({"batch done/p95 (us)",
                       std::to_string(batch.completed) + " / " +
                           Table::num(batch.p95_latency_us, 1)});

    Table per_replica({"replica", "routed", "completed", "batches", "swaps",
                       "cache h/m/e", "ws peak (bytes)"});
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        const ReplicaStats& r = replicas[i];
        per_replica.add_row(
            {std::to_string(i), std::to_string(r.routed),
             std::to_string(r.server.requests_completed),
             std::to_string(r.server.batches_run),
             std::to_string(r.server.threshold_swaps),
             std::to_string(r.server.cache_hits) + "/" +
                 std::to_string(r.server.cache_misses) + "/" +
                 std::to_string(r.server.cache_evictions),
             std::to_string(r.server.workspace_peak_bytes)});
    }
    return aggregate.to_string() + "\n" + per_replica.to_string();
}

ServerPool::ServerPool(core::MimeNetwork& prototype,
                       ThresholdCache::Loader loader, PoolConfig config)
    : config_(config),
      prototype_(&prototype),
      admission_(config.admission, config.max_pending),
      sampler_(config.server.trace_sample_rate),
      router_(config.routing, 1) {
    MIME_REQUIRE(config.replica_count >= 1,
                 "pool needs at least one replica");
    input_shape_ = InferenceServer::serving_input_shape(prototype);

    const AutoscalerConfig& scaler = config_.autoscaler;
    std::size_t provisioned = config.replica_count;
    active_ = config.replica_count;
    if (scaler.enabled) {
        MIME_REQUIRE(scaler.max_replicas >= scaler.min_replicas &&
                         scaler.min_replicas >= 1,
                     "autoscaler bounds must satisfy 1 <= min <= max");
        provisioned = std::max(provisioned, scaler.max_replicas);
        active_ = std::clamp(active_, scaler.min_replicas,
                             scaler.max_replicas);
    }
    router_.set_replica_count(active_);

    // One shared cost model feeds batcher feasibility, routing loads
    // and the autoscaler; every replica calibrates it.
    cost_model_ = config_.cost_model;
    if (!cost_model_ &&
        (config_.cost_aware_scheduling || scaler.enabled)) {
        CostModelConfig cost_config;
        if (config_.server.quantized_execution) {
            // Int8 replicas finish batches ~1.5x faster than float ones
            // (measured planned-forward speedup); seed the model so the
            // first batches' feasibility checks and routing loads start
            // near reality instead of waiting for calibration.
            cost_config.quantized_mac_scale = 1.5;
        }
        cost_model_ = std::make_shared<CostModel>(prototype.layer_specs(),
                                                  cost_config);
    }

    loads_.assign(provisioned, 0.0);
    inflight_.assign(provisioned, 0);
    routed_.assign(provisioned, 0);
    route_scratch_.reserve(provisioned);

    // Replica 0 serves on the prototype itself; the rest on
    // shared-backbone clones. Every replica — including autoscaler
    // standbys — is cloned here, before traffic, because cloning later
    // would race replica 0's threshold installs on the prototype.
    clones_.reserve(provisioned - 1);
    for (std::size_t i = 1; i < provisioned; ++i) {
        clones_.push_back(prototype.clone_with_shared_backbone());
    }
    servers_.reserve(provisioned);
    for (std::size_t i = 0; i < provisioned; ++i) {
        ServerConfig server_config = config.server;
        server_config.cost_model = cost_model_;
        server_config.cost_admission = config_.cost_aware_scheduling;
        server_config.on_requests_complete = [this, i](std::size_t count) {
            on_requests_complete(i, count);
        };
        core::MimeNetwork& network =
            i == 0 ? prototype : *clones_[i - 1];
        servers_.push_back(std::make_unique<InferenceServer>(
            network, loader, server_config));
    }

    if (scaler.enabled) {
        autoscaler_ = std::thread([this] { autoscaler_loop(); });
    }
}

ServerPool::~ServerPool() { stop(); }

std::size_t ServerPool::active_replicas() const {
    MutexLock lock(mutex_);
    return active_;
}

double ServerPool::request_cost_us(const std::string& task) const {
    if (!config_.cost_aware_scheduling || !cost_model_) {
        return 1.0;  // plain request count
    }
    // Price the request at its share of a typical (half-full) batch:
    // per-request cost under batching is what routing should balance.
    const std::int64_t expected_batch =
        std::max<std::int64_t>(1, config_.server.batcher.max_batch_size / 2);
    return cost_model_->predict_request_us(task, expected_batch);
}

void ServerPool::autoscaler_loop() {
    ReplicaAutoscaler policy(config_.autoscaler);
    std::int64_t last_shed = admission_.shed_count();
    for (;;) {
        // Price a replica from the live footprint of the busiest
        // provisioned replica (plan buffers + workspace peak — the
        // PR 4 accounting); 0 until the first batch has planned.
        // Computed outside mutex_ so the scan never stalls submits.
        std::int64_t replica_cost_bytes = 0;
        for (const auto& server : servers_) {
            const ServerStats s = server->stats();
            replica_cost_bytes =
                std::max(replica_cost_bytes,
                         s.plan_buffer_bytes + s.workspace_peak_bytes);
        }
        const std::int64_t shed = admission_.shed_count();
        const std::int64_t shed_delta = shed - last_shed;
        last_shed = shed;

        MutexLock lock(mutex_);
        // Explicit wait loop (not the predicate overload): the analysis
        // cannot see mutex_ held inside a predicate lambda, and the
        // loop needs guarded reads of autoscale_stop_.
        const auto deadline = Clock::now() + config_.autoscaler.interval;
        while (!autoscale_stop_) {
            if (autoscale_cv_.wait_until(lock, deadline) ==
                std::cv_status::timeout) {
                break;
            }
        }
        if (autoscale_stop_) {
            return;
        }
        double outstanding_us = 0.0;
        for (std::size_t i = 0; i < active_; ++i) {
            outstanding_us += loads_[i];
        }
        const int delta = policy.step(
            outstanding_us / static_cast<double>(active_), shed_delta,
            active_, replica_cost_bytes);
        autoscale_budget_blocked_ = policy.budget_blocked();
        if (delta > 0) {
            ++active_;
            ++autoscale_grows_;
            router_.set_replica_count(active_);
        } else if (delta < 0) {
            // Deactivation only stops *new* routes; in-flight work on
            // the retired replica drains normally and its completions
            // still decrement loads_ through the stable index.
            --active_;
            ++autoscale_shrinks_;
            router_.set_replica_count(active_);
        }
    }
}

RequestTicket ServerPool::submit(const std::string& task, Tensor image,
                                 SubmitOptions options) {
    const Clock::time_point admission_start = Clock::now();
    if (state_.stopped()) {
        return reject(options, ServeStatus::shutdown,
                      "submit on a stopped pool");
    }
    // Validate the envelope before admission so a malformed request can
    // never consume a pool-wide slot or reach a replica.
    if (auto error = envelope_error(task, image, input_shape_, options)) {
        return reject(options, ServeStatus::invalid_request,
                      std::move(*error));
    }

    if (!admission_.try_admit()) {
        if (state_.stopped()) {
            return reject(options, ServeStatus::shutdown,
                          "submit on a stopped pool");
        }
        return reject(options, ServeStatus::overloaded,
                      "pool at max_pending=" +
                          std::to_string(config_.max_pending) +
                          "; request for task '" + task + "' shed");
    }

    std::size_t replica = 0;
    const double cost_us = request_cost_us(task);
    InferenceServer* server = nullptr;
    {
        MutexLock lock(mutex_);
        // Route among the active replicas only (the autoscaler may have
        // retired the tail of the provisioned set).
        route_scratch_.assign(loads_.begin(),
                              loads_.begin() +
                                  static_cast<std::ptrdiff_t>(active_));
        replica = router_.route(task, route_scratch_);
        loads_[replica] += cost_us;
        ++inflight_[replica];
        ++routed_[replica];
        server = servers_[replica].get();
    }
    const std::optional<std::int64_t> id =
        state_.register_submit(Clock::now());
    if (!id.has_value()) {
        // Raced with stop() after admission: unwind and reject.
        {
            MutexLock lock(mutex_);
            loads_[replica] = std::max(0.0, loads_[replica] - cost_us);
            --inflight_[replica];
            --routed_[replica];
        }
        admission_.release();
        return reject(options, ServeStatus::shutdown,
                      "submit on a stopped pool");
    }

    // The pool owns the sampling decision (envelope_checked callers
    // suppress the replica's sampler): the admission span then covers
    // pool admission + routing from this front door's entry.
    std::shared_ptr<obs::Trace> trace;
    if (options.trace || sampler_.sample()) {
        trace = std::make_shared<obs::Trace>();
    }

    bool accepted = false;
    RequestTicket ticket = server->submit_impl(
        task, std::move(image), std::move(options), &accepted,
        /*envelope_checked=*/true, std::move(trace), admission_start);
    if (!accepted) {
        // The replica rejected at its door (stop race); it already
        // delivered the failure outcome — just unwind the accounting.
        {
            MutexLock lock(mutex_);
            loads_[replica] = std::max(0.0, loads_[replica] - cost_us);
            --inflight_[replica];
            --routed_[replica];
        }
        state_.rollback_submit();
        admission_.release();
    }
    return ticket;
}

void ServerPool::on_requests_complete(std::size_t replica,
                                      std::size_t count) {
    {
        MutexLock lock(mutex_);
        // Retire a proportional share of the replica's outstanding
        // predicted cost: the pool does not track which request carried
        // which price, and the proportion keeps loads_ and inflight_
        // reaching zero together.
        const std::int64_t inflight = inflight_[replica];
        const auto done = static_cast<std::int64_t>(count);
        if (inflight <= done) {
            loads_[replica] = 0.0;
            inflight_[replica] = 0;
        } else {
            loads_[replica] *=
                static_cast<double>(inflight - done) /
                static_cast<double>(inflight);
            inflight_[replica] = inflight - done;
        }
    }
    state_.complete(count, Clock::now());
    admission_.release(count);
}

void ServerPool::drain() { state_.drain(); }

void ServerPool::stop() {
    if (!state_.begin_stop()) {
        return;
    }
    // Stop the autoscaler before the replicas so active_ stops moving
    // while they drain.
    {
        MutexLock lock(mutex_);
        autoscale_stop_ = true;
    }
    autoscale_cv_.notify_all();
    if (autoscaler_.joinable()) {
        autoscaler_.join();
    }
    // Unblock admission waiters first so no submitter can deadlock
    // against a stopping pool, then stop replicas (each drains its own
    // queue).
    admission_.close();
    for (auto& server : servers_) {
        server->stop();
    }
}

ServiceStats ServerPool::service_stats() const {
    const PoolStats full = stats();
    ServiceStats stats;
    stats.submitted = full.requests_submitted;
    stats.completed = full.requests_completed;
    stats.shed = full.requests_shed;
    stats.deadline_expired = full.deadline_expired;
    stats.cancelled = full.cancelled;
    stats.throughput_rps = full.throughput_rps;
    stats.interactive = full.interactive;
    stats.batch = full.batch;
    return stats;
}

PoolStats ServerPool::stats() const {
    PoolStats stats;
    stats.requests_shed = admission_.shed_count();
    stats.peak_pending = admission_.peak_pending();

    LatencyRecorder merged;
    LatencyRecorder merged_interactive;
    LatencyRecorder merged_batch;
    stats.replicas.reserve(servers_.size());
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        ReplicaStats replica;
        replica.server = servers_[i]->stats();
        merged.merge(servers_[i]->latency_recorder());
        merged_interactive.merge(
            servers_[i]->latency_recorder(Priority::interactive));
        merged_batch.merge(servers_[i]->latency_recorder(Priority::batch));
        stats.accumulate(replica.server);
        stats.replicas.push_back(std::move(replica));
    }
    const std::int64_t lookups = stats.cache_hits + stats.cache_misses;
    if (lookups > 0) {
        stats.cache_hit_rate = static_cast<double>(stats.cache_hits) /
                               static_cast<double>(lookups);
    }
    if (stats.dense_equivalent_macs > 0) {
        stats.skipped_mac_fraction =
            static_cast<double>(stats.skipped_macs) /
            static_cast<double>(stats.dense_equivalent_macs);
    }
    stats.mean_latency_us = merged.mean();
    if (merged.count() > 0) {
        const LatencyRecorder::Summary quantiles = merged.summary();
        stats.p50_latency_us = quantiles.p50;
        stats.p95_latency_us = quantiles.p95;
        stats.p99_latency_us = quantiles.p99;
        stats.p999_latency_us = quantiles.p999;
    }
    if (merged_interactive.count() > 0) {
        const LatencyRecorder::Summary lane = merged_interactive.summary();
        stats.interactive.p50_latency_us = lane.p50;
        stats.interactive.p95_latency_us = lane.p95;
        stats.interactive.p99_latency_us = lane.p99;
        stats.interactive.p999_latency_us = lane.p999;
    }
    if (merged_batch.count() > 0) {
        const LatencyRecorder::Summary lane = merged_batch.summary();
        stats.batch.p50_latency_us = lane.p50;
        stats.batch.p95_latency_us = lane.p95;
        stats.batch.p99_latency_us = lane.p99;
        stats.batch.p999_latency_us = lane.p999;
    }

    stats.requests_submitted = state_.submitted();
    stats.requests_completed = state_.completed();
    stats.throughput_rps = state_.throughput_rps();
    if (cost_model_) {
        stats.cost_prediction_error =
            cost_model_->mean_abs_relative_error();
        stats.cost_calibration_scale = cost_model_->calibration_scale();
    }
    MutexLock lock(mutex_);
    stats.active_replicas = active_;
    stats.autoscale_grows = autoscale_grows_;
    stats.autoscale_shrinks = autoscale_shrinks_;
    stats.autoscale_budget_blocked = autoscale_budget_blocked_;
    for (std::size_t i = 0; i < routed_.size(); ++i) {
        stats.replicas[i].routed = routed_[i];
    }
    for (std::size_t i = 0; i < active_; ++i) {
        stats.predicted_outstanding_us += loads_[i];
    }
    return stats;
}

}  // namespace mime::serve
