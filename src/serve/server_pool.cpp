#include "serve/server_pool.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/table.h"
#include "serve/latency_stats.h"

namespace mime::serve {

namespace {

double to_us(Clock::duration d) {
    return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

std::string PoolStats::to_table_string() const {
    Table aggregate({"metric", "value"});
    aggregate.add_row({"replicas", std::to_string(replicas.size())});
    aggregate.add_row({"submitted", std::to_string(requests_submitted)});
    aggregate.add_row({"completed", std::to_string(requests_completed)});
    aggregate.add_row({"shed", std::to_string(requests_shed)});
    aggregate.add_row({"peak pending", std::to_string(peak_pending)});
    aggregate.add_row({"batches", std::to_string(batches_run)});
    aggregate.add_row({"threshold swaps", std::to_string(threshold_swaps)});
    aggregate.add_row({"cache hit/miss/evict",
                       std::to_string(cache_hits) + "/" +
                           std::to_string(cache_misses) + "/" +
                           std::to_string(cache_evictions)});
    aggregate.add_row({"cache hit rate", Table::num(cache_hit_rate, 3)});
    aggregate.add_row(
        {"workspace peak (bytes)", std::to_string(workspace_peak_bytes)});
    aggregate.add_row(
        {"plan buffers (bytes)", std::to_string(plan_buffer_bytes)});
    aggregate.add_row({"throughput (req/s)", Table::num(throughput_rps, 1)});
    aggregate.add_row({"latency p50 (us)", Table::num(p50_latency_us, 1)});
    aggregate.add_row({"latency p95 (us)", Table::num(p95_latency_us, 1)});
    aggregate.add_row({"latency p99 (us)", Table::num(p99_latency_us, 1)});

    Table per_replica({"replica", "routed", "completed", "batches", "swaps",
                       "cache h/m/e", "ws peak (bytes)"});
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        const ReplicaStats& r = replicas[i];
        per_replica.add_row(
            {std::to_string(i), std::to_string(r.routed),
             std::to_string(r.server.requests_completed),
             std::to_string(r.server.batches_run),
             std::to_string(r.server.threshold_swaps),
             std::to_string(r.server.cache_hits) + "/" +
                 std::to_string(r.server.cache_misses) + "/" +
                 std::to_string(r.server.cache_evictions),
             std::to_string(r.server.workspace_peak_bytes)});
    }
    return aggregate.to_string() + "\n" + per_replica.to_string();
}

ServerPool::ServerPool(core::MimeNetwork& prototype,
                       ThresholdCache::Loader loader, PoolConfig config)
    : config_(config),
      prototype_(&prototype),
      admission_(config.admission, config.max_pending),
      router_(config.routing, config.replica_count) {
    MIME_REQUIRE(config.replica_count >= 1,
                 "pool needs at least one replica");
    loads_.assign(config.replica_count, 0);
    routed_.assign(config.replica_count, 0);

    // Replica 0 serves on the prototype itself; the rest on
    // shared-backbone clones.
    clones_.reserve(config.replica_count - 1);
    for (std::size_t i = 1; i < config.replica_count; ++i) {
        clones_.push_back(prototype.clone_with_shared_backbone());
    }
    servers_.reserve(config.replica_count);
    for (std::size_t i = 0; i < config.replica_count; ++i) {
        ServerConfig server_config = config.server;
        server_config.on_requests_complete = [this, i](std::size_t count) {
            on_requests_complete(i, count);
        };
        core::MimeNetwork& network =
            i == 0 ? prototype : *clones_[i - 1];
        servers_.push_back(std::make_unique<InferenceServer>(
            network, loader, server_config));
    }
}

ServerPool::~ServerPool() { stop(); }

std::future<InferenceResult> ServerPool::submit_async(
    const std::string& task, Tensor image) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        MIME_REQUIRE(!stopped_, "submit on a stopped pool");
    }
    if (!admission_.try_admit()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            MIME_REQUIRE(!stopped_, "submit on a stopped pool");
        }
        throw overload_error(
            "pool at max_pending=" + std::to_string(config_.max_pending) +
            "; request for task '" + task + "' shed");
    }
    std::size_t replica = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        replica = router_.route(task, loads_);
        ++loads_[replica];
        ++routed_[replica];
        if (submitted_ == 0) {
            first_enqueue_ = Clock::now();
        }
        ++submitted_;
    }
    try {
        return servers_[replica]->submit_async(task, std::move(image));
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --loads_[replica];
            --routed_[replica];
            --submitted_;
        }
        admission_.release();
        drained_.notify_all();
        throw;
    }
}

InferenceResult ServerPool::submit(const std::string& task, Tensor image) {
    return submit_async(task, std::move(image)).get();
}

void ServerPool::on_requests_complete(std::size_t replica,
                                      std::size_t count) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        loads_[replica] -= static_cast<std::int64_t>(count);
        completed_ += static_cast<std::int64_t>(count);
        last_completion_ = Clock::now();
    }
    admission_.release(count);
    drained_.notify_all();
}

void ServerPool::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [this] { return completed_ == submitted_; });
}

void ServerPool::stop() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            return;
        }
        stopped_ = true;
    }
    // Unblock admission waiters first so no submitter can deadlock
    // against a stopping pool, then stop replicas (each drains its own
    // queue).
    admission_.close();
    for (auto& server : servers_) {
        server->stop();
    }
}

PoolStats ServerPool::stats() const {
    PoolStats stats;
    stats.requests_shed = admission_.shed_count();
    stats.peak_pending = admission_.peak_pending();

    LatencyRecorder merged;
    stats.replicas.reserve(servers_.size());
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        ReplicaStats replica;
        replica.server = servers_[i]->stats();
        merged.merge(servers_[i]->latency_recorder());
        stats.batches_run += replica.server.batches_run;
        stats.threshold_swaps += replica.server.threshold_swaps;
        stats.cache_hits += replica.server.cache_hits;
        stats.cache_misses += replica.server.cache_misses;
        stats.cache_evictions += replica.server.cache_evictions;
        stats.workspace_peak_bytes += replica.server.workspace_peak_bytes;
        stats.plan_buffer_bytes += replica.server.plan_buffer_bytes;
        stats.replicas.push_back(std::move(replica));
    }
    const std::int64_t lookups = stats.cache_hits + stats.cache_misses;
    if (lookups > 0) {
        stats.cache_hit_rate = static_cast<double>(stats.cache_hits) /
                               static_cast<double>(lookups);
    }
    stats.mean_latency_us = merged.mean();
    if (merged.count() > 0) {
        const LatencyRecorder::Summary quantiles = merged.summary();
        stats.p50_latency_us = quantiles.p50;
        stats.p95_latency_us = quantiles.p95;
        stats.p99_latency_us = quantiles.p99;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats.requests_submitted = submitted_;
    stats.requests_completed = completed_;
    for (std::size_t i = 0; i < routed_.size(); ++i) {
        stats.replicas[i].routed = routed_[i];
    }
    if (completed_ > 0) {
        const double elapsed_s =
            to_us(last_completion_ - first_enqueue_) / 1e6;
        stats.throughput_rps =
            elapsed_s > 0.0 ? static_cast<double>(completed_) / elapsed_s
                            : 0.0;
    }
    return stats;
}

}  // namespace mime::serve
