// Pool-wide admission control.
//
// The per-replica RequestQueue already bounds memory, but a pool also
// needs one global in-flight cap so overload is handled by policy
// instead of by whichever replica queue happens to fill first:
//   * block — callers wait for a slot (closed-loop backpressure),
//   * shed  — callers are refused immediately (fail fast; the caller
//             sees overload_error and can retry elsewhere).
// The controller is a counting semaphore with accounting: it tracks the
// shed total and the high-water mark of concurrently admitted requests,
// which tests use to prove the cap was never exceeded.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/sync.h"

namespace mime::serve {

/// Thrown by the deprecated throwing submit shims when admission control
/// sheds a request; the InferenceService API reports the same condition
/// as ServeStatus::overloaded on the result channel instead. Derives
/// from std::runtime_error (not check_error): overload is an
/// environmental condition, not a caller bug.
class overload_error : public std::runtime_error {
public:
    explicit overload_error(const std::string& message)
        : std::runtime_error(message) {}
};

enum class AdmissionMode { block, shed };

const char* to_string(AdmissionMode mode);

class AdmissionController {
public:
    /// `max_pending` caps concurrently admitted requests; 0 = unlimited.
    AdmissionController(AdmissionMode mode, std::size_t max_pending);

    AdmissionMode mode() const noexcept { return mode_; }
    std::size_t max_pending() const noexcept { return max_pending_; }

    /// Takes one slot. Returns true when admitted; false when the
    /// request must be shed (shed mode at capacity) or the controller
    /// was closed. In block mode, waits until a slot frees or close().
    bool try_admit() MIME_EXCLUDES(mutex_);

    /// Returns `count` slots and wakes blocked admitters.
    void release(std::size_t count = 1) MIME_EXCLUDES(mutex_);

    /// Wakes and refuses all current and future admitters.
    void close() MIME_EXCLUDES(mutex_);

    std::int64_t pending() const MIME_EXCLUDES(mutex_);
    std::int64_t peak_pending() const MIME_EXCLUDES(mutex_);
    std::int64_t shed_count() const MIME_EXCLUDES(mutex_);
    std::int64_t admitted_count() const MIME_EXCLUDES(mutex_);

private:
    const AdmissionMode mode_;
    const std::size_t max_pending_;
    mutable Mutex mutex_;
    CondVar slot_freed_;
    std::int64_t pending_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t peak_pending_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t shed_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t admitted_ MIME_GUARDED_BY(mutex_) = 0;
    bool closed_ MIME_GUARDED_BY(mutex_) = false;
};

}  // namespace mime::serve
