// Hardware-backed service-time/energy predictor for scheduling.
//
// MIME's hardware story is that per-task threshold sparsity changes the
// *effective* cost of the same network on the same array: the simulator
// in src/hw prices a batch from the task's per-layer activation
// sparsity under the paper's systolic model. This class turns that into
// a scheduling signal: (task sparsity profile, batch size) -> predicted
// wall microseconds (and energy), consumed by
//   * TaskBatcher        — deadline-feasibility at batch-forming time,
//   * Router/ServerPool  — predicted-microseconds-outstanding loads for
//                          least_loaded routing,
//   * the pool autoscaler — predicted per-replica backlog drives
//                          grow/shrink decisions.
//
// Two base models, one calibration. With use_simulator on (default) a
// batch is priced by hw::InferenceSimulator under Scheme::mime at the
// task's observed site sparsities (cycles / clock = microseconds);
// otherwise a linear overhead + per-sample model stands in. Either way
// the base prediction is blended against reality online: observed batch
// service times (install + forward + any simulated accelerator time)
// drive a global EWMA calibration scale — the simulator prices relative
// cost between tasks and batch sizes well, but the absolute scale of a
// real replica (CPU forward, SIMD, thread pool) is learned — plus a
// per-(task, batch-size) observed EWMA that dominates once enough
// samples of that exact shape exist.
//
// Thread-safe: one instance is shared by every replica's dispatch
// thread, the pool's submit path and the autoscaler. All methods lock a
// single internal mutex; the model never calls out while holding it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "arch/layer_spec.h"
#include "common/sync.h"
#include "hw/simulator.h"
#include "hw/systolic_config.h"

namespace mime::serve {

struct CostModelConfig {
    /// Price batches with the systolic-array simulator (per-task
    /// sparsity-sensitive); off falls back to the linear model below.
    bool use_simulator = true;
    /// Simulated accelerator clock; converts simulator cycles to wall
    /// microseconds (us = cycles / (GHz * 1000)).
    double accelerator_clock_ghz = 1.0;
    hw::SystolicConfig systolic{};
    /// Linear fallback model (also the floor for degenerate networks):
    /// predicted = batch_overhead + per_sample * batch_size.
    double default_per_sample_us = 500.0;
    double default_batch_overhead_us = 100.0;
    /// EWMA weight of each new observed/base ratio in the global
    /// calibration scale.
    double calibration_alpha = 0.2;
    /// Clamp on the calibration scale so one wild measurement (page
    /// fault, first-batch plan warm-up) cannot poison scheduling.
    double min_calibration_scale = 0.01;
    double max_calibration_scale = 1000.0;
    /// Site-sparsity updates smaller than this (max abs delta) keep the
    /// memoized simulations instead of re-pricing every batch size.
    double sparsity_epsilon = 1e-3;
    /// MAC-throughput multiplier of the replicas this model prices:
    /// base predictions divide by it, so int8-quantized replicas (whose
    /// 8-bit MACs move ~4x fewer operand bytes and pack wider SIMD
    /// lanes) price proportionally cheaper than float ones before any
    /// calibration. 1.0 = full-precision replicas; the pool sets ~1.5
    /// for quantized pools, matching the measured int8/f32 planned
    /// forward speedup. Must be > 0. Calibration would eventually learn
    /// the scale anyway — seeding it keeps the first batches' deadline
    /// feasibility and routing loads from being systematically wrong.
    double quantized_mac_scale = 1.0;
};

/// What observe_batch() fed back: the model's prediction for the shape
/// it just measured, and the relative error against the measurement.
struct CostFeedback {
    double predicted_us = 0.0;
    double abs_relative_error = 0.0;
};

class CostModel {
public:
    /// `layers` are the threshold-bearing layers the simulator prices
    /// (MimeNetwork::layer_specs(); classifier excluded, as in the
    /// paper's figures).
    explicit CostModel(std::vector<arch::LayerSpec> layers,
                       CostModelConfig config = {});

    const CostModelConfig& config() const noexcept { return config_; }

    /// Installs/updates the task's per-layer output sparsity (the
    /// serving path feeds MimeNetwork::last_site_sparsities() after
    /// each batch). Values are clamped into [0, 1); missing trailing
    /// layers repeat the last known value. Deltas below
    /// sparsity_epsilon keep the memoized prices.
    void set_task_sparsity(const std::string& task,
                           const std::vector<double>& site_sparsities)
        MIME_EXCLUDES(mutex_);
    bool has_task_profile(const std::string& task) const
        MIME_EXCLUDES(mutex_);

    /// Predicted wall microseconds to serve one batch of `batch_size`
    /// requests of `task` (calibrated; monotone in batch_size for the
    /// uncalibrated base model). Unknown tasks price at dense (zero
    /// sparsity) — pessimistic, so feasibility errs toward serving.
    double predict_batch_us(const std::string& task,
                            std::int64_t batch_size) const
        MIME_EXCLUDES(mutex_);

    /// Per-request share of a batch of `expected_batch` — the unit the
    /// pool adds to a replica's outstanding-cost load on submit. Must
    /// be called without any caller lock that dispatch threads also
    /// take while calibrating (the pool calls it before its router
    /// mutex for exactly that reason).
    double predict_request_us(const std::string& task,
                              std::int64_t expected_batch) const
        MIME_EXCLUDES(mutex_);

    /// Model-side energy of one batch in normalized MAC-energy units
    /// (simulator path; the linear fallback reports 0 — it has no
    /// energy story).
    double predict_batch_energy(const std::string& task,
                                std::int64_t batch_size) const
        MIME_EXCLUDES(mutex_);

    /// Feeds one measured batch service time back into calibration and
    /// returns what the model had predicted for that shape.
    CostFeedback observe_batch(const std::string& task,
                               std::int64_t batch_size,
                               double measured_us) MIME_EXCLUDES(mutex_);

    double calibration_scale() const MIME_EXCLUDES(mutex_);
    std::int64_t observation_count() const MIME_EXCLUDES(mutex_);
    /// Mean |predicted - observed| / observed over every observation —
    /// the serve.cost_prediction_error gauge.
    double mean_abs_relative_error() const MIME_EXCLUDES(mutex_);

private:
    struct TaskProfile {
        std::vector<double> sparsity;  ///< clamped per-layer outputs
    };
    struct ObservedShape {
        double ewma_us = 0.0;
        std::int64_t samples = 0;
    };

    /// Uncalibrated base prediction (simulator or linear).
    double base_batch_us(const std::string& task,
                         std::int64_t batch_size) const
        MIME_REQUIRES(mutex_);
    /// Calibrated + observation-blended prediction.
    double predict_locked(const std::string& task,
                          std::int64_t batch_size) const
        MIME_REQUIRES(mutex_);
    const hw::SparsityProfile& profile_for(const std::string& task) const
        MIME_REQUIRES(mutex_);

    CostModelConfig config_;
    std::vector<arch::LayerSpec> layers_;
    hw::InferenceSimulator simulator_;
    hw::SparsityProfile dense_profile_;  ///< unknown-task fallback

    mutable Mutex mutex_;
    std::map<std::string, TaskProfile> tasks_ MIME_GUARDED_BY(mutex_);
    /// Simulator profiles rebuilt lazily from tasks_; keyed by task.
    mutable std::map<std::string, hw::SparsityProfile> profiles_
        MIME_GUARDED_BY(mutex_);
    /// Memoized base prices/energies keyed by (task, batch_size).
    mutable std::map<std::pair<std::string, std::int64_t>, double>
        base_us_memo_ MIME_GUARDED_BY(mutex_);
    mutable std::map<std::pair<std::string, std::int64_t>, double>
        energy_memo_ MIME_GUARDED_BY(mutex_);
    /// Observed service-time EWMAs keyed by (task, batch_size).
    std::map<std::pair<std::string, std::int64_t>, ObservedShape>
        observed_ MIME_GUARDED_BY(mutex_);
    double calibration_scale_ MIME_GUARDED_BY(mutex_) = 1.0;
    std::int64_t observation_count_ MIME_GUARDED_BY(mutex_) = 0;
    double abs_relative_error_sum_ MIME_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace mime::serve
