// Sharded multi-network server pool: N replica InferenceServers behind
// one InferenceService facade.
//
// PR 2's single server runs one dispatch thread, so forwards serialize
// no matter how many clients submit. The pool is the scaling step named
// in ROADMAP.md: each replica owns a MimeNetwork whose frozen backbone
// *aliases* the prototype's storage (one W_parent in host memory, N
// replicas — the paper's DRAM argument applied to replication) plus its
// own ThresholdCache, so forwards proceed genuinely in parallel while a
// task switch still touches only T_child bytes per replica.
//
// Request flow: envelope validation -> admission control (pool-wide
// in-flight cap, block or shed; a shed request completes with
// ServeStatus::overloaded, never an exception) -> routing policy
// (round_robin / task_affinity / least_loaded) -> the chosen replica's
// queue/batcher/dispatcher, which enforces deadlines, priorities and
// cancellation exactly as a lone server does. task_affinity hashes each
// task onto one replica so its thresholds are hydrated exactly once
// pool-wide; round_robin spreads a task over every replica and pays
// capacity-miss thrashing in exchange for strict fairness.
//
// stats() aggregates across replicas: counters sum, and latency
// percentiles (total and per priority lane) are computed from the
// *merged* latency reservoirs (LatencyRecorder::merge), never by
// averaging per-replica percentiles.
//
// Cost-aware scheduling (default on) replaces the heuristic signals
// with the shared CostModel's predictions: least_loaded loads become
// predicted-microseconds-outstanding, and each replica's batcher sheds
// predicted-infeasible work at batch-forming time. An optional
// autoscaler (PoolConfig::autoscaler) grows/shrinks the *active*
// replica set between min/max from admission pressure and predicted
// per-replica backlog; all max_replicas are provisioned up front (see
// the member comment for why) and a grow is priced against the memory
// budget using the live per-replica plan + workspace bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/mime_network.h"
#include "serve/admission.h"
#include "serve/autoscaler.h"
#include "serve/cost_model.h"
#include "serve/inference_server.h"
#include "serve/routing.h"
#include "serve/service.h"
#include "serve/service_state.h"
#include "tensor/shape.h"

namespace mime::serve {

struct PoolConfig {
    /// Replica servers (each with its own dispatch thread and cache).
    /// With the autoscaler enabled this is the *starting* active count
    /// (clamped into its [min, max]); max_replicas are provisioned up
    /// front and activation toggles which receive traffic.
    std::size_t replica_count = 2;
    RoutingPolicy routing = RoutingPolicy::task_affinity;
    AdmissionMode admission = AdmissionMode::block;
    /// Pool-wide cap on in-flight (admitted, not yet completed)
    /// requests; 0 = unlimited.
    std::size_t max_pending = 0;
    /// Per-replica server configuration (batcher, cache, workers...).
    ServerConfig server{};
    /// Cost-model-driven scheduling: per-replica loads become predicted
    /// microseconds outstanding (instead of request counts) and every
    /// replica's batcher enforces predicted deadline feasibility. The
    /// model calibrates online either way once it exists.
    bool cost_aware_scheduling = true;
    /// Shared predictor; built from the prototype's layer specs when
    /// null and cost_aware_scheduling or the autoscaler needs one.
    std::shared_ptr<CostModel> cost_model;
    /// Replica autoscaling between min/max from admission pressure and
    /// predicted per-replica backlog (see serve/autoscaler.h).
    AutoscalerConfig autoscaler{};
};

/// One replica's contribution to the pool.
struct ReplicaStats {
    std::int64_t routed = 0;  ///< requests this replica was assigned
    ServerStats server;
};

/// Aggregate pool statistics (a consistent snapshot).
struct PoolStats {
    std::int64_t requests_submitted = 0;
    /// Terminal outcomes delivered (results + structured failures).
    std::int64_t requests_completed = 0;
    /// Requests served with a result (ServeStatus::ok).
    std::int64_t requests_served = 0;
    std::int64_t requests_shed = 0;
    std::int64_t deadline_expired = 0;
    std::int64_t cancelled = 0;
    std::int64_t peak_pending = 0;
    std::int64_t batches_run = 0;
    std::int64_t threshold_swaps = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t cache_evictions = 0;
    /// hits / (hits + misses); 0 when the pool served nothing.
    double cache_hit_rate = 0.0;
    /// Sum of every replica's steady-state workspace high-water mark —
    /// the pool's total scratch footprint (memory scaling is tracked
    /// alongside throughput in the pool sweep).
    std::int64_t workspace_peak_bytes = 0;
    /// Sum of every replica's plan-owned activation buffer bytes.
    std::int64_t plan_buffer_bytes = 0;
    /// Sums of the replicas' sparse planned-execution counters.
    std::int64_t sparse_path_hits = 0;
    std::int64_t skipped_macs = 0;
    std::int64_t dense_equivalent_macs = 0;
    /// skipped_macs / dense_equivalent_macs (0 when nothing ran).
    double skipped_mac_fraction = 0.0;
    /// Sum of the replicas' int8-quantized planned-step counters.
    std::int64_t quantized_path_hits = 0;
    /// Worst per-channel int8 weight error over every replica (max, not
    /// sum — it bounds the pool's accuracy exposure).
    double quantized_weight_max_rel_error = 0.0;
    /// Sum of the replicas' cost-infeasible batch-forming sheds.
    std::int64_t cost_infeasible_shed = 0;
    /// Shared cost model state at snapshot time (0 without a model).
    double cost_prediction_error = 0.0;
    double cost_calibration_scale = 0.0;
    /// Replicas currently receiving traffic (== replicas.size() unless
    /// the autoscaler is enabled).
    std::size_t active_replicas = 0;
    std::int64_t autoscale_grows = 0;
    std::int64_t autoscale_shrinks = 0;
    /// Grows the autoscaler skipped for the memory budget.
    std::int64_t autoscale_budget_blocked = 0;
    /// Predicted outstanding microseconds summed over active replicas
    /// at snapshot time (request counts when not cost-aware).
    double predicted_outstanding_us = 0.0;
    double mean_latency_us = 0.0;
    /// Merged-reservoir percentiles over every replica's stream.
    double p50_latency_us = 0.0;
    double p95_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double p999_latency_us = 0.0;
    /// Completed requests per wall-clock second between the pool's
    /// first admit and last completion (0 for a zero-length window).
    double throughput_rps = 0.0;
    /// Per-priority completion counts and merged-reservoir quantiles.
    PriorityLaneStats interactive;
    PriorityLaneStats batch;
    std::vector<ReplicaStats> replicas;

    /// Folds one replica's ServerStats into the pool-wide sums — every
    /// summable counter and byte total in one place, so a new
    /// ServerStats field cannot be aggregated by the server but
    /// silently dropped by the pool. Quantiles and derived rates are
    /// NOT touched here: they come from the merged reservoirs
    /// (averaging per-replica percentiles would be wrong).
    void accumulate(const ServerStats& server);

    /// Renders the aggregate + per-replica rows via common/table.
    std::string to_table_string() const;
};

class ServerPool : public InferenceService {
public:
    /// Replica 0 serves on `prototype` itself; replicas 1..N-1 serve on
    /// shared-backbone clones (see MimeNetwork::clone_with_shared_backbone),
    /// so the prototype must outlive the pool and must not be trained or
    /// mutated while the pool runs. The loader hydrates every replica's
    /// cache misses and must tolerate concurrent calls from N dispatch
    /// threads (AdaptationStore::task_loader() qualifies).
    ServerPool(core::MimeNetwork& prototype, ThresholdCache::Loader loader,
               PoolConfig config = {});
    ~ServerPool() override;

    ServerPool(const ServerPool&) = delete;
    ServerPool& operator=(const ServerPool&) = delete;

    const PoolConfig& config() const noexcept { return config_; }
    /// Provisioned replicas (autoscaler max when enabled).
    std::size_t replica_count() const noexcept { return servers_.size(); }
    /// Replicas currently receiving traffic.
    std::size_t active_replicas() const MIME_EXCLUDES(mutex_);
    /// The shared cost model (null when neither cost-aware scheduling
    /// nor the autoscaler asked for one).
    const std::shared_ptr<CostModel>& cost_model() const noexcept {
        return cost_model_;
    }

    // Keep the deprecated throwing shims visible next to the override.
    using InferenceService::submit;

    /// Unified submission surface (see InferenceService::submit):
    /// admission shedding completes the request with
    /// ServeStatus::overloaded, a stopped pool with shutdown — no
    /// exceptions on either path.
    RequestTicket submit(const std::string& task, Tensor image,
                         SubmitOptions options) override;

    /// Blocks until every admitted request has completed.
    void drain() override;

    /// Drains and stops every replica. Idempotent; the destructor calls
    /// it.
    void stop() override;

    ServiceStats service_stats() const override;
    PoolStats stats() const MIME_EXCLUDES(mutex_);

private:
    void on_requests_complete(std::size_t replica, std::size_t count)
        MIME_EXCLUDES(mutex_);
    /// Predicted cost one request of `task` adds to a replica's load
    /// (1.0 — a request count — when not cost-aware). EXCLUDES(mutex_)
    /// is the machine-checked lock-order contract: this calls into the
    /// shared CostModel, whose mutex the dispatch threads hold while
    /// calibrating — taking it under the router mutex would couple every
    /// submit to every replica's calibration (and invert the only
    /// sanctioned order: cost-model mutex after, never inside, mutex_).
    double request_cost_us(const std::string& task) const
        MIME_EXCLUDES(mutex_);
    void autoscaler_loop() MIME_EXCLUDES(mutex_);

    PoolConfig config_;
    core::MimeNetwork* prototype_;
    Shape input_shape_;  ///< per-sample [C, H, W] the prototype accepts
    std::shared_ptr<CostModel> cost_model_;  ///< may be null
    /// Every replica is provisioned in the constructor — the autoscaler
    /// only toggles how many are routable. Cloning or destroying a
    /// replica mid-traffic would race replica 0's threshold installs on
    /// the prototype (clone_with_shared_backbone snapshots T_child), so
    /// standby replicas idle instead: an idle dispatch thread costs a
    /// 50 ms wakeup, and plans/workspaces are lazy until first traffic.
    std::vector<std::unique_ptr<core::MimeNetwork>> clones_;
    std::vector<std::unique_ptr<InferenceServer>> servers_;
    AdmissionController admission_;
    /// Pool-level sampler (rate from config.server.trace_sample_rate):
    /// the pool owns the tracing decision so the admission span covers
    /// pool admission + routing, not just the replica's front door.
    obs::TraceSampler sampler_;

    /// Admitted/completed counters, drain condvar, idempotent stop,
    /// throughput window — shared bookkeeping via ServiceState.
    ServiceState state_;

    mutable Mutex mutex_;
    /// Sized to the active count; routing state mutates on every
    /// route(), so reads need the lock as much as writes do.
    Router router_ MIME_GUARDED_BY(mutex_);
    std::size_t active_ MIME_GUARDED_BY(mutex_) = 0;  ///< receiving traffic
    /// Outstanding work per replica: predicted microseconds when
    /// cost-aware, else the in-flight request count. Completions
    /// retire a proportional share (the pool does not track which
    /// request carried which cost).
    std::vector<double> loads_ MIME_GUARDED_BY(mutex_);
    /// In-flight per replica.
    std::vector<std::int64_t> inflight_ MIME_GUARDED_BY(mutex_);
    /// Total assigned per replica.
    std::vector<std::int64_t> routed_ MIME_GUARDED_BY(mutex_);
    /// Active-prefix loads view.
    std::vector<double> route_scratch_ MIME_GUARDED_BY(mutex_);
    std::int64_t autoscale_grows_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t autoscale_shrinks_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t autoscale_budget_blocked_ MIME_GUARDED_BY(mutex_) = 0;

    CondVar autoscale_cv_;
    bool autoscale_stop_ MIME_GUARDED_BY(mutex_) = false;
    std::thread autoscaler_;
};

}  // namespace mime::serve
