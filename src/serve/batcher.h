// Task-aware batch formation.
//
// MIME's task switch is cheap (swap thresholds, never weights) but still
// costs a pass over every site's threshold tensors, so the server wants
// to run consecutive same-task requests as one forward batch. The
// batcher holds pending requests and decides, given "now", whether a
// batch is ready: either a full batch of one task exists, or the oldest
// pending request has waited max_wait and must go out (tail latency
// bound). Single-threaded by design — the dispatch loop owns it — which
// keeps the policy logic deterministic and directly unit-testable.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace mime::serve {

/// How pending requests are grouped into batches.
enum class BatchingPolicy {
    /// Strict arrival order: a batch is the longest same-task *prefix*
    /// of the pending queue. Never reorders requests; a task change in
    /// the stream always cuts the batch (models a naive server).
    fifo,
    /// Task-grouped: the oldest request picks the task, then *all*
    /// pending requests of that task join (up to max_batch_size),
    /// regardless of position. Amortizes threshold swaps under
    /// interleaved traffic at the cost of bounded reordering.
    task_grouped
};

const char* to_string(BatchingPolicy policy);

struct BatcherConfig {
    BatchingPolicy policy = BatchingPolicy::task_grouped;
    /// Largest forward batch the server will form.
    std::int64_t max_batch_size = 8;
    /// Longest a request may sit pending before its batch is dispatched
    /// even if not full.
    std::chrono::microseconds max_wait{2000};
};

class TaskBatcher {
public:
    explicit TaskBatcher(BatcherConfig config);

    const BatcherConfig& config() const noexcept { return config_; }

    /// Takes ownership of a request.
    void add(InferenceRequest request);

    bool empty() const noexcept { return pending_.empty(); }
    std::size_t pending_count() const noexcept { return pending_.size(); }

    /// When non-empty: the instant the oldest pending request expires
    /// (enqueue_time + max_wait). The dispatch loop sleeps until then.
    std::optional<Clock::time_point> next_deadline() const;

    /// Forms the next batch if one is ready at `now`: the candidate
    /// group is full, the oldest pending request has expired, or
    /// `flush` forces whatever exists out. Requests in the returned
    /// batch all share one task. Returns nullopt when nothing is ready.
    std::optional<std::vector<InferenceRequest>> next_batch(
        Clock::time_point now, bool flush = false);

private:
    BatcherConfig config_;
    std::deque<InferenceRequest> pending_;
};

}  // namespace mime::serve
