// Task-aware, priority-aware batch formation with deadline enforcement.
//
// MIME's task switch is cheap (swap thresholds, never weights) but still
// costs a pass over every site's threshold tensors, so the server wants
// to run consecutive same-task requests as one forward batch. The
// batcher holds pending requests in two priority lanes — `interactive`
// ahead of `batch` — and decides, given "now", whether a batch is ready:
// either a full batch of one task exists, or the oldest pending request
// in the chosen lane has waited max_wait and must go out (tail latency
// bound). Batch formation always tries the interactive lane first; batch
// traffic absorbs the queueing when interactive load saturates.
//
// Deadlines and cancellation are enforced here, at batch-forming time:
// every next_batch() call first reaps pending requests whose absolute
// deadline has passed (ServeStatus::deadline_exceeded) or whose
// RequestControl shows a won cancel (ServeStatus::cancelled). Reaped
// requests are returned to the caller for failure delivery and never
// occupy a forward.
//
// Single-threaded by design — the dispatch loop owns it — which keeps
// the policy logic deterministic and directly unit-testable.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace mime::serve {

/// How pending requests are grouped into batches (within one lane).
enum class BatchingPolicy {
    /// Strict arrival order: a batch is the longest same-task *prefix*
    /// of the lane. Never reorders requests; a task change in the
    /// stream always cuts the batch (models a naive server).
    fifo,
    /// Task-grouped: the oldest request picks the task, then *all*
    /// pending requests of that task join (up to max_batch_size),
    /// regardless of position. Amortizes threshold swaps under
    /// interleaved traffic at the cost of bounded reordering.
    task_grouped
};

const char* to_string(BatchingPolicy policy);

struct BatcherConfig {
    BatchingPolicy policy = BatchingPolicy::task_grouped;
    /// Largest forward batch the server will form.
    std::int64_t max_batch_size = 8;
    /// Longest a request may sit pending before its batch is dispatched
    /// even if not full (per lane; a saturated interactive lane may
    /// still delay batch-lane traffic beyond this bound).
    std::chrono::microseconds max_wait{2000};
    /// Optional cost hook: predicted wall time (us) to execute a batch
    /// of the given size for the task (see serve/cost_model.h). When
    /// set, batch forming turns deadline enforcement predictive: a
    /// request whose deadline cannot be met even served alone right now
    /// is shed at reap time (ReapedRequest::predicted_infeasible), and
    /// a candidate only joins a forming batch if the predicted cost of
    /// the grown batch still meets every member's deadline.
    std::function<double(const std::string&, std::int64_t)>
        predict_batch_us;
};

/// A request removed at batch-forming time without running: its deadline
/// passed (`deadline_exceeded`) or a cancel won before dispatch
/// (`cancelled`). The caller delivers the failure outcome.
struct ReapedRequest {
    InferenceRequest request;
    ServeStatus status = ServeStatus::cancelled;
    /// True when the cost hook shed this request before its deadline
    /// actually passed: predicted service time alone already overruns
    /// it, so running it would only waste a forward.
    bool predicted_infeasible = false;
};

/// One batch-forming decision.
struct BatchResult {
    /// Claimed, same-task, same-lane requests ready for one forward;
    /// nullopt when nothing is ready.
    std::optional<std::vector<InferenceRequest>> batch;
    /// Requests reaped by deadline expiry / cancellation this call.
    std::vector<ReapedRequest> reaped;
};

class TaskBatcher {
public:
    explicit TaskBatcher(BatcherConfig config);

    const BatcherConfig& config() const noexcept { return config_; }

    /// Takes ownership of a request, routing it to its priority lane.
    void add(InferenceRequest request);

    bool empty() const noexcept {
        return interactive_.empty() && batch_.empty();
    }
    std::size_t pending_count() const noexcept {
        return interactive_.size() + batch_.size();
    }

    /// When non-empty: the next instant the batcher needs attention —
    /// the earliest max_wait expiry of a lane front, or the earliest
    /// request deadline (so expired requests are reaped promptly). The
    /// dispatch loop sleeps until then.
    std::optional<Clock::time_point> next_deadline() const;

    /// Reaps expired/cancelled requests, then forms the next batch if
    /// one is ready at `now`: the candidate group is full, the chosen
    /// lane's oldest request has expired its max_wait, or `flush` forces
    /// whatever exists out. The interactive lane is always tried first.
    BatchResult next_batch(Clock::time_point now, bool flush = false);

private:
    using Lane = std::deque<InferenceRequest>;

    void reap_lane(Lane& lane, Clock::time_point now,
                   std::vector<ReapedRequest>& reaped);
    std::optional<std::vector<InferenceRequest>> form_from(
        Lane& lane, Clock::time_point now, bool flush,
        std::vector<ReapedRequest>& reaped);

    BatcherConfig config_;
    Lane interactive_;
    Lane batch_;
};

}  // namespace mime::serve
