// Shared submission/completion bookkeeping for InferenceService
// implementations.
//
// InferenceServer and ServerPool used to each re-declare the same
// cluster of state: submitted/completed counters, the drained_ condvar,
// the idempotent stopped_ flag, and the first-accept / last-completion
// wall-clock window behind throughput_rps. ServiceState is that cluster
// factored out once: the front door registers accepted submissions (and
// rolls back ones whose enqueue raced with close), the dispatch side
// records terminal deliveries, and drain()/begin_stop() provide the
// blocking and idempotence semantics both backends share.
#pragma once

#include <cstdint>
#include <optional>

#include "common/sync.h"
#include "serve/request.h"

namespace mime::serve {

class ServiceState {
public:
    /// Registers one accepted submission and returns its service-local
    /// id, or nullopt once stop has begun (the caller rejects with
    /// ServeStatus::shutdown). The first registration opens the
    /// throughput window.
    std::optional<std::int64_t> register_submit(Clock::time_point now)
        MIME_EXCLUDES(mutex_);

    /// Rolls back a registration whose enqueue lost a race with close,
    /// so drain() still terminates.
    void rollback_submit() MIME_EXCLUDES(mutex_);

    /// Records `count` terminal deliveries (results or structured
    /// failures) and advances the throughput window.
    void complete(std::size_t count, Clock::time_point now)
        MIME_EXCLUDES(mutex_);

    /// Blocks until every registered submission has completed.
    void drain() MIME_EXCLUDES(mutex_);

    /// Marks the service stopping. True exactly once; callers skip
    /// their teardown on repeat calls.
    bool begin_stop() MIME_EXCLUDES(mutex_);

    bool stopped() const MIME_EXCLUDES(mutex_);
    std::int64_t submitted() const MIME_EXCLUDES(mutex_);
    std::int64_t completed() const MIME_EXCLUDES(mutex_);

    /// Completed requests per wall-clock second between the first
    /// registration and the last completion. Returns 0 — never inf/NaN
    /// — while nothing completed or when the window is zero-length (a
    /// single instantly-completed request).
    double throughput_rps() const MIME_EXCLUDES(mutex_);

private:
    mutable Mutex mutex_;
    CondVar drained_;
    std::int64_t next_id_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t submitted_ MIME_GUARDED_BY(mutex_) = 0;
    std::int64_t completed_ MIME_GUARDED_BY(mutex_) = 0;
    Clock::time_point first_enqueue_ MIME_GUARDED_BY(mutex_) = {};
    Clock::time_point last_completion_ MIME_GUARDED_BY(mutex_) = {};
    bool stopped_ MIME_GUARDED_BY(mutex_) = false;
};

}  // namespace mime::serve
