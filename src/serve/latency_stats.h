// Latency / throughput accounting for the serving runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mime::serve {

/// Accumulates per-request latencies (microseconds) and answers
/// percentile queries. Count, mean and max are exact over everything
/// ever added; percentiles are computed over a bounded reservoir
/// (uniform sample of the stream), so memory stays fixed on a
/// long-running server. Percentiles use the nearest-rank method.
class LatencyRecorder {
public:
    /// One sorted pass worth of quantiles (cheaper than four
    /// percentile() calls, which each sort a copy).
    struct Summary {
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;  ///< p99.9, the SLO tail quantile
    };

    void add(double latency_us);

    /// Folds another recorder's stream into this one, as if every sample
    /// had been add()ed here: counts/mean/max are exact, and the merged
    /// reservoir draws from each side proportionally to the stream it
    /// represents. This is how pool-wide percentiles are formed —
    /// averaging per-replica percentiles would be statistically wrong.
    void merge(const LatencyRecorder& other);

    /// Total samples ever added (not just those retained).
    std::int64_t count() const noexcept { return count_; }
    double mean() const;
    double max() const;
    /// Nearest-rank percentile over the retained reservoir; `p` in
    /// (0, 100].
    double percentile(double p) const;
    Summary summary() const;

    void clear();

private:
    /// Reservoir bound: exact percentiles below this, a uniform sample
    /// of the stream beyond it (~512 KiB ceiling).
    static constexpr std::size_t kMaxSamples = 1 << 16;

    std::vector<double> samples_;
    std::int64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
    Rng reservoir_rng_{0x1a7e'9c5du};
};

}  // namespace mime::serve
