// Tests for the synthetic task family and dataloaders.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "data/task_suite.h"

namespace mime::data {
namespace {

TEST(SyntheticFamily, ParentRegisteredAtConstruction) {
    SyntheticTaskFamily family(1, /*parent_classes=*/20);
    EXPECT_EQ(family.task_count(), 1);
    EXPECT_EQ(family.parent().num_classes, 20);
    EXPECT_EQ(family.parent().name, "parent");
}

TEST(SyntheticFamily, GeneratesRequestedShapes) {
    SyntheticTaskFamily family(1);
    TaskSpec spec;
    spec.name = "child";
    spec.num_classes = 5;
    spec.train_size = 40;
    spec.test_size = 12;
    const auto idx = family.add_task(spec);

    const Dataset train = family.train_split(idx);
    const Dataset test = family.test_split(idx);
    EXPECT_EQ(train.size(), 40);
    EXPECT_EQ(test.size(), 12);
    EXPECT_EQ(train.images().shape(), Shape({40, 3, 32, 32}));
}

TEST(SyntheticFamily, LabelsCoverAllClasses) {
    SyntheticTaskFamily family(2);
    TaskSpec spec;
    spec.name = "child";
    spec.num_classes = 4;
    spec.train_size = 200;
    const auto idx = family.add_task(spec);
    const Dataset train = family.train_split(idx);
    std::set<std::int64_t> seen(train.labels().begin(), train.labels().end());
    EXPECT_EQ(seen.size(), 4u);
    EXPECT_GE(*seen.begin(), 0);
    EXPECT_LT(*seen.rbegin(), 4);
}

TEST(SyntheticFamily, DeterministicAcrossInstances) {
    SyntheticTaskFamily a(7);
    SyntheticTaskFamily b(7);
    TaskSpec spec;
    spec.name = "child";
    spec.train_size = 10;
    a.add_task(spec);
    b.add_task(spec);
    const Dataset da = a.train_split(1);
    const Dataset db = b.train_split(1);
    for (std::int64_t i = 0; i < da.images().numel(); ++i) {
        ASSERT_EQ(da.images()[i], db.images()[i]);
    }
    EXPECT_EQ(da.labels(), db.labels());
}

TEST(SyntheticFamily, TrainAndTestSplitsDiffer) {
    SyntheticTaskFamily family(7);
    TaskSpec spec;
    spec.name = "child";
    spec.train_size = 20;
    spec.test_size = 20;
    const auto idx = family.add_task(spec);
    const Dataset train = family.train_split(idx);
    const Dataset test = family.test_split(idx);
    bool differs = false;
    for (std::int64_t i = 0; i < train.images().numel() && !differs; ++i) {
        differs = train.images()[i] != test.images()[i];
    }
    EXPECT_TRUE(differs);
}

TEST(SyntheticFamily, SeedsProduceDifferentData) {
    SyntheticTaskFamily a(1);
    SyntheticTaskFamily b(2);
    const Dataset da = a.train_split(0);
    const Dataset db = b.train_split(0);
    bool differs = false;
    for (std::int64_t i = 0; i < 100 && !differs; ++i) {
        differs = da.images()[i] != db.images()[i];
    }
    EXPECT_TRUE(differs);
}

TEST(SyntheticFamily, GrayscaleStyleProperties) {
    SyntheticTaskFamily family(3);
    TaskSpec spec;
    spec.name = "fmnist-like";
    spec.style = ImageStyle::grayscale;
    spec.train_size = 4;
    const auto idx = family.add_task(spec);
    const Dataset ds = family.train_split(idx);
    const Tensor& img = ds.images();

    constexpr std::int64_t plane = 32 * 32;
    for (std::int64_t n = 0; n < 4; ++n) {
        const float* base = img.data() + n * 3 * plane;
        // All channels identical (grayscale replicated).
        for (std::int64_t i = 0; i < plane; ++i) {
            EXPECT_EQ(base[i], base[plane + i]);
            EXPECT_EQ(base[i], base[2 * plane + i]);
        }
        // 2-pixel border zeroed (28x28 content in a 32x32 canvas).
        EXPECT_EQ(base[0], 0.0f);
        EXPECT_EQ(base[31], 0.0f);
        EXPECT_EQ(base[plane - 1], 0.0f);
    }
}

TEST(SyntheticFamily, PixelRangeBounded) {
    SyntheticTaskFamily family(4);
    const Dataset ds = family.train_split(0);
    // tanh output plus small noise: comfortably inside [-2, 2].
    EXPECT_GE(min_value(ds.images()), -2.0f);
    EXPECT_LE(max_value(ds.images()), 2.0f);
}

TEST(SyntheticFamily, RejectsBadSpecs) {
    SyntheticTaskFamily family(1);
    TaskSpec bad;
    bad.num_classes = 1;
    EXPECT_THROW(family.add_task(bad), mime::check_error);
    bad = TaskSpec{};
    bad.parent_affinity = 2.0;
    EXPECT_THROW(family.add_task(bad), mime::check_error);
    EXPECT_THROW(family.task(9), mime::check_error);
}

TEST(Dataset, GatherAndHead) {
    SyntheticTaskFamily family(5);
    const Dataset ds = family.train_split(0);
    const Batch head = ds.head(3);
    EXPECT_EQ(head.size(), 3);
    const Batch picked = ds.gather({2, 0});
    EXPECT_EQ(picked.size(), 2);
    EXPECT_EQ(picked.labels[0], ds.labels()[2]);
    EXPECT_EQ(picked.labels[1], ds.labels()[0]);
    EXPECT_THROW(ds.head(ds.size() + 1), mime::check_error);
}

TEST(DataLoader, EpochCoversDatasetOnce) {
    SyntheticTaskFamily family(6);
    TaskSpec spec;
    spec.name = "child";
    spec.train_size = 25;
    const auto idx = family.add_task(spec);
    const Dataset ds = family.train_split(idx);

    DataLoader loader(ds, 10, Rng(1));
    const auto batches = loader.epoch();
    ASSERT_EQ(batches.size(), 3u);  // 10 + 10 + 5
    EXPECT_EQ(batches[0].size(), 10);
    EXPECT_EQ(batches[2].size(), 5);
    EXPECT_EQ(loader.batches_per_epoch(), 3);

    std::int64_t total = 0;
    for (const auto& b : batches) {
        total += b.size();
    }
    EXPECT_EQ(total, 25);
}

TEST(DataLoader, ShufflesBetweenEpochs) {
    SyntheticTaskFamily family(6);
    const Dataset ds = family.train_split(0);
    DataLoader loader(ds, static_cast<std::int64_t>(ds.size()), Rng(3));
    const auto e1 = loader.epoch();
    const auto e2 = loader.epoch();
    bool differs = false;
    for (std::size_t i = 0; i < e1[0].labels.size() && !differs; ++i) {
        differs = e1[0].labels[i] != e2[0].labels[i];
    }
    EXPECT_TRUE(differs);
}

TEST(TaskSuite, CanonicalTasksRegistered) {
    TaskSuiteOptions options;
    options.train_size = 8;
    options.test_size = 8;
    options.cifar100_classes = 20;
    const TaskSuite suite = make_task_suite(options);
    EXPECT_EQ(suite.family->task_count(), 4);
    EXPECT_EQ(suite.family->task(suite.cifar10_like).num_classes, 10);
    EXPECT_EQ(suite.family->task(suite.cifar100_like).num_classes, 20);
    EXPECT_EQ(suite.family->task(suite.fmnist_like).style,
              ImageStyle::grayscale);
    EXPECT_EQ(suite.children().size(), 3u);
}

}  // namespace
}  // namespace mime::data
