// Tests for the int8 GEMM kernel against the reference triple loop.
// Integer arithmetic is exact, so every comparison here is bit-for-bit
// (memcmp), including across thread counts and row compaction — the
// contract the quantized planned executor's determinism rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/qgemm.h"

namespace mime {
namespace {

std::vector<std::int8_t> random_int8(std::int64_t rows, std::int64_t cols,
                                     Rng& rng) {
    std::vector<std::int8_t> m(static_cast<std::size_t>(rows * cols));
    for (auto& v : m) {
        // Full quantized range [-127, 127].
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniform_index(255)) - 127);
    }
    return m;
}

void expect_bit_equal(const std::vector<std::int32_t>& a,
                      const std::vector<std::int32_t>& b) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(std::int32_t)));
}

// (m, n, k) — covers single element, tile edges (16-column boundary,
// 4-row register tile), odd-k pairing tail, scalar column tail, and
// the tiny-VGG conv shapes the quantized executor actually runs.
using QgemmCase = std::tuple<int, int, int>;

class QgemmParamTest : public ::testing::TestWithParam<QgemmCase> {};

TEST_P(QgemmParamTest, MatchesReferenceBitExact) {
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 73 + n * 31 + k));
    const auto a = random_int8(m, k, rng);
    const auto b = random_int8(k, n, rng);

    std::vector<std::int32_t> c_ref(static_cast<std::size_t>(m * n), -1);
    std::vector<std::int32_t> c_fast(static_cast<std::size_t>(m * n), 7);

    qgemm_reference(m, n, k, a.data(), k, b.data(), n, c_ref.data(), n);
    qgemm(m, n, k, a.data(), k, b.data(), n, c_fast.data(), n);
    expect_bit_equal(c_ref, c_fast);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QgemmParamTest,
    ::testing::Values(QgemmCase{1, 1, 1},
                      QgemmCase{1, 16, 2},
                      QgemmCase{3, 5, 7},     // scalar column tail only
                      QgemmCase{4, 16, 8},    // exactly one 4x16 tile
                      QgemmCase{5, 17, 9},    // every tail at once, odd k
                      QgemmCase{64, 64, 64},
                      QgemmCase{65, 33, 17},
                      QgemmCase{128, 1, 256},
                      QgemmCase{1, 128, 255},
                      QgemmCase{4, 1024, 27},  // tiny-VGG conv1
                      QgemmCase{32, 16, 288},  // tiny-VGG conv11-13
                      QgemmCase{200, 150, 300}));

TEST(Qgemm, ThreadedBitMatchesSingle) {
    Rng rng(9);
    const std::int64_t m = 300;
    const std::int64_t n = 120;
    const std::int64_t k = 80;
    const auto a = random_int8(m, k, rng);
    const auto b = random_int8(k, n, rng);
    std::vector<std::int32_t> c1(static_cast<std::size_t>(m * n), 0);
    std::vector<std::int32_t> c2 = c1;

    qgemm(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    ThreadPool pool(4);
    qgemm(m, n, k, a.data(), k, b.data(), n, c2.data(), n, &pool);
    expect_bit_equal(c1, c2);
}

TEST(Qgemm, SaturatedOperandsDoNotOverflow) {
    // Worst cases at the documented accumulator bound: the largest
    // positive product is (-128)*(-128) = 16384, the most negative is
    // 127*(-128) = -16256. k * 16384 must still fit in int32 (UBSan in
    // CI turns any slip here into a hard failure, not a silent wrap).
    const std::int64_t k = kQgemmMaxK;
    std::vector<std::int8_t> a(static_cast<std::size_t>(k), -128);
    std::vector<std::int8_t> b(static_cast<std::size_t>(k), -128);
    std::vector<std::int32_t> c(1, 0);
    qgemm(1, 1, k, a.data(), k, b.data(), 1, c.data(), 1);
    EXPECT_EQ(c[0], static_cast<std::int32_t>(16384LL * k));

    std::vector<std::int32_t> c_ref(1, 0);
    qgemm_reference(1, 1, k, a.data(), k, b.data(), 1, c_ref.data(), 1);
    EXPECT_EQ(c[0], c_ref[0]);

    std::fill(a.begin(), a.end(), static_cast<std::int8_t>(127));
    qgemm(1, 1, k, a.data(), k, b.data(), 1, c.data(), 1);
    EXPECT_EQ(c[0], static_cast<std::int32_t>(-16256LL * k));
    qgemm_reference(1, 1, k, a.data(), k, b.data(), 1, c_ref.data(), 1);
    EXPECT_EQ(c[0], c_ref[0]);
}

TEST(Qgemm, RejectsContractionBeyondAccumulatorBound) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(kQgemmMaxK) + 1, 1);
    std::vector<std::int8_t> b(static_cast<std::size_t>(kQgemmMaxK) + 1, 1);
    std::vector<std::int32_t> c(1, 0);
    EXPECT_THROW(qgemm(1, 1, kQgemmMaxK + 1, a.data(), kQgemmMaxK + 1,
                       b.data(), 1, c.data(), 1),
                 check_error);
}

TEST(Qgemm, ZeroSizeIsNoop) {
    std::vector<std::int32_t> c{42};
    const std::vector<std::int8_t> a{1};
    const std::vector<std::int8_t> b{1};
    qgemm(0, 1, 1, a.data(), 1, b.data(), 1, c.data(), 1);
    EXPECT_EQ(c[0], 42);
}

TEST(Qgemm, ZeroKOverwritesWithZero) {
    // C is overwrite-only (no beta): a zero-depth contraction must
    // still clear the output.
    std::vector<std::int32_t> c{42, -7};
    const std::vector<std::int8_t> a{1};
    const std::vector<std::int8_t> b{1};
    qgemm(1, 2, 0, a.data(), 1, b.data(), 2, c.data(), 2);
    EXPECT_EQ(c[0], 0);
    EXPECT_EQ(c[1], 0);
}

TEST(Qgemm, RejectsNullOperands) {
    std::vector<std::int32_t> c{0};
    EXPECT_THROW(
        qgemm(1, 1, 1, nullptr, 1, nullptr, 1, c.data(), 1), check_error);
}

TEST(QgemmRows, MatchesCompactedReference) {
    Rng rng(41);
    const std::int64_t m = 37;
    const std::int64_t n = 53;
    const std::int64_t k = 300;
    const auto a = random_int8(m, k, rng);
    const auto b = random_int8(k, n, rng);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; r += 3) {
        rows.push_back(r);
    }
    const auto rc = static_cast<std::int64_t>(rows.size());

    // Reference: gather the live columns of A / rows of B into dense
    // compacted operands and run the oracle triple loop.
    std::vector<std::int8_t> a_c(static_cast<std::size_t>(m * rc));
    std::vector<std::int8_t> b_c(static_cast<std::size_t>(rc * n));
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < rc; ++p) {
            a_c[i * rc + p] = a[i * k + rows[p]];
        }
    }
    for (std::int64_t p = 0; p < rc; ++p) {
        for (std::int64_t j = 0; j < n; ++j) {
            b_c[p * n + j] = b[rows[p] * n + j];
        }
    }
    std::vector<std::int32_t> c_ref(static_cast<std::size_t>(m * n), 1);
    std::vector<std::int32_t> c_rows(static_cast<std::size_t>(m * n), 2);
    qgemm_reference(m, n, rc, a_c.data(), rc, b_c.data(), n, c_ref.data(), n);
    qgemm_rows(m, n, k, rows.data(), rc, a.data(), k, b.data(), n,
               c_rows.data(), n);
    expect_bit_equal(c_ref, c_rows);
}

TEST(QgemmRows, BitMatchesDenseWhenSkippedRowsAreZero) {
    Rng rng(42);
    const std::int64_t m = 19;
    const std::int64_t n = 47;
    const std::int64_t k = 160;
    const auto a = random_int8(m, k, rng);
    auto b = random_int8(k, n, rng);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; ++r) {
        if (r % 5 == 2) {
            rows.push_back(r);
        } else {
            std::fill(b.begin() + r * n, b.begin() + (r + 1) * n,
                      std::int8_t{0});
        }
    }
    std::vector<std::int32_t> c_dense(static_cast<std::size_t>(m * n), -7);
    std::vector<std::int32_t> c_sparse = c_dense;
    qgemm(m, n, k, a.data(), k, b.data(), n, c_dense.data(), n);
    qgemm_rows(m, n, k, rows.data(), static_cast<std::int64_t>(rows.size()),
               a.data(), k, b.data(), n, c_sparse.data(), n);
    expect_bit_equal(c_dense, c_sparse);
}

TEST(QgemmRows, SkippedRowsOfBAreNeverRead) {
    // Garbage (even saturating) values in the dead rows must not leak
    // into the result — the executor's im2col leaves them stale.
    Rng rng(43);
    const std::int64_t m = 6;
    const std::int64_t n = 33;
    const std::int64_t k = 24;
    const auto a = random_int8(m, k, rng);
    auto b = random_int8(k, n, rng);
    std::vector<std::int64_t> rows{0, 5, 11, 12, 23};
    std::vector<std::int32_t> c_before(static_cast<std::size_t>(m * n), 0);
    qgemm_rows(m, n, k, rows.data(), static_cast<std::int64_t>(rows.size()),
               a.data(), k, b.data(), n, c_before.data(), n);
    for (std::int64_t r = 0; r < k; ++r) {
        if (std::find(rows.begin(), rows.end(), r) == rows.end()) {
            std::fill(b.begin() + r * n, b.begin() + (r + 1) * n,
                      std::int8_t{-128});
        }
    }
    std::vector<std::int32_t> c_after(static_cast<std::size_t>(m * n), 0);
    qgemm_rows(m, n, k, rows.data(), static_cast<std::int64_t>(rows.size()),
               a.data(), k, b.data(), n, c_after.data(), n);
    expect_bit_equal(c_before, c_after);
}

TEST(QgemmRows, ThreadedBitMatchesSingle) {
    Rng rng(44);
    const std::int64_t m = 260;
    const std::int64_t n = 40;
    const std::int64_t k = 90;
    const auto a = random_int8(m, k, rng);
    const auto b = random_int8(k, n, rng);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; r += 2) {
        rows.push_back(r);
    }
    std::vector<std::int32_t> c1(static_cast<std::size_t>(m * n), 0);
    std::vector<std::int32_t> c2 = c1;
    qgemm_rows(m, n, k, rows.data(), static_cast<std::int64_t>(rows.size()),
               a.data(), k, b.data(), n, c1.data(), n);
    ThreadPool pool(4);
    qgemm_rows(m, n, k, rows.data(), static_cast<std::int64_t>(rows.size()),
               a.data(), k, b.data(), n, c2.data(), n, &pool);
    expect_bit_equal(c1, c2);
}

TEST(QgemmRows, EmptyRowListWritesZero) {
    const std::vector<std::int8_t> a{1, 2};
    const std::vector<std::int8_t> b{3, 4};
    std::vector<std::int32_t> c{5, 6};
    qgemm_rows(1, 2, 2, nullptr, 0, a.data(), 2, b.data(), 2, c.data(), 2);
    EXPECT_EQ(c[0], 0);
    EXPECT_EQ(c[1], 0);
}

TEST(QgemmRows, RejectsUnsortedOrOutOfRangeRows) {
    const std::vector<std::int8_t> a{1, 2};
    const std::vector<std::int8_t> b{3, 4};
    std::vector<std::int32_t> c{0, 0};
    const std::vector<std::int64_t> bad{1, 0};
    EXPECT_THROW(qgemm_rows(1, 2, 2, bad.data(), 2, a.data(), 2, b.data(), 2,
                            c.data(), 2),
                 check_error);
    const std::vector<std::int64_t> oob{0, 2};
    EXPECT_THROW(qgemm_rows(1, 2, 2, oob.data(), 2, a.data(), 2, b.data(), 2,
                            c.data(), 2),
                 check_error);
}

TEST(Qgemm, KernelNameIsStable) {
    const std::string name = qgemm_kernel_name();
    EXPECT_TRUE(name == "avx2-int8" || name == "scalar") << name;
}

}  // namespace
}  // namespace mime
