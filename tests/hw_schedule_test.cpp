// Tests for queue construction/analysis and the arrival-order weight
// reload model (interleaving-granularity mechanics).
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/schedule.h"

namespace mime::hw {
namespace {

std::vector<arch::LayerSpec> layers() {
    arch::VggConfig config;
    config.input_size = 64;
    return arch::vgg16_spec(config);
}

std::vector<SparsityProfile> three_profiles() {
    return {SparsityProfile::paper_baseline(PaperTask::cifar10),
            SparsityProfile::paper_baseline(PaperTask::cifar100),
            SparsityProfile::paper_baseline(PaperTask::fmnist)};
}

TEST(Queue, RunQueueShapes) {
    const auto rr = make_run_queue(3, 1, 6);
    EXPECT_EQ(rr, (std::vector<std::int64_t>{0, 1, 2, 0, 1, 2}));
    const auto runs = make_run_queue(2, 3, 6);
    EXPECT_EQ(runs, (std::vector<std::int64_t>{0, 0, 0, 1, 1, 1}));
    const auto truncated = make_run_queue(2, 4, 6);
    EXPECT_EQ(truncated, (std::vector<std::int64_t>{0, 0, 0, 0, 1, 1}));
}

TEST(Queue, AnalyzeCountsSwitchesAndRuns) {
    const auto stats = analyze_queue({0, 1, 2, 0, 1, 2});
    EXPECT_EQ(stats.length, 6);
    EXPECT_EQ(stats.distinct_tasks, 3);
    EXPECT_EQ(stats.task_switches, 5);
    EXPECT_DOUBLE_EQ(stats.mean_run_length, 1.0);

    const auto grouped = analyze_queue({0, 0, 0, 1, 1, 1});
    EXPECT_EQ(grouped.task_switches, 1);
    EXPECT_DOUBLE_EQ(grouped.mean_run_length, 3.0);
}

TEST(Queue, TaskMajorOrderMinimizesSwitches) {
    const auto queue = make_run_queue(3, 1, 9);
    const auto sorted = task_major_order(queue);
    const auto stats = analyze_queue(sorted);
    EXPECT_EQ(stats.task_switches, 2);  // tasks - 1
    EXPECT_EQ(stats.distinct_tasks, 3);
}

TEST(Queue, RejectsBadParameters) {
    EXPECT_THROW(make_run_queue(0, 1, 5), mime::check_error);
    EXPECT_THROW(make_run_queue(2, 0, 5), mime::check_error);
    EXPECT_THROW(analyze_queue({}), mime::check_error);
}

TEST(ArrivalOrder, ReorderingDefaultMatchesVersionCount) {
    // preserve_arrival_order = false (default): fine interleaving costs
    // the same as task-major — V_w weight loads per layer.
    const InferenceSimulator sim{SystolicConfig{}};
    SimulationOptions fine;
    fine.scheme = Scheme::baseline_sparse;
    fine.batch = make_run_queue(3, 1, 9);
    fine.profiles = three_profiles();
    SimulationOptions grouped = fine;
    grouped.batch = make_run_queue(3, 3, 9);

    const auto fine_run = sim.run(layers(), fine);
    const auto grouped_run = sim.run(layers(), grouped);
    EXPECT_DOUBLE_EQ(fine_run.total_counts.dram_weight_words,
                     grouped_run.total_counts.dram_weight_words);
}

TEST(ArrivalOrder, PreservedOrderPaysPerSwitch) {
    // preserve_arrival_order = true: round-robin reloads weights at every
    // switch for layers whose versions cannot coexist in cache.
    const InferenceSimulator sim{SystolicConfig{}};
    SimulationOptions fine;
    fine.scheme = Scheme::baseline_sparse;
    fine.batch = make_run_queue(3, 1, 9);   // 8 switches, 9 runs
    fine.profiles = three_profiles();
    fine.preserve_arrival_order = true;
    SimulationOptions grouped = fine;
    grouped.batch = make_run_queue(3, 3, 9);  // 2 switches, 3 runs

    const auto fine_run = sim.run(layers(), fine);
    const auto grouped_run = sim.run(layers(), grouped);
    EXPECT_GT(fine_run.total_counts.dram_weight_words,
              grouped_run.total_counts.dram_weight_words);
}

TEST(ArrivalOrder, MimeInsensitiveToInterleaving) {
    // MIME's single weight version never reloads, regardless of order.
    const InferenceSimulator sim{SystolicConfig{}};
    SimulationOptions fine;
    fine.scheme = Scheme::mime;
    fine.batch = make_run_queue(3, 1, 9);
    fine.profiles = {SparsityProfile::paper_mime(PaperTask::cifar10),
                     SparsityProfile::paper_mime(PaperTask::cifar100),
                     SparsityProfile::paper_mime(PaperTask::fmnist)};
    fine.preserve_arrival_order = true;
    SimulationOptions grouped = fine;
    grouped.batch = make_run_queue(3, 3, 9);

    const auto fine_run = sim.run(layers(), fine);
    const auto grouped_run = sim.run(layers(), grouped);
    EXPECT_DOUBLE_EQ(fine_run.total_counts.dram_weight_words,
                     grouped_run.total_counts.dram_weight_words);
}

TEST(ArrivalOrder, SmallLayersTolerateInterleaving) {
    // conv1's three weight versions fit the cache together, so even
    // arrival-order processing loads each version once.
    const InferenceSimulator sim{SystolicConfig{}};
    SimulationOptions options;
    options.scheme = Scheme::baseline_sparse;
    options.batch = make_run_queue(3, 1, 9);
    options.profiles = three_profiles();
    options.preserve_arrival_order = true;
    const auto run = sim.run(layers(), options);

    const auto& conv1 = run.layer("conv1");
    const double conv1_weights =
        static_cast<double>(layers()[0].weight_count());
    EXPECT_DOUBLE_EQ(conv1.counts.dram_weight_words, 3.0 * conv1_weights);
    // conv8 (1.18M words/version) thrashes: one load per run (9 runs).
    const auto& conv8 = run.layer("conv8");
    const double conv8_weights =
        static_cast<double>(layers()[7].weight_count());
    EXPECT_DOUBLE_EQ(conv8.counts.dram_weight_words, 9.0 * conv8_weights);
}

TEST(ArrivalOrder, QueueEnergyHelperOrdersSchemes) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto queue = make_run_queue(3, 1, 6);
    const double conventional = queue_energy(
        sim, layers(), Scheme::baseline_sparse, queue, three_profiles());
    const double mime = queue_energy(
        sim, layers(), Scheme::mime, queue,
        {SparsityProfile::paper_mime(PaperTask::cifar10),
         SparsityProfile::paper_mime(PaperTask::cifar100),
         SparsityProfile::paper_mime(PaperTask::fmnist)});
    EXPECT_GT(conventional, mime);
}

}  // namespace
}  // namespace mime::hw
