// Sparse planned executor tests: the row-compacted path must bit-match
// dense planned execution across architectures, batch sizes, batchnorm
// variants, mid-stream threshold swaps, and the all-dead / all-live
// edge cases — and stay allocation-free after warm-up.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "arch/plain_cnn.h"
#include "common/thread_pool.h"
#include "core/mime_network.h"
#include "tensor/workspace.h"

namespace mime {
namespace {

core::MimeNetworkConfig vgg_config(bool batchnorm) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.batchnorm = batchnorm;
    config.seed = 5;
    return config;
}

core::MimeNetworkConfig cnn_config(bool batchnorm) {
    arch::PlainCnnConfig cnn;
    cnn.input_size = 32;
    cnn.blocks = {{16, 2}, {32, 2}};
    cnn.fc_widths = {64};
    cnn.num_classes = 10;
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.batchnorm = batchnorm;
    config.seed = 7;
    return config;
}

/// Structurally prunes every site: channel c stays live iff
/// c % keep_mod == live_rem; live channels keep a small finite
/// threshold so they still mask data-dependently.
void prune_channels(core::MimeNetwork& net, std::int64_t keep_mod,
                    std::int64_t live_rem = 0) {
    for (std::int64_t s = 0; s < net.site_count(); ++s) {
        core::ThresholdMask& mask = net.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const Shape& shape = mask.activation_shape();
        const std::int64_t channels = shape.dim(0);
        const std::int64_t extent = shape.numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value = (c % keep_mod == live_rem)
                                    ? 0.05f
                                    : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

std::vector<float> tensor_copy(const Tensor& t) {
    return std::vector<float>(t.data(), t.data() + t.numel());
}

bool bit_equal(const std::vector<float>& a, const Tensor& b) {
    return a.size() == static_cast<std::size_t>(b.numel()) &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// (use vgg?, batchnorm?, batch size)
using SparseCase = std::tuple<bool, bool, int>;

class SparseForwardTest : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseForwardTest, BitMatchesDensePlanned) {
    const auto [use_vgg, batchnorm, batch] = GetParam();
    core::MimeNetwork net(use_vgg ? vgg_config(batchnorm)
                                  : cnn_config(batchnorm));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, /*keep_mod=*/4);

    Rng rng(17);
    const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
    Workspace workspace;

    net.set_sparse_execution({false, 0.85});
    const std::vector<float> dense =
        tensor_copy(net.forward_planned(x, workspace));
    ASSERT_EQ(net.planned_sparse_hits(), 0u);

    net.set_sparse_execution({true, 0.85});
    const Tensor& sparse = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(dense, sparse))
        << "sparse planned logits diverge from dense";
    EXPECT_GT(net.planned_sparse_hits(), 0u);
    EXPECT_GT(net.planned_skipped_macs(), 0u);
    EXPECT_GT(net.planned_dense_macs(), net.planned_skipped_macs());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseForwardTest,
    ::testing::Combine(::testing::Bool(),        // vgg / plain-cnn
                       ::testing::Bool(),        // batchnorm
                       ::testing::Values(1, 7, 32)));

TEST(SparseForward, MidStreamThresholdSwapRebuildsActiveSets) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);

    // Two tasks with different live-channel patterns.
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");

    Rng rng(23);
    const Tensor x = Tensor::randn({7, 3, 32, 32}, rng);
    Workspace workspace;

    auto dense_logits = [&](const core::ThresholdSet& task) {
        net.load_thresholds(task);
        net.set_sparse_execution({false, 0.85});
        return tensor_copy(net.forward_planned(x, workspace));
    };
    const std::vector<float> dense_a = dense_logits(task_a);
    const std::vector<float> dense_b = dense_logits(task_b);
    ASSERT_NE(0, std::memcmp(dense_a.data(), dense_b.data(),
                             dense_a.size() * sizeof(float)))
        << "tasks must differ for the swap test to mean anything";

    net.set_sparse_execution({true, 0.85});
    core::ThresholdMask& probe = net.site(0).mask();

    net.load_thresholds(task_a);
    const std::uint64_t version_a = probe.active_set().version;
    const double density_a = probe.active_set().channel_density();
    EXPECT_TRUE(bit_equal(dense_a, net.forward_planned(x, workspace)));

    // Swap mid-stream: the next forward must pick up task B's live sets
    // (stale active sets would compute task A's sparsity pattern).
    net.load_thresholds(task_b);
    EXPECT_TRUE(bit_equal(dense_b, net.forward_planned(x, workspace)));
    EXPECT_GT(probe.active_set().version, version_a);
    EXPECT_NE(probe.active_set().channel_density(), density_a);

    // And back again.
    net.load_thresholds(task_a);
    EXPECT_TRUE(bit_equal(dense_a, net.forward_planned(x, workspace)));
}

TEST(SparseForward, AllDeadMasksBitMatchDense) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(core::kPrunedThreshold);

    Rng rng(29);
    const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
    Workspace workspace;

    net.set_sparse_execution({false, 0.85});
    const std::vector<float> dense =
        tensor_copy(net.forward_planned(x, workspace));
    net.set_sparse_execution({true, 0.85});
    const Tensor& sparse = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(dense, sparse));
    EXPECT_GT(net.planned_sparse_hits(), 0u);
}

TEST(SparseForward, AllLiveMasksFallBackDense) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(0.05f);  // finite everywhere: nothing pruned

    Rng rng(31);
    const Tensor x = Tensor::randn({4, 3, 32, 32}, rng);
    Workspace workspace;
    net.set_sparse_execution({true, 0.85});
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_sparse_hits(), 0u);
    EXPECT_EQ(net.planned_skipped_macs(), 0u);
    EXPECT_GT(net.planned_dense_macs(), 0u);
}

TEST(SparseForward, DensityCutoffGatesSparsePath) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);  // 25% channel density

    Rng rng(37);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    Workspace workspace;

    // Cutoff below the measured density: everything runs dense.
    net.set_sparse_execution({true, 0.1});
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_sparse_hits(), 0u);

    // Cutoff above it: the compacted path engages.
    net.set_sparse_execution({true, 1.0});
    net.forward_planned(x, workspace);
    EXPECT_GT(net.planned_sparse_hits(), 0u);
}

TEST(SparseForward, BandedPoolBitMatchesSingleThread) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);
    net.set_sparse_execution({true, 0.85});

    Rng rng(41);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    const std::vector<float> single =
        tensor_copy(net.forward_planned(x, workspace));

    // With a pool the planned conv splits samples across bands; the
    // per-sample math is unchanged, so outputs stay bit-identical (and
    // TSan validates the banding has no races).
    ThreadPool pool(4);
    net.set_pool(&pool);
    const Tensor& banded = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(single, banded));
    net.set_pool(nullptr);
}

TEST(SparseForward, ZeroAllocationsAfterWarmUp) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");
    net.set_sparse_execution({true, 0.85});

    Rng rng(43);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    // Warm-up: plan build, workspace reserve, first sparse pass for
    // both tasks (active-set vectors size themselves here).
    net.load_thresholds(task_a);
    net.forward_planned(x, workspace);
    net.load_thresholds(task_b);
    net.forward_planned(x, workspace);

    const std::int64_t alloc0 = Tensor::storage_allocation_count();
    for (int i = 0; i < 4; ++i) {
        net.load_thresholds(i % 2 == 0 ? task_a : task_b);
        net.forward_planned(x, workspace);
    }
    EXPECT_EQ(Tensor::storage_allocation_count() - alloc0, 0)
        << "sparse planned path must stay allocation-free after warm-up, "
           "including across task swaps";
}

// ---------------------------------------------------------------------------
// Quantized planned execution
// ---------------------------------------------------------------------------

std::int64_t argmax_row(const float* row, std::int64_t n) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < n; ++j) {
        if (row[j] > row[best]) {
            best = j;
        }
    }
    return best;
}

TEST(QuantizedForward, Top1AgreementAcrossArchsAndBatches) {
    // Accuracy guard for the int8 path: top-1 decisions must agree with
    // float planned execution on >= 99% of samples, aggregated across
    // {vgg, plain-cnn} x batch {1, 7, 32}. ReLU mode: the threshold
    // nonlinearity has a masking cliff at t where int8 noise legitimately
    // flips the mask (covered by the bit-stability tests below instead);
    // ReLU has no cliff, so disagreements here measure pure quantization
    // error. Deterministic — fixed seeds make this a regression gate,
    // not a flaky statistical test.
    std::int64_t agree = 0;
    std::int64_t total = 0;
    for (const bool use_vgg : {true, false}) {
        core::MimeNetwork net(use_vgg ? vgg_config(true) : cnn_config(true));
        net.set_training(false);
        net.set_eval_mode(true);
        net.set_mode(core::ActivationMode::relu);

        Rng rng(123);
        std::int64_t arch_agree = 0;
        std::int64_t arch_total = 0;
        for (const int batch : {1, 7, 32}) {
            for (int trial = 0; trial < 4; ++trial) {
                const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
                Workspace workspace;
                net.set_quantized_execution({false});
                const std::vector<float> fp32 =
                    tensor_copy(net.forward_planned(x, workspace));
                net.set_quantized_execution({true});
                const Tensor& int8 = net.forward_planned(x, workspace);
                const std::int64_t classes = int8.shape().dim(1);
                for (std::int64_t n = 0; n < batch; ++n) {
                    arch_agree += argmax_row(fp32.data() + n * classes,
                                             classes) ==
                                  argmax_row(int8.data() + n * classes,
                                             classes);
                    ++arch_total;
                }
            }
        }
        // Per-architecture floor, looser than the aggregate gate.
        EXPECT_GE(arch_agree, (arch_total * 95 + 99) / 100)
            << (use_vgg ? "vgg" : "plain-cnn") << ": " << arch_agree << "/"
            << arch_total;
        agree += arch_agree;
        total += arch_total;
    }
    EXPECT_GE(agree * 100, total * 99)
        << "aggregate top-1 agreement " << agree << "/" << total
        << " below 99%";
}

TEST(QuantizedForward, BitStableAcrossRunsAndTaskSwaps) {
    // The int8 path must be a function of (weights, thresholds, input)
    // only: repeated runs and A->B->A task swaps reproduce logits
    // bit-for-bit. Per-sample activation scales make this hold under
    // banding too (each sample's bytes depend only on its own data).
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");
    net.set_quantized_execution({true});
    net.set_sparse_execution({true, 0.85});

    Rng rng(47);
    const Tensor x = Tensor::randn({7, 3, 32, 32}, rng);
    Workspace workspace;

    net.load_thresholds(task_a);
    const std::vector<float> first =
        tensor_copy(net.forward_planned(x, workspace));
    EXPECT_TRUE(bit_equal(first, net.forward_planned(x, workspace)))
        << "repeated quantized runs must be bit-identical";

    net.load_thresholds(task_b);
    const std::vector<float> other =
        tensor_copy(net.forward_planned(x, workspace));
    ASSERT_FALSE(bit_equal(first, net.forward_planned(x, workspace)))
        << "tasks must differ for the swap test to mean anything";
    EXPECT_TRUE(bit_equal(other, net.forward_planned(x, workspace)));

    net.load_thresholds(task_a);
    EXPECT_TRUE(bit_equal(first, net.forward_planned(x, workspace)))
        << "task swap must restore bit-identical quantized logits";
}

TEST(QuantizedForward, SparseBitMatchesDenseQuantized) {
    // Dead channels / features quantize to exact 0 (scale 0 rows and
    // zero activations), so row compaction changes nothing about the
    // int32 accumulation: int8 sparse == int8 dense bit-for-bit, the
    // same exactness guarantee the float sparse path has.
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);
    net.set_quantized_execution({true});

    Rng rng(53);
    const Tensor x = Tensor::randn({5, 3, 32, 32}, rng);
    Workspace workspace;

    net.set_sparse_execution({false, 0.85});
    const std::vector<float> dense =
        tensor_copy(net.forward_planned(x, workspace));
    ASSERT_GT(net.planned_quantized_hits(), 0u);

    net.set_sparse_execution({true, 0.85});
    const Tensor& sparse = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(dense, sparse))
        << "int8 sparse planned logits diverge from int8 dense";
    EXPECT_GT(net.planned_sparse_hits(), 0u);
    EXPECT_GT(net.planned_quantized_hits(), 0u);
}

TEST(QuantizedForward, BandedPoolBitMatchesSingleThread) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);
    net.set_quantized_execution({true});
    net.set_sparse_execution({true, 0.85});

    Rng rng(59);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    const std::vector<float> single =
        tensor_copy(net.forward_planned(x, workspace));

    // Activation scales are per sample, so band boundaries never change
    // which bytes a sample quantizes to — pooled output is bit-identical.
    ThreadPool pool(4);
    net.set_pool(&pool);
    const Tensor& banded = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(single, banded));
    net.set_pool(nullptr);
}

TEST(QuantizedForward, CountersAndWeightErrorSurface) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::relu);
    net.set_quantized_execution({true});
    ASSERT_TRUE(net.quantized_execution().enabled);

    Rng rng(61);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    Workspace workspace;
    net.forward_planned(x, workspace);
    // plain-cnn: 4 convs + 2 fcs = 6 quantized steps per run.
    const std::uint64_t per_run = net.planned_quantized_hits();
    EXPECT_EQ(per_run, 6u);
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_quantized_hits(), 2 * per_run);

    // Int8 per-channel weight error: nonzero, and far below 1/127 would
    // be impossible — sanity-band it rather than pinning a value.
    const double err = net.planned_quantized_max_rel_error();
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.05);

    // Flipping the policy off clears cached plans: the next forward
    // runs float and reports no quantized hits.
    net.set_quantized_execution({false});
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_quantized_hits(), 0u);
    EXPECT_EQ(net.planned_quantized_max_rel_error(), 0.0);
}

TEST(QuantizedForward, ZeroAllocationsAfterWarmUp) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");
    net.set_quantized_execution({true});
    net.set_sparse_execution({true, 0.85});

    Rng rng(67);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    net.load_thresholds(task_a);
    net.forward_planned(x, workspace);
    net.load_thresholds(task_b);
    net.forward_planned(x, workspace);

    const std::int64_t alloc0 = Tensor::storage_allocation_count();
    for (int i = 0; i < 4; ++i) {
        net.load_thresholds(i % 2 == 0 ? task_a : task_b);
        net.forward_planned(x, workspace);
    }
    EXPECT_EQ(Tensor::storage_allocation_count() - alloc0, 0)
        << "quantized planned path must stay allocation-free after "
           "warm-up, including across task swaps";
}

}  // namespace
}  // namespace mime
