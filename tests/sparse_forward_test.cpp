// Sparse planned executor tests: the row-compacted path must bit-match
// dense planned execution across architectures, batch sizes, batchnorm
// variants, mid-stream threshold swaps, and the all-dead / all-live
// edge cases — and stay allocation-free after warm-up.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "arch/plain_cnn.h"
#include "common/thread_pool.h"
#include "core/mime_network.h"
#include "tensor/workspace.h"

namespace mime {
namespace {

core::MimeNetworkConfig vgg_config(bool batchnorm) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.batchnorm = batchnorm;
    config.seed = 5;
    return config;
}

core::MimeNetworkConfig cnn_config(bool batchnorm) {
    arch::PlainCnnConfig cnn;
    cnn.input_size = 32;
    cnn.blocks = {{16, 2}, {32, 2}};
    cnn.fc_widths = {64};
    cnn.num_classes = 10;
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.batchnorm = batchnorm;
    config.seed = 7;
    return config;
}

/// Structurally prunes every site: channel c stays live iff
/// c % keep_mod == live_rem; live channels keep a small finite
/// threshold so they still mask data-dependently.
void prune_channels(core::MimeNetwork& net, std::int64_t keep_mod,
                    std::int64_t live_rem = 0) {
    for (std::int64_t s = 0; s < net.site_count(); ++s) {
        core::ThresholdMask& mask = net.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const Shape& shape = mask.activation_shape();
        const std::int64_t channels = shape.dim(0);
        const std::int64_t extent = shape.numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value = (c % keep_mod == live_rem)
                                    ? 0.05f
                                    : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

std::vector<float> tensor_copy(const Tensor& t) {
    return std::vector<float>(t.data(), t.data() + t.numel());
}

bool bit_equal(const std::vector<float>& a, const Tensor& b) {
    return a.size() == static_cast<std::size_t>(b.numel()) &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// (use vgg?, batchnorm?, batch size)
using SparseCase = std::tuple<bool, bool, int>;

class SparseForwardTest : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseForwardTest, BitMatchesDensePlanned) {
    const auto [use_vgg, batchnorm, batch] = GetParam();
    core::MimeNetwork net(use_vgg ? vgg_config(batchnorm)
                                  : cnn_config(batchnorm));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, /*keep_mod=*/4);

    Rng rng(17);
    const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
    Workspace workspace;

    net.set_sparse_execution({false, 0.85});
    const std::vector<float> dense =
        tensor_copy(net.forward_planned(x, workspace));
    ASSERT_EQ(net.planned_sparse_hits(), 0u);

    net.set_sparse_execution({true, 0.85});
    const Tensor& sparse = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(dense, sparse))
        << "sparse planned logits diverge from dense";
    EXPECT_GT(net.planned_sparse_hits(), 0u);
    EXPECT_GT(net.planned_skipped_macs(), 0u);
    EXPECT_GT(net.planned_dense_macs(), net.planned_skipped_macs());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SparseForwardTest,
    ::testing::Combine(::testing::Bool(),        // vgg / plain-cnn
                       ::testing::Bool(),        // batchnorm
                       ::testing::Values(1, 7, 32)));

TEST(SparseForward, MidStreamThresholdSwapRebuildsActiveSets) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);

    // Two tasks with different live-channel patterns.
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");

    Rng rng(23);
    const Tensor x = Tensor::randn({7, 3, 32, 32}, rng);
    Workspace workspace;

    auto dense_logits = [&](const core::ThresholdSet& task) {
        net.load_thresholds(task);
        net.set_sparse_execution({false, 0.85});
        return tensor_copy(net.forward_planned(x, workspace));
    };
    const std::vector<float> dense_a = dense_logits(task_a);
    const std::vector<float> dense_b = dense_logits(task_b);
    ASSERT_NE(0, std::memcmp(dense_a.data(), dense_b.data(),
                             dense_a.size() * sizeof(float)))
        << "tasks must differ for the swap test to mean anything";

    net.set_sparse_execution({true, 0.85});
    core::ThresholdMask& probe = net.site(0).mask();

    net.load_thresholds(task_a);
    const std::uint64_t version_a = probe.active_set().version;
    const double density_a = probe.active_set().channel_density();
    EXPECT_TRUE(bit_equal(dense_a, net.forward_planned(x, workspace)));

    // Swap mid-stream: the next forward must pick up task B's live sets
    // (stale active sets would compute task A's sparsity pattern).
    net.load_thresholds(task_b);
    EXPECT_TRUE(bit_equal(dense_b, net.forward_planned(x, workspace)));
    EXPECT_GT(probe.active_set().version, version_a);
    EXPECT_NE(probe.active_set().channel_density(), density_a);

    // And back again.
    net.load_thresholds(task_a);
    EXPECT_TRUE(bit_equal(dense_a, net.forward_planned(x, workspace)));
}

TEST(SparseForward, AllDeadMasksBitMatchDense) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(core::kPrunedThreshold);

    Rng rng(29);
    const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
    Workspace workspace;

    net.set_sparse_execution({false, 0.85});
    const std::vector<float> dense =
        tensor_copy(net.forward_planned(x, workspace));
    net.set_sparse_execution({true, 0.85});
    const Tensor& sparse = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(dense, sparse));
    EXPECT_GT(net.planned_sparse_hits(), 0u);
}

TEST(SparseForward, AllLiveMasksFallBackDense) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(0.05f);  // finite everywhere: nothing pruned

    Rng rng(31);
    const Tensor x = Tensor::randn({4, 3, 32, 32}, rng);
    Workspace workspace;
    net.set_sparse_execution({true, 0.85});
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_sparse_hits(), 0u);
    EXPECT_EQ(net.planned_skipped_macs(), 0u);
    EXPECT_GT(net.planned_dense_macs(), 0u);
}

TEST(SparseForward, DensityCutoffGatesSparsePath) {
    core::MimeNetwork net(cnn_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);  // 25% channel density

    Rng rng(37);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    Workspace workspace;

    // Cutoff below the measured density: everything runs dense.
    net.set_sparse_execution({true, 0.1});
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.planned_sparse_hits(), 0u);

    // Cutoff above it: the compacted path engages.
    net.set_sparse_execution({true, 1.0});
    net.forward_planned(x, workspace);
    EXPECT_GT(net.planned_sparse_hits(), 0u);
}

TEST(SparseForward, BandedPoolBitMatchesSingleThread) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 4);
    net.set_sparse_execution({true, 0.85});

    Rng rng(41);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    const std::vector<float> single =
        tensor_copy(net.forward_planned(x, workspace));

    // With a pool the planned conv splits samples across bands; the
    // per-sample math is unchanged, so outputs stay bit-identical (and
    // TSan validates the banding has no races).
    ThreadPool pool(4);
    net.set_pool(&pool);
    const Tensor& banded = net.forward_planned(x, workspace);
    EXPECT_TRUE(bit_equal(single, banded));
    net.set_pool(nullptr);
}

TEST(SparseForward, ZeroAllocationsAfterWarmUp) {
    core::MimeNetwork net(vgg_config(false));
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, 2, 0);
    const core::ThresholdSet task_a = net.snapshot_thresholds("a");
    prune_channels(net, 4, 1);
    const core::ThresholdSet task_b = net.snapshot_thresholds("b");
    net.set_sparse_execution({true, 0.85});

    Rng rng(43);
    const Tensor x = Tensor::randn({8, 3, 32, 32}, rng);
    Workspace workspace;

    // Warm-up: plan build, workspace reserve, first sparse pass for
    // both tasks (active-set vectors size themselves here).
    net.load_thresholds(task_a);
    net.forward_planned(x, workspace);
    net.load_thresholds(task_b);
    net.forward_planned(x, workspace);

    const std::int64_t alloc0 = Tensor::storage_allocation_count();
    for (int i = 0; i < 4; ++i) {
        net.load_thresholds(i % 2 == 0 ? task_a : task_b);
        net.forward_planned(x, workspace);
    }
    EXPECT_EQ(Tensor::storage_allocation_count() - alloc0, 0)
        << "sparse planned path must stay allocation-free after warm-up, "
           "including across task swaps";
}

}  // namespace
}  // namespace mime
