// Contract tests for the capability-annotated primitives in
// common/sync.h. The annotations themselves are checked at compile time
// by the clang thread-safety CI job; what runs here is the runtime
// contract the rest of the tree leans on: MutexLock releases on every
// exit path (including exceptions and early unlock), CondVar timed
// waits report timeout-vs-wakeup correctly, and a GUARDED_BY counter
// driven through MutexLock from many threads stays exact. This test is
// part of the ThreadSanitizer CI matrix, so the mutual-exclusion cases
// double as data-race probes on the wrappers.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace mime {
namespace {

TEST(Sync, MutexLockReleasesOnDestruction) {
    Mutex mutex;
    {
        MutexLock lock(mutex);
        // Held: a second acquisition attempt must fail.
        EXPECT_FALSE(mutex.try_lock());
    }
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(Sync, MutexLockReleasesWhenScopeThrows) {
    Mutex mutex;
    try {
        MutexLock lock(mutex);
        throw std::runtime_error("unwind while holding the lock");
    } catch (const std::runtime_error&) {
    }
    // The unwound MutexLock must have released; a leaked lock would
    // deadlock every later user of this mutex.
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
}

TEST(Sync, MutexLockEarlyUnlockAndRelock) {
    Mutex mutex;
    MutexLock lock(mutex);
    lock.unlock();
    EXPECT_TRUE(mutex.try_lock());
    mutex.unlock();
    lock.lock();
    EXPECT_FALSE(mutex.try_lock());
    // Destructor releases the re-acquired lock; nothing to clean up.
}

TEST(Sync, CondVarTimedWaitTimesOut) {
    Mutex mutex;
    CondVar cv;
    MutexLock lock(mutex);
    const auto start = std::chrono::steady_clock::now();
    const std::cv_status status =
        cv.wait_for(lock, std::chrono::milliseconds(10));
    EXPECT_EQ(status, std::cv_status::timeout);
    EXPECT_GE(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(10));
}

TEST(Sync, CondVarNotifyWakesWaiterBeforeDeadline) {
    Mutex mutex;
    CondVar cv;
    bool ready = false;  // guarded by mutex (local, so no annotation)

    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        {
            MutexLock lock(mutex);
            ready = true;
        }
        cv.notify_one();
    });

    {
        MutexLock lock(mutex);
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!ready) {
            // Far deadline: reaching it means the wakeup was lost.
            ASSERT_NE(cv.wait_until(lock, deadline), std::cv_status::timeout);
        }
        EXPECT_TRUE(ready);
    }
    producer.join();
}

// The GUARDED_BY contract at runtime: many threads hammer one counter,
// every access through MutexLock. An exact final count proves mutual
// exclusion; under TSan this also proves the wrappers establish the
// happens-before edges std::mutex promises.
TEST(Sync, GuardedCounterStaysExactUnderContention) {
    constexpr int kThreads = 8;
    constexpr int kIncrementsPerThread = 5000;

    Mutex mutex;
    std::int64_t counter = 0;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrementsPerThread; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) *
                           kIncrementsPerThread);
}

// Producer/consumer handoff through CondVar with the explicit
// while-loop style the tree uses (no predicate lambdas — see the
// sync.h header comment). Every produced value must be consumed exactly
// once, in order.
TEST(Sync, CondVarHandsOffEveryValueInOrder) {
    constexpr int kValues = 1000;

    Mutex mutex;
    CondVar not_empty;
    std::vector<int> queue;
    bool done = false;

    std::vector<int> consumed;
    std::thread consumer([&] {
        for (;;) {
            MutexLock lock(mutex);
            while (queue.empty() && !done) {
                not_empty.wait(lock);
            }
            if (queue.empty() && done) {
                return;
            }
            consumed.insert(consumed.end(), queue.begin(), queue.end());
            queue.clear();
        }
    });

    for (int i = 0; i < kValues; ++i) {
        {
            MutexLock lock(mutex);
            queue.push_back(i);
        }
        not_empty.notify_one();
    }
    {
        MutexLock lock(mutex);
        done = true;
    }
    not_empty.notify_one();
    consumer.join();

    ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kValues));
    for (int i = 0; i < kValues; ++i) {
        EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
    }
}

}  // namespace
}  // namespace mime
