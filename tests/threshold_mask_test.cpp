// Tests for the MIME threshold mask (paper eq. 1, 2, 4) and its
// straight-through gradient estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/threshold_mask.h"

namespace mime::core {
namespace {

TEST(SteConfig, DstEstimatorShape) {
    const SteConfig ste;  // defaults = DST estimator
    EXPECT_FLOAT_EQ(ste(0.0f), 2.0f);
    EXPECT_FLOAT_EQ(ste(0.4f), 0.4f);
    EXPECT_FLOAT_EQ(ste(-0.4f), 0.4f);
    EXPECT_FLOAT_EQ(ste(0.7f), 0.4f);
    EXPECT_FLOAT_EQ(ste(1.0f), 0.4f);
    EXPECT_FLOAT_EQ(ste(1.01f), 0.0f);
    EXPECT_FLOAT_EQ(ste(-5.0f), 0.0f);
    // Linear in the inner region: g(0.2) = 2 - 4*0.2.
    EXPECT_NEAR(ste(0.2f), 1.2f, 1e-6f);
}

TEST(SteConfig, ValidatesPieces) {
    SteConfig bad;
    bad.inner_width = -1.0f;
    EXPECT_THROW(bad.validate(), mime::check_error);
    bad = SteConfig{};
    bad.outer_width = 0.1f;  // < inner_width
    EXPECT_THROW(bad.validate(), mime::check_error);
    bad = SteConfig{};
    bad.outer_value = 5.0f;  // > peak
    EXPECT_THROW(bad.validate(), mime::check_error);
}

TEST(ThresholdMask, ForwardImplementsEquations1And2) {
    ThresholdMask mask({4}, /*initial_threshold=*/1.0f);
    const Tensor y({1, 4}, std::vector<float>{0.5f, 1.0f, 2.0f, -3.0f});
    const Tensor a = mask.forward(y);
    // y >= t passes the raw MAC value; otherwise 0.
    EXPECT_EQ(a[0], 0.0f);   // 0.5 < 1
    EXPECT_EQ(a[1], 1.0f);   // 1.0 >= 1 (boundary: mask = 1)
    EXPECT_EQ(a[2], 2.0f);
    EXPECT_EQ(a[3], 0.0f);
    EXPECT_DOUBLE_EQ(mask.last_sparsity(), 0.5);
    // The binary mask is exposed.
    EXPECT_EQ(mask.last_mask()[1], 1.0f);
    EXPECT_EQ(mask.last_mask()[3], 0.0f);
}

TEST(ThresholdMask, PerNeuronThresholds) {
    ThresholdMask mask({2}, 0.0f);
    mask.thresholds().value = Tensor({2}, std::vector<float>{0.1f, 5.0f});
    const Tensor y({1, 2}, std::vector<float>{1.0f, 1.0f});
    const Tensor a = mask.forward(y);
    EXPECT_EQ(a[0], 1.0f);  // above its threshold
    EXPECT_EQ(a[1], 0.0f);  // below its threshold
}

TEST(ThresholdMask, HigherThresholdsGiveMoreSparsity) {
    Rng rng(5);
    const Tensor y = Tensor::randn({8, 16}, rng);
    ThresholdMask low({16}, 0.0f);
    ThresholdMask high({16}, 1.0f);
    low.forward(y);
    high.forward(y);
    EXPECT_GT(high.last_sparsity(), low.last_sparsity());
}

TEST(ThresholdMask, BatchBroadcastsThresholds) {
    ThresholdMask mask({2}, 0.5f);
    const Tensor y({3, 2}, std::vector<float>{1, 0, 1, 0, 1, 0});
    const Tensor a = mask.forward(y);
    for (std::int64_t n = 0; n < 3; ++n) {
        EXPECT_EQ(a.at({n, 0}), 1.0f);
        EXPECT_EQ(a.at({n, 1}), 0.0f);
    }
}

TEST(ThresholdMask, BackwardGradientFormula) {
    // a = y * H(y - t): da/dy = m + y*g(y-t), da/dt = -y*g(y-t).
    ThresholdMask mask({1}, 0.0f);
    mask.thresholds().value[0] = 1.0f;
    const SteConfig ste;

    const float y_val = 1.2f;  // y - t = 0.2 → inner STE region, mask = 1
    const Tensor y({1, 1}, std::vector<float>{y_val});
    mask.forward(y);
    mask.thresholds().zero_grad();
    const Tensor gi = mask.backward(Tensor::ones({1, 1}));

    const float g_est = ste(y_val - 1.0f);
    EXPECT_NEAR(gi[0], 1.0f + y_val * g_est, 1e-5f);
    EXPECT_NEAR(mask.thresholds().grad[0], -y_val * g_est, 1e-5f);
}

TEST(ThresholdMask, GradMatchesNumericAwayFromStep) {
    // Where |y - t| > outer_width the estimator is 0 and the mask is
    // locally constant, so the analytic gradient equals the true one.
    ThresholdMask mask({3}, 0.0f);
    const Tensor y({1, 3}, std::vector<float>{3.0f, -2.5f, 4.0f});
    mask.forward(y);
    const Tensor head({1, 3}, std::vector<float>{1.0f, 1.0f, 1.0f});
    const Tensor gi = mask.backward(head);

    const double eps = 1e-3;
    Tensor probe = y;
    for (std::int64_t i = 0; i < 3; ++i) {
        const float saved = probe[i];
        probe[i] = saved + static_cast<float>(eps);
        const float plus = sum(mask.forward(probe));
        probe[i] = saved - static_cast<float>(eps);
        const float minus = sum(mask.forward(probe));
        probe[i] = saved;
        EXPECT_NEAR(gi[i], (plus - minus) / (2 * eps), 1e-2);
    }
}

TEST(ThresholdMask, RegularizationLossIsSumExp) {
    ThresholdMask mask({3}, 0.0f);
    mask.thresholds().value =
        Tensor({3}, std::vector<float>{0.0f, 1.0f, -1.0f});
    const double expected = 1.0 + std::exp(1.0) + std::exp(-1.0);
    EXPECT_NEAR(mask.regularization_loss(), expected, 1e-6);
}

TEST(ThresholdMask, RegularizationGradientIsBetaExp) {
    ThresholdMask mask({2}, 0.0f);
    mask.thresholds().value = Tensor({2}, std::vector<float>{0.0f, 2.0f});
    mask.thresholds().zero_grad();
    mask.add_regularization_gradient(0.5f);
    EXPECT_NEAR(mask.thresholds().grad[0], 0.5f, 1e-6f);
    EXPECT_NEAR(mask.thresholds().grad[1], 0.5f * std::exp(2.0f), 1e-4f);
}

TEST(ThresholdMask, RegularizationClampsOverflow) {
    ThresholdMask mask({1}, 0.0f);
    mask.thresholds().value[0] = 1000.0f;  // exp would overflow
    EXPECT_TRUE(std::isfinite(mask.regularization_loss()));
    mask.thresholds().zero_grad();
    mask.add_regularization_gradient(1.0f);
    EXPECT_TRUE(std::isfinite(mask.thresholds().grad[0]));
}

TEST(ThresholdMask, ClampEnforcesFloor) {
    ThresholdMask mask({3}, 0.0f);
    mask.thresholds().value =
        Tensor({3}, std::vector<float>{-1.0f, 0.5f, -0.2f});
    mask.clamp_thresholds(0.0f);
    EXPECT_EQ(mask.thresholds().value[0], 0.0f);
    EXPECT_EQ(mask.thresholds().value[1], 0.5f);
    EXPECT_EQ(mask.thresholds().value[2], 0.0f);
}

TEST(ThresholdMask, RejectsShapeMismatch) {
    ThresholdMask mask({4});
    const Tensor wrong({1, 5});
    EXPECT_THROW(mask.forward(wrong), mime::check_error);
    const Tensor unbatched({4});
    EXPECT_THROW(mask.forward(unbatched), mime::check_error);
}

TEST(ThresholdMask, ParameterExposedAsTrainable) {
    ThresholdMask mask({4});
    const auto params = mask.parameters();
    ASSERT_EQ(params.size(), 1u);
    EXPECT_TRUE(params[0]->trainable);
    EXPECT_EQ(params[0]->value.shape(), Shape({4}));
}

TEST(ActiveSet, TracksStructurallyPrunedChannels) {
    ThresholdMask mask({8, 2, 2}, 0.1f);
    float* t = mask.thresholds().value.data();
    for (std::int64_t c = 0; c < 8; ++c) {
        if (c != 0 && c != 3) {
            for (std::int64_t i = 0; i < 4; ++i) {
                t[c * 4 + i] = kPrunedThreshold;
            }
        }
    }
    mask.mark_thresholds_dirty();

    const ActiveSet& as = mask.active_set();
    EXPECT_EQ(as.neurons, 32);
    EXPECT_EQ(as.channels, 8);
    EXPECT_EQ(as.live_channels, (std::vector<std::int64_t>{0, 3}));
    std::vector<std::int64_t> expected_live;
    for (std::int64_t i = 0; i < 4; ++i) expected_live.push_back(i);
    for (std::int64_t i = 12; i < 16; ++i) expected_live.push_back(i);
    EXPECT_EQ(as.live, expected_live);
    EXPECT_FALSE(as.all_live());
    EXPECT_DOUBLE_EQ(as.density(), 0.25);
    EXPECT_DOUBLE_EQ(as.channel_density(), 0.25);
}

TEST(ActiveSet, RebuildsOnlyWhenDirty) {
    ThresholdMask mask({16}, 0.0f);
    const std::uint64_t v0 = mask.active_set().version;
    // Repeated queries without mutation must not rebuild.
    EXPECT_EQ(mask.active_set().version, v0);
    EXPECT_EQ(mask.active_set().version, v0);

    mask.thresholds().value.data()[5] = kPrunedThreshold;
    mask.mark_thresholds_dirty();
    const ActiveSet& as = mask.active_set();
    EXPECT_GT(as.version, v0);
    EXPECT_EQ(as.live.size(), 15u);
}

TEST(ActiveSet, NanAndInfThresholdsAreDead) {
    ThresholdMask mask({4}, 0.0f);
    float* t = mask.thresholds().value.data();
    t[1] = kPrunedThreshold;
    t[2] = std::numeric_limits<float>::quiet_NaN();
    mask.mark_thresholds_dirty();
    EXPECT_EQ(mask.active_set().live, (std::vector<std::int64_t>{0, 3}));

    // A pruned threshold masks every input — even +inf, because
    // inf - inf is NaN and NaN >= 0 is false.
    const Tensor y = Tensor::full({1, 4},
                                  std::numeric_limits<float>::infinity());
    const Tensor out = mask.forward(y);
    EXPECT_EQ(out.data()[1], 0.0f);
    EXPECT_EQ(out.data()[2], 0.0f);
}

TEST(ActiveSet, AllFiniteThresholdsAllLive) {
    ThresholdMask mask({4, 3}, 100.0f);  // high but finite: data-masked,
                                         // not structurally pruned
    const ActiveSet& as = mask.active_set();
    EXPECT_TRUE(as.all_live());
    EXPECT_EQ(as.live.size(), 12u);
    EXPECT_EQ(as.live_channels.size(), 4u);
}

// The vectorized mask-apply (8-wide + scalar tail) must produce the
// same bytes and the same fused zero count as the scalar definition
// a_i = y_i * 1[y_i - t_i >= 0].
TEST(ThresholdMask, VectorizedApplyMatchesScalarDefinition) {
    Rng rng(99);
    const std::int64_t features = 19;  // exercises the non-multiple-of-8 tail
    const Tensor y = Tensor::randn({3, features}, rng);
    ThresholdMask mask({features}, 0.3f);
    const Tensor out = mask.forward(y);

    const float* t = mask.thresholds().value.data();
    std::int64_t zeros = 0;
    for (std::int64_t n = 0; n < 3; ++n) {
        for (std::int64_t i = 0; i < features; ++i) {
            const float yi = y.data()[n * features + i];
            const float expected = (yi - t[i] >= 0.0f) ? yi : 0.0f;
            EXPECT_EQ(out.data()[n * features + i], expected);
            if (expected == 0.0f) ++zeros;
        }
    }
    // last_sparsity comes from the count fused into the apply loop.
    EXPECT_DOUBLE_EQ(mask.last_sparsity(),
                     static_cast<double>(zeros) / (3.0 * features));
}

// Sweep: sparsity is monotone in the threshold level.
class ThresholdSweep : public ::testing::TestWithParam<float> {};

TEST_P(ThresholdSweep, SparsityIncreasesWithThreshold) {
    Rng rng(17);
    const Tensor y = Tensor::randn({16, 32}, rng);
    ThresholdMask mask({32}, GetParam());
    mask.forward(y);
    // Normal inputs, threshold at q → sparsity ≈ Phi(q).
    const double expected = 0.5 * (1.0 + std::erf(GetParam() / std::sqrt(2.0)));
    EXPECT_NEAR(mask.last_sparsity(), expected, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Levels, ThresholdSweep,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 1.0f, 1.5f));

}  // namespace
}  // namespace mime::core
