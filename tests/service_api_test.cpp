// Conformance suite for the unified InferenceService client API,
// parameterized over both backends (InferenceServer, ServerPool). The
// contract under test: overload shed, stopped-service submission,
// expired deadlines and cancellation surface as ServeStatus values on
// the result channel (never exceptions), expired requests complete at
// batch-forming time without occupying a forward, cancel() reports
// whether it won the race with dispatch, and callback delivery carries
// bit-identical results to future delivery. The cancel-race cases run
// under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/sync.h"
#include "core/multitask.h"
#include "obs/trace.h"
#include "serve/inference_server.h"
#include "serve/server_pool.h"
#include "serve/service.h"
#include "serve/service_state.h"

namespace mime::serve {
namespace {

core::MimeNetworkConfig tiny_config(std::uint64_t seed = 3) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = seed;
    return config;
}

struct ServiceFixture {
    core::MimeNetwork network{tiny_config()};
    std::vector<core::TaskAdaptation> adaptations;

    explicit ServiceFixture(std::size_t task_count = 3) {
        network.set_training(false);
        network.set_mode(core::ActivationMode::threshold);
        for (std::size_t t = 0; t < task_count; ++t) {
            network.reset_thresholds(0.02f + 0.2f * static_cast<float>(t));
            adaptations.push_back(core::capture_adaptation(
                network, "task" + std::to_string(t), 10));
        }
    }

    ThresholdCache::Loader loader() {
        return [this](const std::string& name) {
            for (const core::TaskAdaptation& adaptation : adaptations) {
                if (adaptation.name == name) {
                    return adaptation;
                }
            }
            throw check_error("name", __FILE__, __LINE__,
                              "unknown task " + name);
        };
    }
};

/// Wedges the first hydration pool-wide so tests control exactly what is
/// pending behind the dispatch thread when the gate opens.
struct LoaderGate {
    std::promise<void> open_promise;
    std::shared_future<void> open = open_promise.get_future().share();
    std::promise<void> entered_promise;
    std::future<void> entered = entered_promise.get_future();
    std::atomic<bool> armed{true};

    ThresholdCache::Loader wrap(ThresholdCache::Loader inner) {
        return [this, inner](const std::string& name) {
            if (armed.exchange(false)) {
                entered_promise.set_value();
                open.wait();
            }
            return inner(name);
        };
    }
};

enum class BackendKind { server, pool };

struct BackendSpec {
    const char* name;
    BackendKind kind;
};

/// Both backends behind the one interface the suite drives. max_wait 0
/// keeps batch formation immediate and deterministic.
std::unique_ptr<InferenceService> make_backend(
    BackendKind kind, ServiceFixture& fixture,
    ThresholdCache::Loader loader) {
    ServerConfig server_config;
    server_config.batcher.max_batch_size = 4;
    server_config.batcher.max_wait = std::chrono::microseconds(0);
    server_config.cache_capacity = 4;
    server_config.worker_threads = 1;
    if (kind == BackendKind::server) {
        return std::make_unique<InferenceServer>(fixture.network,
                                                 std::move(loader),
                                                 server_config);
    }
    PoolConfig pool_config;
    pool_config.replica_count = 2;
    pool_config.routing = RoutingPolicy::task_affinity;
    pool_config.server = server_config;
    return std::make_unique<ServerPool>(fixture.network, std::move(loader),
                                        pool_config);
}

class ServiceApiTest : public ::testing::TestWithParam<BackendSpec> {};

TEST_P(ServiceApiTest, OkOutcomeCarriesResultThroughTicket) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());

    RequestTicket ticket =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    ASSERT_TRUE(ticket.valid());
    ASSERT_TRUE(ticket.can_wait());
    Outcome<InferenceResult> outcome = ticket.wait();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.status(), ServeStatus::ok);
    EXPECT_EQ(outcome.value().task, "task0");
    EXPECT_EQ(outcome.value().logits.numel(), 10);
    EXPECT_GE(outcome.value().predicted_class, 0);
    EXPECT_LT(outcome.value().predicted_class, 10);

    // wait() can return before the pool's completion hook runs; drain()
    // synchronizes the counters.
    service->drain();
    const ServiceStats stats = service->service_stats();
    EXPECT_EQ(stats.submitted, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.interactive.completed, 1);  // the default priority
    EXPECT_EQ(stats.batch.completed, 0);
    service->stop();
}

TEST_P(ServiceApiTest, StoppedServiceDeliversShutdownNotException) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());
    service->stop();

    RequestTicket ticket =
        service->submit("task0", Tensor({3, 32, 32}), {});
    ASSERT_TRUE(ticket.can_wait());
    const Outcome<InferenceResult> outcome = ticket.wait();
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status(), ServeStatus::shutdown);
    EXPECT_FALSE(outcome.message().empty());

    // Nothing left to cancel on a rejected ticket.
    RequestTicket again = service->submit("task0", Tensor({3, 32, 32}), {});
    EXPECT_FALSE(again.cancel());

    // The deprecated shims keep the old exception contract.
    EXPECT_THROW(service->submit("task0", Tensor({3, 32, 32})),
                 check_error);
}

TEST_P(ServiceApiTest, MalformedEnvelopeDeliversInvalidRequest) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());

    EXPECT_EQ(service->run("", Tensor({3, 32, 32})).status(),
              ServeStatus::invalid_request);
    EXPECT_EQ(service->run("task0", Tensor({1, 28, 28})).status(),
              ServeStatus::invalid_request);
    SubmitOptions negative_deadline;
    negative_deadline.deadline = std::chrono::microseconds(-5);
    EXPECT_EQ(
        service->run("task0", Tensor({3, 32, 32}), negative_deadline)
            .status(),
        ServeStatus::invalid_request);

    // Rejections never enter the submitted/completed accounting and
    // never block drain.
    service->drain();
    EXPECT_EQ(service->service_stats().submitted, 0);

    // Well-formed traffic is unaffected.
    EXPECT_TRUE(service->run("task0", Tensor({3, 32, 32}, 0.2f)).ok());
    service->stop();
}

TEST_P(ServiceApiTest, ExpiredDeadlineReapsBeforeLaterBatches) {
    ServiceFixture fixture;
    LoaderGate gate;
    auto service =
        make_backend(GetParam().kind, fixture, gate.wrap(fixture.loader()));

    Mutex order_mutex;
    std::vector<std::string> order;
    const auto record = [&order_mutex, &order](const std::string& label) {
        return [&order_mutex, &order,
                label](Outcome<InferenceResult> outcome) {
            MutexLock lock(order_mutex);
            order.push_back(label + ":" +
                            std::string(to_string(outcome.status())));
        };
    };

    // A wedges the dispatch thread mid-hydration; B expires while
    // pending; C stays valid. All one task so a pool routes them to the
    // same replica.
    SubmitOptions a;
    a.on_result = record("a");
    service->submit("task0", Tensor({3, 32, 32}, 0.1f), std::move(a));
    gate.entered.wait();

    SubmitOptions b;
    b.deadline = std::chrono::microseconds(1);
    b.on_result = record("b");
    service->submit("task0", Tensor({3, 32, 32}, 0.2f), std::move(b));
    SubmitOptions c;
    c.deadline = std::chrono::seconds(30);
    c.on_result = record("c");
    service->submit("task0", Tensor({3, 32, 32}, 0.3f), std::move(c));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    gate.open_promise.set_value();
    service->drain();

    {
        MutexLock lock(order_mutex);
        // The expired request fails at batch-forming time, before C's
        // batch runs — it never occupies a forward.
        ASSERT_EQ(order.size(), 3u);
        EXPECT_EQ(order[0], "a:ok");
        EXPECT_EQ(order[1], "b:deadline_exceeded");
        EXPECT_EQ(order[2], "c:ok");
    }
    const ServiceStats stats = service->service_stats();
    EXPECT_EQ(stats.submitted, 3);
    EXPECT_EQ(stats.completed, 3);
    EXPECT_EQ(stats.deadline_expired, 1);
    service->stop();
}

TEST_P(ServiceApiTest, CancelBeforeDispatchWinsAndDeliversCancelled) {
    ServiceFixture fixture;
    LoaderGate gate;
    auto service =
        make_backend(GetParam().kind, fixture, gate.wrap(fixture.loader()));

    RequestTicket wedge =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    gate.entered.wait();

    RequestTicket doomed =
        service->submit("task0", Tensor({3, 32, 32}, 0.2f), {});
    EXPECT_TRUE(doomed.cancel());
    EXPECT_FALSE(doomed.cancel());  // a second cancel has nothing to win

    gate.open_promise.set_value();
    const Outcome<InferenceResult> cancelled_outcome = doomed.wait();
    EXPECT_EQ(cancelled_outcome.status(), ServeStatus::cancelled);
    EXPECT_TRUE(wedge.wait().ok());

    service->drain();
    const ServiceStats stats = service->service_stats();
    EXPECT_EQ(stats.completed, 2);
    EXPECT_EQ(stats.cancelled, 1);
    service->stop();
}

TEST_P(ServiceApiTest, CancelAfterCompletionLoses) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());
    RequestTicket ticket =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    ASSERT_TRUE(ticket.wait().ok());
    EXPECT_FALSE(ticket.cancel());
    EXPECT_EQ(service->service_stats().cancelled, 0);
    service->stop();
}

TEST_P(ServiceApiTest, CancelRacingDispatchIsConsistent) {
    // The race case the TSan CI job watches: cancels hammer the tickets
    // while the dispatch thread claims batches. The invariant is
    // exactness, not timing: a request either ran (outcome ok) or was
    // cancelled (outcome cancelled), and cancel() returned true exactly
    // for the cancelled ones.
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());

    constexpr int kRequests = 48;
    std::vector<RequestTicket> tickets;
    tickets.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        tickets.push_back(
            service->submit("task" + std::to_string(i % 2),
                            Tensor({3, 32, 32}, 0.01f * i), {}));
    }
    std::vector<char> cancel_won(kRequests, 0);
    std::thread canceller([&] {
        for (int i = 0; i < kRequests; ++i) {
            cancel_won[static_cast<std::size_t>(i)] =
                tickets[static_cast<std::size_t>(i)].cancel() ? 1 : 0;
        }
    });
    canceller.join();
    service->drain();

    std::int64_t cancelled = 0;
    for (int i = 0; i < kRequests; ++i) {
        const Outcome<InferenceResult> outcome =
            tickets[static_cast<std::size_t>(i)].wait();
        if (cancel_won[static_cast<std::size_t>(i)] != 0) {
            EXPECT_EQ(outcome.status(), ServeStatus::cancelled)
                << "request " << i << " lost a cancel it reported winning";
            ++cancelled;
        } else {
            EXPECT_TRUE(outcome.ok())
                << "request " << i << ": " << to_string(outcome.status());
        }
    }
    const ServiceStats stats = service->service_stats();
    EXPECT_EQ(stats.completed, kRequests);
    EXPECT_EQ(stats.cancelled, cancelled);
    EXPECT_EQ(stats.interactive.completed, kRequests - cancelled);
    service->stop();
}

TEST_P(ServiceApiTest, CallbackAndFutureDeliverBitIdenticalResults) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());
    Rng rng(19);
    const Tensor image = Tensor::randn({3, 32, 32}, rng);

    const Outcome<InferenceResult> via_future =
        service->run("task1", image.clone());

    std::promise<Outcome<InferenceResult>> relay;
    std::future<Outcome<InferenceResult>> delivered = relay.get_future();
    std::atomic<int> invocations{0};
    SubmitOptions options;
    options.priority = Priority::batch;
    options.on_result = [&relay,
                         &invocations](Outcome<InferenceResult> outcome) {
        ++invocations;
        relay.set_value(std::move(outcome));
    };
    RequestTicket ticket =
        service->submit("task1", image.clone(), std::move(options));
    EXPECT_FALSE(ticket.can_wait());  // callback delivery owns the channel

    const Outcome<InferenceResult> via_callback = delivered.get();
    service->drain();
    EXPECT_EQ(invocations.load(), 1);
    ASSERT_TRUE(via_future.ok());
    ASSERT_TRUE(via_callback.ok());
    const Tensor& a = via_future.value().logits;
    const Tensor& b = via_callback.value().logits;
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t c = 0; c < a.numel(); ++c) {
        ASSERT_EQ(a[c], b[c]) << "class " << c;
    }
    EXPECT_EQ(via_future.value().predicted_class,
              via_callback.value().predicted_class);

    const ServiceStats stats = service->service_stats();
    EXPECT_EQ(stats.interactive.completed, 1);
    EXPECT_EQ(stats.batch.completed, 1);
    service->stop();
}

// ---------------------------------------------------------------------------
// Request tracing conformance (ISSUE: every span the serving path emits,
// in order, on both backends; read-after-delivery only). TSan runs these.
// ---------------------------------------------------------------------------

TEST_P(ServiceApiTest, TracedRequestExposesOrderedSpanTimeline) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());

    SubmitOptions options;
    options.trace = true;  // explicit opt-in beats the sample rate
    RequestTicket ticket =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f),
                        std::move(options));
    ASSERT_TRUE(ticket.wait().ok());

    // The trace is complete only once the outcome has been delivered.
    const obs::Trace* trace = ticket.trace();
    ASSERT_NE(trace, nullptr);
    const std::vector<obs::Span>& spans = trace->spans();
    ASSERT_EQ(spans.size(), 6u);
    EXPECT_EQ(spans[0].kind, obs::SpanKind::admission);
    EXPECT_EQ(spans[1].kind, obs::SpanKind::queue_wait);
    EXPECT_EQ(spans[2].kind, obs::SpanKind::batch_form);
    EXPECT_EQ(spans[3].kind, obs::SpanKind::threshold_swap);
    EXPECT_EQ(spans[4].kind, obs::SpanKind::forward);
    EXPECT_EQ(spans[5].kind, obs::SpanKind::delivery);
    EXPECT_TRUE(trace->ordered())
        << "spans out of order:\n"
        << trace->to_string();
    // The forward actually took time; the whole timeline hangs together.
    EXPECT_GT(trace->find(obs::SpanKind::forward)->duration_us(), 0.0);
    EXPECT_GT(trace->total_us(), 0.0);
    service->stop();
}

TEST_P(ServiceApiTest, UntracedByDefault) {
    ServiceFixture fixture;
    auto service =
        make_backend(GetParam().kind, fixture, fixture.loader());
    RequestTicket ticket =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    ASSERT_TRUE(ticket.wait().ok());
    // Default sample rate is 0: no trace is allocated, no span cost paid.
    EXPECT_EQ(ticket.trace(), nullptr);
    service->stop();
}

TEST_P(ServiceApiTest, ExpiredTracedRequestHasDeliveryButNoForward) {
    ServiceFixture fixture;
    LoaderGate gate;
    auto service =
        make_backend(GetParam().kind, fixture, gate.wrap(fixture.loader()));

    // Wedge dispatch, then let a traced request expire while pending.
    RequestTicket wedge =
        service->submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    gate.entered.wait();
    SubmitOptions options;
    options.trace = true;
    options.deadline = std::chrono::microseconds(1);
    RequestTicket doomed = service->submit(
        "task0", Tensor({3, 32, 32}, 0.2f), std::move(options));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    gate.open_promise.set_value();

    EXPECT_EQ(doomed.wait().status(), ServeStatus::deadline_exceeded);
    ASSERT_TRUE(wedge.wait().ok());
    const obs::Trace* trace = doomed.trace();
    ASSERT_NE(trace, nullptr);
    // Reaped at batch-forming time: the request never reached a forward,
    // and the trace proves it.
    EXPECT_NE(trace->find(obs::SpanKind::admission), nullptr);
    EXPECT_NE(trace->find(obs::SpanKind::delivery), nullptr);
    EXPECT_EQ(trace->find(obs::SpanKind::forward), nullptr);
    EXPECT_EQ(trace->find(obs::SpanKind::threshold_swap), nullptr);
    EXPECT_TRUE(trace->ordered());
    service->stop();
}

TEST_P(ServiceApiTest, SampleRateOneTracesEveryRequest) {
    ServiceFixture fixture;
    ServerConfig server_config;
    server_config.batcher.max_batch_size = 4;
    server_config.batcher.max_wait = std::chrono::microseconds(0);
    server_config.worker_threads = 1;
    server_config.trace_sample_rate = 1.0;
    std::unique_ptr<InferenceService> service;
    if (GetParam().kind == BackendKind::server) {
        service = std::make_unique<InferenceServer>(
            fixture.network, fixture.loader(), server_config);
    } else {
        PoolConfig pool_config;
        pool_config.replica_count = 2;
        pool_config.server = server_config;
        service = std::make_unique<ServerPool>(fixture.network,
                                               fixture.loader(), pool_config);
    }
    for (int i = 0; i < 4; ++i) {
        RequestTicket ticket =
            service->submit("task" + std::to_string(i % 2),
                            Tensor({3, 32, 32}, 0.1f), {});
        ASSERT_TRUE(ticket.wait().ok()) << "request " << i;
        const obs::Trace* trace = ticket.trace();
        ASSERT_NE(trace, nullptr) << "request " << i << " not sampled";
        EXPECT_EQ(trace->spans().size(), 6u);
        EXPECT_TRUE(trace->ordered());
    }
    service->stop();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServiceApiTest,
    ::testing::Values(BackendSpec{"server", BackendKind::server},
                      BackendSpec{"pool", BackendKind::pool}),
    [](const ::testing::TestParamInfo<BackendSpec>& info) {
        return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// Pool-specific conformance: admission shedding as a status
// ---------------------------------------------------------------------------

TEST(ServiceApiPool, OverloadShedDeliversOverloadedOutcome) {
    ServiceFixture fixture;
    LoaderGate gate;
    PoolConfig config;
    config.replica_count = 1;
    config.admission = AdmissionMode::shed;
    config.max_pending = 2;
    config.server.batcher.max_wait = std::chrono::microseconds(0);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, gate.wrap(fixture.loader()), config);
    InferenceService& service = pool;

    RequestTicket first =
        service.submit("task0", Tensor({3, 32, 32}, 0.1f), {});
    gate.entered.wait();  // dispatch is now wedged
    RequestTicket second =
        service.submit("task0", Tensor({3, 32, 32}, 0.2f), {});
    // Two in flight at max_pending=2: the third MUST be shed — as data,
    // not an exception.
    Outcome<InferenceResult> shed =
        service.run("task0", Tensor({3, 32, 32}, 0.3f));
    EXPECT_EQ(shed.status(), ServeStatus::overloaded);
    EXPECT_NE(shed.message().find("max_pending"), std::string::npos);

    gate.open_promise.set_value();
    EXPECT_TRUE(first.wait().ok());
    EXPECT_TRUE(second.wait().ok());
    service.drain();

    const ServiceStats stats = service.service_stats();
    EXPECT_EQ(stats.completed, 2);
    EXPECT_EQ(stats.shed, 1);
    service.stop();
}

// ---------------------------------------------------------------------------
// ServiceState (the shared drain/stop/throughput bookkeeping)
// ---------------------------------------------------------------------------

TEST(ServiceState, ThroughputGuardsZeroLengthWindow) {
    // A single instantly-completed request makes first_enqueue ==
    // last_completion; the rate must clamp to 0, never inf/NaN.
    ServiceState state;
    const Clock::time_point now = Clock::now();
    ASSERT_TRUE(state.register_submit(now).has_value());
    state.complete(1, now);
    EXPECT_EQ(state.completed(), 1);
    EXPECT_EQ(state.throughput_rps(), 0.0);

    // A non-degenerate window reports a finite positive rate.
    ASSERT_TRUE(state.register_submit(now).has_value());
    state.complete(1, now + std::chrono::milliseconds(10));
    EXPECT_NEAR(state.throughput_rps(), 200.0, 1e-6);
}

TEST(ServiceState, IdsAreSequentialAndStopIsIdempotent) {
    ServiceState state;
    const Clock::time_point now = Clock::now();
    EXPECT_EQ(state.register_submit(now), std::optional<std::int64_t>(0));
    EXPECT_EQ(state.register_submit(now), std::optional<std::int64_t>(1));
    EXPECT_TRUE(state.begin_stop());
    EXPECT_FALSE(state.begin_stop());
    EXPECT_FALSE(state.register_submit(now).has_value());
    state.complete(2, now);
    state.drain();  // completed == submitted: returns immediately
}

}  // namespace
}  // namespace mime::serve
