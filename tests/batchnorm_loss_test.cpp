// Tests for BatchNorm2d and SoftmaxCrossEntropy.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "nn/batchnorm.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"

namespace mime::nn {
namespace {

TEST(BatchNorm, NormalizesPerChannelInTraining) {
    BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(5);
    Tensor x = Tensor::randn({4, 2, 8, 8}, rng, 3.0f, 2.0f);
    const Tensor y = bn.forward(x);

    // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
    for (std::int64_t c = 0; c < 2; ++c) {
        double mean_acc = 0.0;
        double var_acc = 0.0;
        std::int64_t count = 0;
        for (std::int64_t n = 0; n < 4; ++n) {
            for (std::int64_t s = 0; s < 64; ++s) {
                const float v = y.at({n, c, s / 8, s % 8});
                mean_acc += v;
                ++count;
            }
        }
        const double m = mean_acc / count;
        for (std::int64_t n = 0; n < 4; ++n) {
            for (std::int64_t s = 0; s < 64; ++s) {
                const double d = y.at({n, c, s / 8, s % 8}) - m;
                var_acc += d * d;
            }
        }
        EXPECT_NEAR(m, 0.0, 1e-4);
        EXPECT_NEAR(var_acc / count, 1.0, 1e-3);
    }
}

TEST(BatchNorm, AffineParametersApplied) {
    BatchNorm2d bn(1);
    bn.set_training(true);
    bn.gamma().value[0] = 2.0f;
    bn.beta().value[0] = 5.0f;
    Rng rng(2);
    const Tensor x = Tensor::randn({8, 1, 4, 4}, rng);
    const Tensor y = bn.forward(x);
    EXPECT_NEAR(mean(y), 5.0f, 1e-3f);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
    BatchNorm2d bn(1, /*momentum=*/1.0f);
    bn.set_training(true);
    Rng rng(3);
    const Tensor x = Tensor::randn({16, 1, 4, 4}, rng, 10.0f, 1.0f);
    bn.forward(x);  // momentum 1 → running stats = batch stats

    bn.set_training(false);
    const Tensor probe({1, 1, 1, 1},
                       std::vector<float>{bn.running_mean()[0]});
    // Input equal to the running mean normalizes to ~beta.
    Tensor padded({1, 1, 4, 4}, bn.running_mean()[0]);
    const Tensor y = bn.forward(padded);
    EXPECT_NEAR(y[0], bn.beta().value[0], 1e-4f);
}

TEST(BatchNorm, ForwardIntoBitMatchesInferenceForwardInPlace) {
    BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(8);
    // A few training steps so running statistics are non-trivial.
    for (int i = 0; i < 3; ++i) {
        bn.forward(Tensor::randn({4, 2, 3, 3}, rng, 0.5f, 2.0f));
    }
    bn.set_training(false);
    const Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
    const Tensor expected = bn.forward(x);

    bn.set_eval_mode(true);
    Tensor out(x.shape());
    bn.forward_into(x, out);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(out[i], expected[i]);
    }
    // In-place: the planned executor normalizes conv activations where
    // they sit.
    Tensor inplace = x;
    bn.forward_into(inplace, inplace);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(inplace[i], expected[i]);
    }
}

TEST(BatchNorm, EvalModeAloneSufficesWithoutSetTraining) {
    // set_eval_mode(true) must imply the running-statistics path even
    // if the caller never touched the training flag (parity with every
    // other layer's eval behavior).
    BatchNorm2d bn(2);
    bn.set_eval_mode(true);  // training() is still true here
    Rng rng(10);
    const Tensor x = Tensor::randn({1, 2, 3, 3}, rng);
    const Tensor y = bn.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_EQ(bn.cached_state_bytes(), 0);
    // Fresh running stats (mean 0, var 1): output ~= gamma*x/sqrt(1+eps).
    const float inv_std = 1.0f / std::sqrt(1.0f + 1e-5f);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        ASSERT_FLOAT_EQ(y[i], x[i] * inv_std);
    }
}

TEST(BatchNorm, EvalModeForwardRetainsNoBatchStatState) {
    BatchNorm2d bn(3);
    Rng rng(9);
    const Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
    bn.set_training(false);
    bn.forward(x);  // inference mode alone still caches for backward
    EXPECT_GT(bn.cached_state_bytes(), 0);

    bn.set_eval_mode(true);
    EXPECT_EQ(bn.cached_state_bytes(), 0);
    const Tensor y = bn.forward(x);
    EXPECT_EQ(bn.cached_state_bytes(), 0);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_THROW(bn.backward(y), check_error);
}

TEST(BatchNorm, TrainingGradCheck) {
    BatchNorm2d bn(3);
    bn.set_training(true);
    Rng rng(9);
    const Tensor x = Tensor::randn({4, 3, 4, 4}, rng);
    GradCheckOptions options;
    options.tolerance = 8e-2;  // batch-statistics adjoint is noisier in f32
    const auto input_result = check_input_gradient(bn, x, rng, options);
    EXPECT_TRUE(input_result.passed) << input_result.detail;
    const auto param_result = check_parameter_gradients(bn, x, rng, options);
    EXPECT_TRUE(param_result.passed) << param_result.detail;
}

TEST(BatchNorm, RejectsWrongChannels) {
    BatchNorm2d bn(3);
    const Tensor x({1, 2, 4, 4});
    EXPECT_THROW(bn.forward(x), mime::check_error);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({2, 4});  // all zeros → uniform
    const double value = loss.forward(logits, {0, 3});
    EXPECT_NEAR(value, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
    SoftmaxCrossEntropy loss;
    Tensor logits({1, 3});
    logits[1] = 50.0f;
    const double value = loss.forward(logits, {1});
    EXPECT_LT(value, 1e-6);
    EXPECT_EQ(loss.last_correct(), 1);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({1, 3}, std::vector<float>{1, 2, 3});
    loss.forward(logits, {2});
    const Tensor g = loss.backward();
    // Gradient sums to zero per row and is negative only at the label.
    double row_sum = 0.0;
    for (std::int64_t c = 0; c < 3; ++c) {
        row_sum += g[c];
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
    EXPECT_LT(g[2], 0.0f);
    EXPECT_GT(g[0], 0.0f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
    SoftmaxCrossEntropy loss;
    Rng rng(6);
    Tensor logits = Tensor::randn({3, 5}, rng);
    const std::vector<std::int64_t> labels{0, 2, 4};
    loss.forward(logits, labels);
    const Tensor g = loss.backward();

    const double eps = 1e-3;
    for (std::int64_t i = 0; i < logits.numel(); i += 3) {
        const float saved = logits[i];
        logits[i] = saved + static_cast<float>(eps);
        const double plus = loss.forward(logits, labels);
        logits[i] = saved - static_cast<float>(eps);
        const double minus = loss.forward(logits, labels);
        logits[i] = saved;
        EXPECT_NEAR(g[i], (plus - minus) / (2 * eps), 2e-4) << "logit " << i;
    }
}

TEST(CrossEntropy, CountsCorrectPredictions) {
    SoftmaxCrossEntropy loss;
    Tensor logits({3, 2});
    logits.at({0, 1}) = 5.0f;  // predicts 1
    logits.at({1, 0}) = 5.0f;  // predicts 0
    logits.at({2, 1}) = 5.0f;  // predicts 1
    loss.forward(logits, {1, 0, 0});
    EXPECT_EQ(loss.last_correct(), 2);
}

TEST(CrossEntropy, RejectsBadLabels) {
    SoftmaxCrossEntropy loss;
    const Tensor logits({1, 3});
    EXPECT_THROW(loss.forward(logits, {3}), mime::check_error);
    EXPECT_THROW(loss.forward(logits, {-1}), mime::check_error);
    EXPECT_THROW(loss.forward(logits, {0, 1}), mime::check_error);
}

}  // namespace
}  // namespace mime::nn
