// Tests for im2col / col2im lowering.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/im2col.h"

namespace mime {
namespace {

ConvGeometry make_geometry(std::int64_t c, std::int64_t h, std::int64_t w,
                           std::int64_t k, std::int64_t stride,
                           std::int64_t pad) {
    ConvGeometry g;
    g.in_channels = c;
    g.in_height = h;
    g.in_width = w;
    g.kernel = k;
    g.stride = stride;
    g.padding = pad;
    return g;
}

TEST(ConvGeometry, OutputExtents) {
    const auto g = make_geometry(3, 32, 32, 3, 1, 1);
    EXPECT_EQ(g.out_height(), 32);
    EXPECT_EQ(g.out_width(), 32);
    EXPECT_EQ(g.col_rows(), 27);
    EXPECT_EQ(g.col_cols(), 1024);
}

TEST(ConvGeometry, StridedExtents) {
    const auto g = make_geometry(1, 8, 8, 2, 2, 0);
    EXPECT_EQ(g.out_height(), 4);
    EXPECT_EQ(g.out_width(), 4);
}

TEST(ConvGeometry, RejectsDegenerate) {
    auto g = make_geometry(1, 2, 2, 5, 1, 0);
    EXPECT_THROW(g.validate(), check_error);
    g = make_geometry(0, 2, 2, 1, 1, 0);
    EXPECT_THROW(g.validate(), check_error);
}

TEST(Im2col, IdentityKernel) {
    // 1x1 kernel, stride 1: columns equal the input exactly.
    const auto g = make_geometry(2, 3, 3, 1, 1, 0);
    std::vector<float> input(18);
    std::iota(input.begin(), input.end(), 0.0f);
    std::vector<float> cols(
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    im2col(g, input.data(), cols.data());
    for (std::size_t i = 0; i < input.size(); ++i) {
        EXPECT_EQ(cols[i], input[i]);
    }
}

TEST(Im2col, KnownWindow) {
    // 1 channel 3x3 input, 2x2 kernel, stride 1, no padding → 2x2 output.
    const auto g = make_geometry(1, 3, 3, 2, 1, 0);
    const std::vector<float> input{1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<float> cols(static_cast<std::size_t>(4 * 4));
    im2col(g, input.data(), cols.data());
    // Row 0 is kernel tap (0,0): top-left of each window.
    EXPECT_EQ(cols[0], 1);
    EXPECT_EQ(cols[1], 2);
    EXPECT_EQ(cols[2], 4);
    EXPECT_EQ(cols[3], 5);
    // Row 3 is tap (1,1): bottom-right of each window.
    EXPECT_EQ(cols[12], 5);
    EXPECT_EQ(cols[15], 9);
}

TEST(Im2col, PaddingProducesZeros) {
    const auto g = make_geometry(1, 2, 2, 3, 1, 1);
    const std::vector<float> input{1, 2, 3, 4};
    std::vector<float> cols(static_cast<std::size_t>(9 * 4));
    im2col(g, input.data(), cols.data());
    // Tap (0,0) for output (0,0) reads input (-1,-1) → zero.
    EXPECT_EQ(cols[0], 0.0f);
    // Tap (1,1) for output (0,0) reads input (0,0) = 1.
    EXPECT_EQ(cols[4 * 4 + 0], 1.0f);
}

TEST(Col2im, AdjointOfIm2col) {
    // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
    // adjoint property used by the convolution backward pass.
    const auto g = make_geometry(3, 7, 6, 3, 2, 1);
    Rng rng(21);
    const std::int64_t in_size = 3 * 7 * 6;
    const std::int64_t col_size = g.col_rows() * g.col_cols();

    std::vector<float> x(static_cast<std::size_t>(in_size));
    std::vector<float> y(static_cast<std::size_t>(col_size));
    for (auto& v : x) {
        v = static_cast<float>(rng.normal());
    }
    for (auto& v : y) {
        v = static_cast<float>(rng.normal());
    }

    std::vector<float> cols(static_cast<std::size_t>(col_size));
    im2col(g, x.data(), cols.data());
    double lhs = 0.0;
    for (std::int64_t i = 0; i < col_size; ++i) {
        lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) *
               y[static_cast<std::size_t>(i)];
    }

    std::vector<float> back(static_cast<std::size_t>(in_size), 0.0f);
    col2im(g, y.data(), back.data());
    double rhs = 0.0;
    for (std::int64_t i = 0; i < in_size; ++i) {
        rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
               back[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Col2im, AccumulatesOverlaps) {
    // 3x3 kernel stride 1: center input pixel of a 3x3 map is covered by
    // all windows that include it; ones in columns accumulate the
    // coverage count.
    const auto g = make_geometry(1, 3, 3, 3, 1, 1);
    std::vector<float> cols(static_cast<std::size_t>(9 * 9), 1.0f);
    std::vector<float> grad(9, 0.0f);
    col2im(g, cols.data(), grad.data());
    // Center pixel (1,1) is read by all 9 windows.
    EXPECT_FLOAT_EQ(grad[4], 9.0f);
    // Corner pixel (0,0) is read by the 4 windows whose tap grid covers it.
    EXPECT_FLOAT_EQ(grad[0], 4.0f);
}

class Im2colRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colRoundTrip, AdjointHoldsAcrossGeometries) {
    const auto [channels, size, kernel, stride] = GetParam();
    const auto g =
        make_geometry(channels, size, size, kernel, stride, kernel / 2);
    Rng rng(5);
    const std::int64_t in_size = channels * size * size;
    const std::int64_t col_size = g.col_rows() * g.col_cols();

    std::vector<float> x(static_cast<std::size_t>(in_size));
    std::vector<float> y(static_cast<std::size_t>(col_size));
    for (auto& v : x) {
        v = static_cast<float>(rng.normal());
    }
    for (auto& v : y) {
        v = static_cast<float>(rng.normal());
    }
    std::vector<float> cols(static_cast<std::size_t>(col_size));
    im2col(g, x.data(), cols.data());
    std::vector<float> back(static_cast<std::size_t>(in_size), 0.0f);
    col2im(g, y.data(), back.data());

    double lhs = 0.0;
    double rhs = 0.0;
    for (std::int64_t i = 0; i < col_size; ++i) {
        lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) *
               y[static_cast<std::size_t>(i)];
    }
    for (std::int64_t i = 0; i < in_size; ++i) {
        rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
               back[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(lhs, rhs, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colRoundTrip,
    ::testing::Values(std::tuple{1, 5, 3, 1}, std::tuple{2, 8, 3, 2},
                      std::tuple{4, 6, 1, 1}, std::tuple{3, 9, 5, 2},
                      std::tuple{2, 4, 2, 2}));

}  // namespace
}  // namespace mime
