// Tests for the systolic-array inference simulator: the mechanisms behind
// the paper's Figs 5-9 must hold as properties, not just as printed rows.
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/simulator.h"

namespace mime::hw {
namespace {

std::vector<arch::LayerSpec> eval_layers() {
    arch::VggConfig config;
    config.input_size = 64;  // hardware-evaluation geometry (DESIGN.md)
    return vgg16_spec(config);
}

TEST(Simulator, SchemeNames) {
    EXPECT_EQ(scheme_name(Scheme::baseline_dense), "Case-1");
    EXPECT_EQ(scheme_name(Scheme::baseline_sparse), "Case-2");
    EXPECT_EQ(scheme_name(Scheme::mime), "MIME");
    EXPECT_EQ(scheme_name(Scheme::pruned), "Pruned");
}

TEST(Simulator, OptionsValidation) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    SimulationOptions options;
    options.profiles = {SparsityProfile::uniform("u", 0.5)};
    options.batch = {0, 5};  // unknown task
    EXPECT_THROW(sim.run(layers, options), mime::check_error);
    options.batch = {0};
    options.weight_sparsity = 0.5;  // only valid for pruned
    EXPECT_THROW(sim.run(layers, options), mime::check_error);
    options.weight_sparsity = 0.0;
    EXPECT_NO_THROW(sim.run(layers, options));
}

TEST(Simulator, MimeSharesWeightsInPipelinedMode) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto mime =
        sim.run(layers, pipelined_options(Scheme::mime));
    const auto conventional =
        sim.run(layers, pipelined_options(Scheme::baseline_sparse));

    // MIME loads one weight version; the conventional scheme loads three
    // (per-task fine-tuned weights) for every layer too large to keep all
    // versions resident.
    EXPECT_LT(mime.total_counts.dram_weight_words,
              conventional.total_counts.dram_weight_words);
    // Across the whole network the conventional scheme approaches 3x.
    const double ratio = conventional.total_counts.dram_weight_words /
                         mime.total_counts.dram_weight_words;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LE(ratio, 3.0 + 1e-9);
}

TEST(Simulator, MimePipelinedFetchesThresholdsPerTask) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto pipelined = sim.run(layers, pipelined_options(Scheme::mime));
    const auto singular =
        sim.run(layers, singular_options(Scheme::mime, PaperTask::cifar10));

    std::int64_t neurons = 0;
    for (const auto& l : layers) {
        neurons += l.neuron_count();
    }
    // Pipelined: 3 distinct tasks → 3 threshold sets; singular: 1.
    EXPECT_DOUBLE_EQ(pipelined.total_counts.dram_threshold_words,
                     3.0 * static_cast<double>(neurons));
    EXPECT_DOUBLE_EQ(singular.total_counts.dram_threshold_words,
                     static_cast<double>(neurons));
}

TEST(Simulator, ConventionalSchemesFetchNoThresholds) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    for (const Scheme scheme : {Scheme::baseline_dense, Scheme::baseline_sparse,
                                Scheme::pruned}) {
        const auto result = sim.run(layers, pipelined_options(scheme));
        EXPECT_DOUBLE_EQ(result.total_counts.dram_threshold_words, 0.0)
            << scheme_name(scheme);
    }
}

TEST(Simulator, SingularWeightTrafficEqualAcrossSchemes) {
    // In Singular task mode every scheme keeps one weight version; MIME's
    // DRAM differs only by the threshold stream (its E_DRAM is slightly
    // higher than Case-2, as the paper reports for Fig 5).
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto case2 = sim.run(
        layers, singular_options(Scheme::baseline_sparse, PaperTask::cifar10));
    const auto mime =
        sim.run(layers, singular_options(Scheme::mime, PaperTask::cifar10));
    EXPECT_DOUBLE_EQ(case2.total_counts.dram_weight_words,
                     mime.total_counts.dram_weight_words);
    EXPECT_GT(mime.total_energy.e_dram, 0.9 * case2.total_energy.e_dram);
}

TEST(Simulator, ZeroSkippingReducesMacs) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto dense = sim.run(
        layers, singular_options(Scheme::baseline_dense, PaperTask::cifar10));
    const auto sparse = sim.run(
        layers, singular_options(Scheme::baseline_sparse, PaperTask::cifar10));
    const auto mime =
        sim.run(layers, singular_options(Scheme::mime, PaperTask::cifar10));

    EXPECT_GT(dense.total_counts.macs, sparse.total_counts.macs);
    EXPECT_GT(sparse.total_counts.macs, mime.total_counts.macs);

    // Dense MAC count equals the analytic total (3 images).
    std::int64_t macs = 0;
    for (const auto& l : layers) {
        macs += l.mac_count();
    }
    EXPECT_DOUBLE_EQ(dense.total_counts.macs, 3.0 * static_cast<double>(macs));
}

TEST(Simulator, MacsMatchSparsityExactly) {
    // One layer, one image: effective MACs = dense * (1 - s_in).
    const InferenceSimulator sim{SystolicConfig{}};
    arch::VggConfig config;
    config.input_size = 64;
    const auto layers = vgg16_spec(config);

    SimulationOptions options;
    options.scheme = Scheme::baseline_sparse;
    options.batch = {0};
    options.profiles = {SparsityProfile::uniform("u", 0.5)};
    const auto result = sim.run(layers, options);

    // Layer 0 input is dense; every later layer's input sparsity is 0.5.
    EXPECT_DOUBLE_EQ(result.layers[0].counts.macs,
                     static_cast<double>(layers[0].mac_count()));
    EXPECT_DOUBLE_EQ(result.layers[3].counts.macs,
                     0.5 * static_cast<double>(layers[3].mac_count()));
}

TEST(Simulator, PrunedSkipsWeightComputeButNotDram) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto pruned = sim.run(layers, pipelined_options(Scheme::pruned));
    const auto case2 =
        sim.run(layers, pipelined_options(Scheme::baseline_sparse));

    // 90% weight sparsity cuts compute ~10x ...
    EXPECT_LT(pruned.total_counts.macs, 0.15 * case2.total_counts.macs);
    // ... but DRAM weight layouts stay dense (paper's accounting).
    EXPECT_DOUBLE_EQ(pruned.total_counts.dram_weight_words,
                     case2.total_counts.dram_weight_words);
}

TEST(Simulator, Figure6EnergyOrdering) {
    // Pipelined task mode: MIME < Case-2 < Case-1 in total energy, with
    // the paper's headline band (~2.4-3.1x vs Case-1) over the even conv
    // layers it reports.
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    const auto case1 =
        sim.run(layers, pipelined_options(Scheme::baseline_dense));
    const auto case2 =
        sim.run(layers, pipelined_options(Scheme::baseline_sparse));
    const auto mime = sim.run(layers, pipelined_options(Scheme::mime));

    EXPECT_LT(mime.total_energy.total(), case2.total_energy.total());
    EXPECT_LT(case2.total_energy.total(), case1.total_energy.total());

    const double savings =
        case1.total_energy.total() / mime.total_energy.total();
    EXPECT_GT(savings, 1.8);
    EXPECT_LT(savings, 4.0);
}

TEST(Simulator, Figure5SingularMimeVsCase2Band) {
    // Singular mode: MIME saves ~1.07-1.30x vs Case-2 per the paper; we
    // assert the network-total ratio falls in a compatible band.
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    const auto case2 = sim.run(
        layers, singular_options(Scheme::baseline_sparse, PaperTask::cifar10));
    const auto mime =
        sim.run(layers, singular_options(Scheme::mime, PaperTask::cifar10));
    const double ratio = case2.total_energy.total() / mime.total_energy.total();
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.6);
}

TEST(Simulator, Figure7ThroughputBand) {
    // Pipelined throughput improvement vs Case-1 tracks 1/(1 - sparsity):
    // ~2.8-3.0x at the paper's ~0.65 sparsity.
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    const auto case1 =
        sim.run(layers, pipelined_options(Scheme::baseline_dense));
    const auto mime = sim.run(layers, pipelined_options(Scheme::mime));

    const double speedup = case1.total_cycles / mime.total_cycles;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 3.5);
}

TEST(Simulator, Figure8CrossoverEarlyVsLateLayers) {
    // MIME vs pruned comparators in Pipelined mode: pruned wins at conv2
    // (thresholds outnumber weights), MIME wins in the deepest layers
    // (weight re-fetch for 3 tasks dominates).
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    const auto mime = sim.run(layers, pipelined_options(Scheme::mime));
    const auto pruned = sim.run(layers, pipelined_options(Scheme::pruned));

    const double conv2_mime = mime.layer("conv2").energy.total();
    const double conv2_pruned = pruned.layer("conv2").energy.total();
    EXPECT_GT(conv2_mime, conv2_pruned);

    const double conv13_mime = mime.layer("conv13").energy.total();
    const double conv13_pruned = pruned.layer("conv13").energy.total();
    EXPECT_LT(conv13_mime, conv13_pruned);
}

TEST(Simulator, Figure9SmallerPeArrayCostsEnergy) {
    // Case-B: PE array 1024 → 256 raises middle-layer energy (the paper
    // reports ~1.26-1.41x for conv5-conv10). The design-space ablation
    // compares fixed natural mappings (see DESIGN.md) — with the tile
    // optimizer on, a remapped design would hide the hardware penalty.
    SystolicConfig small_pe;
    small_pe.pe_array_size = 256;
    const InferenceSimulator sim_a{SystolicConfig{}};
    const InferenceSimulator sim_b{small_pe};
    const auto layers = eval_layers();

    auto options = pipelined_options(Scheme::mime);
    options.optimize_tiling = false;
    const auto a = sim_a.run(layers, options);
    const auto b = sim_b.run(layers, options);

    double worst = 0.0;
    for (const char* name : {"conv5", "conv6", "conv7", "conv8", "conv9",
                             "conv10"}) {
        const double ratio =
            b.layer(name).energy.total() / a.layer(name).energy.total();
        EXPECT_GE(ratio, 1.0) << name;
        worst = std::max(worst, ratio);
    }
    EXPECT_GT(worst, 1.05);  // a visible penalty, as in Fig 9
    // Throughput suffers too (4x fewer PEs).
    EXPECT_GT(b.total_cycles, 2.0 * a.total_cycles);
}

TEST(Simulator, Figure9SmallerCacheMilderThanSmallerPe) {
    // Case-C: shrinking the cache 156KB → 128KB costs less energy than
    // shrinking the PE array 4x (the paper's summary recommendation).
    SystolicConfig small_cache;
    small_cache.total_cache_bytes = 128 * 1024;
    SystolicConfig small_pe;
    small_pe.pe_array_size = 256;

    const auto layers = eval_layers();
    auto options = pipelined_options(Scheme::mime);
    options.optimize_tiling = false;  // fixed natural mapping (ablation)
    const auto base =
        InferenceSimulator{SystolicConfig{}}.run(layers, options);
    const auto cache_run =
        InferenceSimulator{small_cache}.run(layers, options);
    const auto pe_run = InferenceSimulator{small_pe}.run(layers, options);

    const double cache_penalty =
        cache_run.total_energy.total() / base.total_energy.total();
    const double pe_penalty =
        pe_run.total_energy.total() / base.total_energy.total();
    EXPECT_GE(cache_penalty, 1.0 - 1e-9);
    EXPECT_GT(pe_penalty, cache_penalty);
}

TEST(Simulator, TilingOptimizerNeverWorseThanDefault) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    auto options = pipelined_options(Scheme::mime);
    options.optimize_tiling = true;
    const auto optimized = sim.run(layers, options);
    options.optimize_tiling = false;
    const auto fixed = sim.run(layers, options);
    EXPECT_LE(optimized.total_energy.total(),
              fixed.total_energy.total() + 1e-6);
}

TEST(Simulator, LayerLookupByName) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    const auto result = sim.run(layers, pipelined_options(Scheme::mime));
    EXPECT_EQ(result.layer("conv8").name, "conv8");
    EXPECT_THROW(result.layer("conv99"), mime::check_error);
    EXPECT_EQ(result.layers.size(), 15u);
}

TEST(Simulator, EnergyComponentsAllPositive) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();
    const auto result = sim.run(layers, pipelined_options(Scheme::mime));
    for (const auto& l : result.layers) {
        EXPECT_GT(l.energy.e_dram, 0.0) << l.name;
        EXPECT_GT(l.energy.e_cache, 0.0) << l.name;
        EXPECT_GT(l.energy.e_reg, 0.0) << l.name;
        EXPECT_GT(l.energy.e_mac, 0.0) << l.name;
        EXPECT_GT(l.cycles, 0.0) << l.name;
    }
}

// Sweep: total energy decreases monotonically as activation sparsity
// rises (the core dynamic-pruning payoff).
class SparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsitySweep, EnergyDecreasesWithSparsity) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto layers = eval_layers();

    SimulationOptions lo;
    lo.scheme = Scheme::mime;
    lo.batch = {0, 0, 0};
    lo.profiles = {SparsityProfile::uniform("lo", GetParam())};
    SimulationOptions hi = lo;
    hi.profiles = {SparsityProfile::uniform("hi", GetParam() + 0.2)};

    const auto lo_result = sim.run(layers, lo);
    const auto hi_result = sim.run(layers, hi);
    EXPECT_LT(hi_result.total_energy.total(), lo_result.total_energy.total());
    EXPECT_LT(hi_result.total_cycles, lo_result.total_cycles);
}

INSTANTIATE_TEST_SUITE_P(Levels, SparsitySweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6));

}  // namespace
}  // namespace mime::hw
