// Tests for the DRAM storage model (paper Figs 1 and 4).
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"
#include "core/storage.h"

namespace mime::core {
namespace {

StorageModel eval_model(StorageModelConfig config = {}) {
    arch::VggConfig vgg;
    vgg.input_size = 64;  // hardware-evaluation geometry
    vgg.num_classes = 100;
    return StorageModel(arch::vgg16_spec(vgg), arch::vgg16_classifier(vgg),
                        config);
}

TEST(Storage, WeightBytesMatchSpec) {
    arch::VggConfig vgg;
    vgg.input_size = 64;
    vgg.num_classes = 100;
    const auto layers = arch::vgg16_spec(vgg);
    const auto cls = arch::vgg16_classifier(vgg);
    const StorageModel model(layers, cls);

    const std::int64_t expected =
        (arch::total_weights(layers) + cls.weight_count()) * 2;
    EXPECT_EQ(model.weight_bytes(), expected);
    EXPECT_EQ(model.threshold_bytes(), arch::total_neurons(layers) * 2);
}

TEST(Storage, ThresholdsMuchSmallerThanWeights) {
    const auto model = eval_model();
    EXPECT_LT(model.threshold_bytes(), model.weight_bytes() / 10);
}

TEST(Storage, ZeroChildrenDegenerate) {
    const auto model = eval_model();
    // With no children both schemes store exactly one parent model.
    EXPECT_EQ(model.conventional_total_bytes(0), model.weight_bytes());
    EXPECT_EQ(model.mime_total_bytes(0), model.weight_bytes());
    EXPECT_DOUBLE_EQ(model.savings(0), 1.0);
}

TEST(Storage, PaperHeadlineSavingsAtThreeChildren) {
    // Paper: ~3.48x savings for ImageNet parent + 3 children. Our
    // geometry lands in the same band (see EXPERIMENTS.md).
    const auto model = eval_model();
    const double savings = model.savings(3);
    EXPECT_GT(savings, 3.0);
    EXPECT_LT(savings, 4.0);
}

TEST(Storage, SavingsExceedChildCountInPaperRange) {
    // Fig 4's "> n x" annotation over the paper's 1-3 child range.
    const auto model = eval_model();
    for (std::int64_t n = 1; n <= 3; ++n) {
        EXPECT_GT(model.savings(n), static_cast<double>(n)) << n;
    }
}

TEST(Storage, SavingsGrowWithChildren) {
    const auto model = eval_model();
    double prev = 1.0;
    for (std::int64_t n = 1; n <= 8; ++n) {
        const double s = model.savings(n);
        EXPECT_GT(s, prev);
        prev = s;
    }
    // Saturation bound: savings can never exceed W/T per child.
    EXPECT_LT(prev,
              static_cast<double>(model.weight_bytes()) /
                  static_cast<double>(model.threshold_bytes()));
}

TEST(Storage, MimeGrowsLinearlyInThresholds) {
    const auto model = eval_model();
    const std::int64_t d1 =
        model.mime_total_bytes(2) - model.mime_total_bytes(1);
    const std::int64_t d2 =
        model.mime_total_bytes(5) - model.mime_total_bytes(4);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, model.threshold_bytes());
}

TEST(Storage, ConventionalGrowsLinearlyInWeights) {
    const auto model = eval_model();
    const std::int64_t d =
        model.conventional_total_bytes(4) - model.conventional_total_bytes(3);
    EXPECT_EQ(d, model.weight_bytes());
}

TEST(Storage, ParentExclusionLowersConventional) {
    StorageModelConfig no_parent;
    no_parent.count_parent_model = false;
    const auto with_parent = eval_model();
    const auto without_parent = eval_model(no_parent);
    EXPECT_EQ(with_parent.conventional_total_bytes(3) -
                  without_parent.conventional_total_bytes(3),
              with_parent.weight_bytes());
    // Children-only accounting still saves >2x at n = 3.
    EXPECT_GT(without_parent.savings(3), 2.0);
}

TEST(Storage, ChildHeadsOptionallyCounted) {
    StorageModelConfig with_heads;
    with_heads.count_child_heads = true;
    const auto base = eval_model();
    const auto heads = eval_model(with_heads);
    EXPECT_EQ(heads.mime_total_bytes(3) - base.mime_total_bytes(3),
              3 * heads.head_bytes());
    // Heads are tiny: the savings band is preserved.
    EXPECT_GT(heads.savings(3), 2.9);
}

TEST(Storage, PrecisionScalesBytes) {
    StorageModelConfig p8;
    p8.precision_bits = 8;
    const auto model16 = eval_model();
    const auto model8 = eval_model(p8);
    EXPECT_EQ(model16.weight_bytes(), 2 * model8.weight_bytes());
    // The savings ratio is precision-invariant.
    EXPECT_DOUBLE_EQ(model16.savings(3), model8.savings(3));
}

TEST(Storage, RejectsBadConfig) {
    arch::VggConfig vgg;
    vgg.input_size = 64;
    StorageModelConfig bad;
    bad.precision_bits = 12;
    EXPECT_THROW(StorageModel(arch::vgg16_spec(vgg),
                              arch::vgg16_classifier(vgg), bad),
                 mime::check_error);
    const auto model = eval_model();
    EXPECT_THROW(model.savings(-1), mime::check_error);
}

}  // namespace
}  // namespace mime::core
