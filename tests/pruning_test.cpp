// Tests for the pruning baselines (Fig 8 comparators).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/mime_network.h"
#include "core/pruning.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 5;
    return config;
}

data::Batch probe_batch() {
    data::TaskSuiteOptions options;
    options.train_size = 16;
    options.test_size = 8;
    options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(options);
    return suite.family->train_split(suite.cifar10_like).head(8);
}

TEST(Pruning, MagnitudeAchievesTargetPerLayer) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = magnitude_prune(net, 0.9);
    EXPECT_EQ(masks.size(), 15u);  // 13 conv + 2 fc weight tensors
    for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_NEAR(masks.sparsity(i), 0.9, 0.02) << "layer " << i;
    }
    EXPECT_NEAR(masks.overall_sparsity(), 0.9, 0.02);
}

TEST(Pruning, SnipAchievesTargetPerLayer) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = prune_at_init(net, probe_batch(), 0.9);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_NEAR(masks.sparsity(i), 0.9, 0.02) << "layer " << i;
    }
}

TEST(Pruning, ApplyZeroesMaskedWeights) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = magnitude_prune(net, 0.5);
    const auto measured = measured_weight_sparsity(net);
    ASSERT_EQ(measured.size(), masks.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        EXPECT_GE(measured[i], 0.45) << "layer " << i;
    }
}

TEST(Pruning, ApplyIsIdempotent) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = magnitude_prune(net, 0.8);
    const auto before = measured_weight_sparsity(net);
    masks.apply();
    masks.apply();
    const auto after = measured_weight_sparsity(net);
    EXPECT_EQ(before, after);
}

TEST(Pruning, MagnitudeKeepsLargestWeights) {
    MimeNetwork net(tiny_config());
    // Plant an unmistakably large weight; it must survive 90% pruning.
    nn::Parameter* w = net.backbone_parameters()[0];
    w->value[0] = 100.0f;
    magnitude_prune(net, 0.9);
    EXPECT_FLOAT_EQ(w->value[0], 100.0f);
}

TEST(Pruning, BiasesAndClassifierNeverPruned) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = magnitude_prune(net, 0.9);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        const auto& name = masks.entry(i).parameter->name;
        EXPECT_EQ(name.find(".bias"), std::string::npos);
        EXPECT_EQ(name.find("classifier"), std::string::npos);
    }
    // Classifier weights stay dense.
    const auto params = net.backbone_parameters();
    const nn::Parameter* cls = params[params.size() - 2];
    EXPECT_LT(zero_fraction(cls->value), 0.01);
}

TEST(Pruning, ZeroSparsityKeepsEverything) {
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks = magnitude_prune(net, 0.0);
    EXPECT_DOUBLE_EQ(masks.overall_sparsity(), 0.0);
}

TEST(Pruning, RejectsFullSparsity) {
    MimeNetwork net(tiny_config());
    EXPECT_THROW(magnitude_prune(net, 1.0), mime::check_error);
    EXPECT_THROW(magnitude_prune(net, -0.1), mime::check_error);
}

TEST(Pruning, MaskSetValidatesShapes) {
    MimeNetwork net(tiny_config());
    WeightMaskSet set;
    nn::Parameter* w = net.backbone_parameters()[0];
    EXPECT_THROW(set.add(w, Tensor({3})), mime::check_error);
    EXPECT_THROW(set.add(nullptr, Tensor({3})), mime::check_error);
    EXPECT_THROW(set.entry(0), mime::check_error);
}

TEST(Pruning, SnipAndMagnitudeDiffer) {
    MimeNetwork net_a(tiny_config());
    MimeNetwork net_b(tiny_config());  // identical init (same seed)
    const WeightMaskSet snip = prune_at_init(net_a, probe_batch(), 0.5);
    const WeightMaskSet mag = magnitude_prune(net_b, 0.5);
    // Saliency |g*w| ranks differently from |w| somewhere.
    bool differs = false;
    for (std::size_t l = 0; l < snip.size() && !differs; ++l) {
        const Tensor& ms = snip.entry(l).mask;
        const Tensor& mm = mag.entry(l).mask;
        for (std::int64_t i = 0; i < ms.numel(); ++i) {
            if (ms[i] != mm[i]) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mime::core
