// Tests for the knowledge-distillation baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/distillation.h"
#include "core/trainer.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig net_config(double width, std::uint64_t seed) {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = width;
    config.vgg.num_classes = 10;
    config.batchnorm = true;
    config.seed = seed;
    return config;
}

TEST(DistillLoss, ZeroWhenIdentical) {
    Rng rng(1);
    const Tensor logits = Tensor::randn({4, 10}, rng);
    EXPECT_NEAR(distillation_loss(logits, logits, 3.0f), 0.0, 1e-6);
}

TEST(DistillLoss, PositiveWhenDifferent) {
    Rng rng(2);
    const Tensor a = Tensor::randn({4, 10}, rng);
    const Tensor b = Tensor::randn({4, 10}, rng);
    EXPECT_GT(distillation_loss(a, b, 3.0f), 0.0);
}

TEST(DistillLoss, TemperatureSoftensDivergence) {
    Rng rng(3);
    const Tensor a = Tensor::randn({8, 10}, rng, 0.0f, 4.0f);
    const Tensor b = Tensor::randn({8, 10}, rng, 0.0f, 4.0f);
    // Higher temperature flattens both distributions → smaller KL.
    EXPECT_LT(distillation_loss(a, b, 8.0f), distillation_loss(a, b, 1.0f));
}

TEST(DistillLoss, RejectsBadArguments) {
    const Tensor a({2, 4});
    const Tensor b({2, 5});
    EXPECT_THROW(distillation_loss(a, b, 3.0f), mime::check_error);
    const Tensor c({2, 4});
    EXPECT_THROW(distillation_loss(a, c, 0.0f), mime::check_error);
}

TEST(Distillation, OptionsValidated) {
    DistillationOptions bad;
    bad.temperature = -1.0f;
    EXPECT_THROW(bad.validate(), mime::check_error);
    bad = DistillationOptions{};
    bad.alpha = 1.5f;
    EXPECT_THROW(bad.validate(), mime::check_error);
}

TEST(Distillation, StudentLearnsFromTeacher) {
    data::TaskSuiteOptions suite_options;
    suite_options.train_size = 384;
    suite_options.test_size = 128;
    suite_options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(suite_options);
    const auto train = suite.family->train_split(suite.cifar10_like);
    const auto test = suite.family->test_split(suite.cifar10_like);

    // Teacher: train normally for a short budget.
    MimeNetwork teacher(net_config(0.125, 41));
    TrainOptions teacher_options;
    teacher_options.epochs = 4;
    teacher_options.batch_size = 32;
    teacher_options.learning_rate = 3e-3f;
    teacher_options.pool = &mime::global_pool();
    train_backbone(teacher, train, teacher_options);
    const double teacher_acc =
        evaluate(teacher, test, 64, teacher_options.pool).accuracy;

    // Student: half the teacher's width, distilled.
    MimeNetwork student(net_config(0.0625, 42));
    DistillationOptions options;
    options.train = teacher_options;
    options.train.epochs = 5;
    const auto history = train_distilled(student, teacher, train, options);
    EXPECT_LT(history.final_epoch().train_loss,
              history.epochs.front().train_loss);

    const double student_acc =
        evaluate(student, test, 64, teacher_options.pool).accuracy;
    // Student learns well above chance (10 classes) from the teacher.
    EXPECT_GT(student_acc, 0.22);
    EXPECT_GT(teacher_acc, 0.25);
}

TEST(Distillation, TeacherUnchanged) {
    data::TaskSuiteOptions suite_options;
    suite_options.train_size = 64;
    suite_options.test_size = 32;
    suite_options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(suite_options);
    const auto train = suite.family->train_split(suite.cifar10_like);

    MimeNetwork teacher(net_config(0.0625, 43));
    MimeNetwork student(net_config(0.0625, 44));
    const auto before = teacher.snapshot_backbone();

    DistillationOptions options;
    options.train.epochs = 1;
    options.train.batch_size = 32;
    train_distilled(student, teacher, train, options);

    const auto after = teacher.snapshot_backbone();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        for (std::int64_t j = 0; j < before[i].numel(); ++j) {
            ASSERT_EQ(before[i][j], after[i][j]) << "teacher tensor " << i;
        }
    }
}

}  // namespace
}  // namespace mime::core
