// Tests for the LRU cache model and the analytic residency helper.
#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/cache_model.h"

namespace mime::hw {
namespace {

TEST(LruCache, MissThenHit) {
    LruCache cache(100);
    EXPECT_FALSE(cache.touch(1, 40));
    EXPECT_TRUE(cache.touch(1, 40));
    EXPECT_EQ(cache.hit_count(), 1);
    EXPECT_EQ(cache.miss_count(), 1);
    EXPECT_EQ(cache.used_bytes(), 40);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
    LruCache cache(100);
    cache.touch(1, 40);
    cache.touch(2, 40);
    cache.touch(1, 40);  // 1 becomes MRU
    cache.touch(3, 40);  // evicts 2
    EXPECT_TRUE(cache.touch(1, 40));
    EXPECT_FALSE(cache.touch(2, 40));  // was evicted
}

TEST(LruCache, OversizeBlockNeverResident) {
    LruCache cache(100);
    EXPECT_FALSE(cache.touch(1, 200));
    EXPECT_FALSE(cache.touch(1, 200));
    EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(LruCache, CapacityNeverExceeded) {
    LruCache cache(100);
    for (std::uint64_t k = 0; k < 50; ++k) {
        cache.touch(k, 30);
        EXPECT_LE(cache.used_bytes(), 100);
    }
}

TEST(LruCache, ClearResets) {
    LruCache cache(100);
    cache.touch(1, 50);
    cache.clear();
    EXPECT_EQ(cache.used_bytes(), 0);
    EXPECT_FALSE(cache.touch(1, 50));
}

TEST(LruCache, MultipleVersionsFitSmallLayer) {
    // The pipelined-mode scenario: three task versions of a small layer's
    // weights all stay resident, so steady-state reloads vanish.
    LruCache cache(10 * 1024);
    const std::int64_t version_bytes = 3 * 1024;
    int misses = 0;
    for (int round = 0; round < 5; ++round) {
        for (std::uint64_t v = 0; v < 3; ++v) {
            if (!cache.touch(v, version_bytes)) {
                ++misses;
            }
        }
    }
    EXPECT_EQ(misses, 3);  // compulsory only
}

TEST(LruCache, VersionsThrashWhenTooLarge) {
    // Three versions that cannot coexist: every access in an interleaved
    // stream misses after the first round.
    LruCache cache(4 * 1024);
    const std::int64_t version_bytes = 3 * 1024;
    int misses = 0;
    for (int round = 0; round < 5; ++round) {
        for (std::uint64_t v = 0; v < 3; ++v) {
            if (!cache.touch(v, version_bytes)) {
                ++misses;
            }
        }
    }
    EXPECT_EQ(misses, 15);  // every touch misses
}

TEST(LruCache, RejectsBadSizes) {
    LruCache cache(10);
    EXPECT_THROW(cache.touch(1, 0), mime::check_error);
    EXPECT_THROW(LruCache(-1), mime::check_error);
}

TEST(ResidentFraction, FullWhenFits) {
    EXPECT_DOUBLE_EQ(resident_fraction(100, 200), 1.0);
    EXPECT_DOUBLE_EQ(resident_fraction(200, 200), 1.0);
    EXPECT_DOUBLE_EQ(resident_fraction(0, 100), 1.0);
}

TEST(ResidentFraction, ProportionalWhenSpilling) {
    EXPECT_DOUBLE_EQ(resident_fraction(400, 100), 0.25);
    EXPECT_DOUBLE_EQ(resident_fraction(1000, 0), 0.0);
}

TEST(ResidentFraction, MonotoneInCapacity) {
    double prev = 0.0;
    for (std::int64_t capacity = 0; capacity <= 500; capacity += 50) {
        const double f = resident_fraction(400, capacity);
        EXPECT_GE(f, prev);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(prev, 1.0);
}

}  // namespace
}  // namespace mime::hw
