// Tests for simulation reporting (tables/CSV) and design-space
// exploration.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/dse.h"
#include "hw/report.h"

namespace mime::hw {
namespace {

std::vector<arch::LayerSpec> layers() {
    arch::VggConfig config;
    config.input_size = 64;
    return arch::vgg16_spec(config);
}

TEST(Report, EnergyTableContainsAllLayersAndRuns) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto mime = sim.run(layers(), pipelined_options(Scheme::mime));
    const auto case1 =
        sim.run(layers(), pipelined_options(Scheme::baseline_dense));

    const std::string table = render_energy_table(
        {{"Case-1", &case1}, {"MIME", &mime}});
    EXPECT_NE(table.find("conv1 "), std::string::npos);
    EXPECT_NE(table.find("conv15"), std::string::npos);
    EXPECT_NE(table.find("Case-1"), std::string::npos);
    EXPECT_NE(table.find("MIME"), std::string::npos);
    EXPECT_NE(table.find("E_DRAM"), std::string::npos);
}

TEST(Report, ThroughputTableHasSpeedups) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto case1 =
        sim.run(layers(), pipelined_options(Scheme::baseline_dense));
    const auto mime = sim.run(layers(), pipelined_options(Scheme::mime));
    const std::string table = render_throughput_table(
        {{"Case-1", &case1}, {"MIME", &mime}});
    EXPECT_NE(table.find("MIME speedup"), std::string::npos);
    EXPECT_NE(table.find("x"), std::string::npos);
}

TEST(Report, CsvWellFormed) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto mime = sim.run(layers(), pipelined_options(Scheme::mime));
    std::stringstream out;
    write_csv({{"mime", &mime}}, out);
    const std::string csv = out.str();

    // Header + one line per layer.
    std::int64_t lines = 0;
    for (const char c : csv) {
        if (c == '\n') {
            ++lines;
        }
    }
    EXPECT_EQ(lines, 1 + 15);
    EXPECT_EQ(csv.rfind("run,layer,e_dram", 0), 0u);
    EXPECT_NE(csv.find("mime,conv8,"), std::string::npos);
}

TEST(Report, RejectsBadInput) {
    EXPECT_THROW(render_energy_table({}), mime::check_error);
    EXPECT_THROW(render_energy_table({{"x", nullptr}}), mime::check_error);
}

TEST(Dse, ExploresFullGrid) {
    DesignSweep sweep;
    sweep.pe_array_sizes = {256, 1024};
    sweep.cache_bytes = {128 * 1024, 156 * 1024};
    const auto results =
        explore(sweep, layers(), pipelined_options(Scheme::mime));
    EXPECT_EQ(results.size(), 4u);
    for (const auto& r : results) {
        EXPECT_GT(r.total_energy, 0.0);
        EXPECT_GT(r.total_cycles, 0.0);
        EXPECT_FALSE(r.label.empty());
    }
}

TEST(Dse, MorePesNeverSlower) {
    DesignSweep sweep;
    sweep.pe_array_sizes = {256, 512, 1024, 2048};
    sweep.cache_bytes = {156 * 1024};
    const auto results =
        explore(sweep, layers(), pipelined_options(Scheme::mime));
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_LE(results[i].total_cycles, results[i - 1].total_cycles + 1e-6)
            << results[i].label;
    }
}

TEST(Dse, ParetoFrontierIsNonDominated) {
    DesignSweep sweep;  // default grid, 16 points
    const auto results =
        explore(sweep, layers(), pipelined_options(Scheme::mime));
    const auto frontier = pareto_frontier(results);
    ASSERT_FALSE(frontier.empty());
    EXPECT_LE(frontier.size(), results.size());

    for (const auto& f : frontier) {
        for (const auto& other : results) {
            const bool dominates =
                other.total_energy <= f.total_energy &&
                other.total_cycles <= f.total_cycles &&
                (other.total_energy < f.total_energy ||
                 other.total_cycles < f.total_cycles);
            EXPECT_FALSE(dominates)
                << other.label << " dominates frontier point " << f.label;
        }
    }
    // Sorted by energy.
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].total_energy, frontier[i - 1].total_energy);
    }
}

TEST(Dse, BestEnergyDelayIsMinimal) {
    DesignSweep sweep;
    sweep.pe_array_sizes = {256, 1024};
    sweep.cache_bytes = {156 * 1024};
    const auto results =
        explore(sweep, layers(), pipelined_options(Scheme::mime));
    const auto& best = best_energy_delay(results);
    for (const auto& r : results) {
        EXPECT_GE(r.energy_delay(), best.energy_delay() - 1e-6);
    }
}

TEST(Dse, RejectsEmptyAxes) {
    DesignSweep sweep;
    sweep.pe_array_sizes = {};
    EXPECT_THROW(explore(sweep, layers(), pipelined_options(Scheme::mime)),
                 mime::check_error);
    EXPECT_THROW(pareto_frontier({}), mime::check_error);
    EXPECT_THROW(best_energy_delay({}), mime::check_error);
}

}  // namespace
}  // namespace mime::hw
