// Cross-validation between the exact LRU cache model and the analytic
// version-load formula the simulator uses for weight/threshold streams.
// For every VGG16 layer and several queue shapes, the analytic reload
// count must match an explicit LRU trace of per-version accesses.
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/cache_model.h"
#include "hw/schedule.h"
#include "hw/simulator.h"

namespace mime::hw {
namespace {

std::vector<arch::LayerSpec> layers() {
    arch::VggConfig config;
    config.input_size = 64;
    return arch::vgg16_spec(config);
}

/// Replays the queue against an LRU cache holding per-task weight
/// versions of `bytes_per_version` and counts DRAM loads.
std::int64_t lru_trace_loads(const std::vector<std::int64_t>& queue,
                             std::int64_t bytes_per_version,
                             std::int64_t cache_bytes) {
    LruCache cache(cache_bytes);
    std::int64_t loads = 0;
    for (const std::int64_t task : queue) {
        if (!cache.touch(static_cast<std::uint64_t>(task),
                         bytes_per_version)) {
            ++loads;
        }
    }
    return loads;
}

class QueueShapeValidation
    : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(QueueShapeValidation, AnalyticMatchesLruTrace) {
    const std::int64_t run_length = GetParam();
    const auto queue = make_run_queue(3, run_length, 24);
    const auto stats = analyze_queue(queue);
    const SystolicConfig config;

    SimulationOptions options;
    options.scheme = Scheme::baseline_sparse;
    options.batch = queue;
    options.profiles = {SparsityProfile::paper_baseline(PaperTask::cifar10),
                        SparsityProfile::paper_baseline(PaperTask::cifar100),
                        SparsityProfile::paper_baseline(PaperTask::fmnist)};
    options.preserve_arrival_order = true;
    const InferenceSimulator sim{config};
    const auto specs = layers();
    const auto result = sim.run(specs, options);

    for (std::size_t li = 0; li < specs.size(); ++li) {
        const auto& layer = specs[li];
        const std::int64_t version_bytes =
            layer.weight_count() * config.word_bytes();
        const std::int64_t lru_loads = lru_trace_loads(
            queue, version_bytes, config.weight_cache_bytes());

        const double analytic_loads =
            result.layers[li].counts.dram_weight_words /
            static_cast<double>(layer.weight_count());

        if (version_bytes * stats.distinct_tasks <=
            config.weight_cache_bytes()) {
            // All versions coexist: both models report compulsory loads.
            EXPECT_DOUBLE_EQ(analytic_loads,
                             static_cast<double>(stats.distinct_tasks))
                << layer.name;
            EXPECT_EQ(lru_loads, stats.distinct_tasks) << layer.name;
        } else if (version_bytes <= config.weight_cache_bytes()) {
            // Versions thrash: the analytic model charges one load per
            // same-task run; an LRU of >= 1 version does the same for
            // this round-robin-style trace.
            EXPECT_DOUBLE_EQ(
                analytic_loads,
                static_cast<double>(stats.task_switches + 1))
                << layer.name;
            EXPECT_EQ(lru_loads, stats.task_switches + 1) << layer.name;
        } else {
            // A single version exceeds the cache: every run re-streams.
            EXPECT_DOUBLE_EQ(
                analytic_loads,
                static_cast<double>(stats.task_switches + 1))
                << layer.name;
            EXPECT_EQ(lru_loads, static_cast<std::int64_t>(queue.size()))
                << layer.name << ": oversized versions are never resident";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RunLengths, QueueShapeValidation,
                         ::testing::Values(1, 2, 4, 8));

TEST(ModelValidation, AnalyticNeverUndercountsCompulsory) {
    // Property: whatever the queue, analytic weight loads are at least
    // the number of distinct versions and at most the queue length.
    const SystolicConfig config;
    const InferenceSimulator sim{config};
    for (const std::int64_t run : {1, 3, 5}) {
        const auto queue = make_run_queue(3, run, 15);
        SimulationOptions options;
        options.scheme = Scheme::baseline_dense;
        options.batch = queue;
        options.profiles = {
            SparsityProfile::paper_baseline(PaperTask::cifar10),
            SparsityProfile::paper_baseline(PaperTask::cifar100),
            SparsityProfile::paper_baseline(PaperTask::fmnist)};
        options.preserve_arrival_order = true;
        const auto result = sim.run(layers(), options);
        for (std::size_t li = 0; li < layers().size(); ++li) {
            const double loads =
                result.layers[li].counts.dram_weight_words /
                static_cast<double>(layers()[li].weight_count());
            EXPECT_GE(loads, 3.0) << layers()[li].name;
            EXPECT_LE(loads, static_cast<double>(queue.size()))
                << layers()[li].name;
        }
    }
}

}  // namespace
}  // namespace mime::hw
