// Tests for layerwise sparsity measurement (Tables II/III machinery).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/sparsity.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 11;
    return config;
}

data::Dataset small_dataset() {
    data::TaskSuiteOptions options;
    options.train_size = 32;
    options.test_size = 32;
    options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(options);
    return suite.family->test_split(suite.cifar10_like);
}

TEST(Sparsity, ReportCoversAllSites) {
    MimeNetwork net(tiny_config());
    const auto report = measure_sparsity(net, small_dataset(), 16);
    ASSERT_EQ(report.layer_names.size(), 15u);
    ASSERT_EQ(report.average_sparsity.size(), 15u);
    EXPECT_EQ(report.layer_names[0], "conv1");
    EXPECT_EQ(report.layer_names[14], "conv15");
}

TEST(Sparsity, ValuesAreFractions) {
    MimeNetwork net(tiny_config());
    const auto report = measure_sparsity(net, small_dataset(), 16);
    for (const double s : report.average_sparsity) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(Sparsity, ReluModeRoughlyHalfAtInit) {
    // He-initialized pre-activations are roughly symmetric around zero,
    // so ReLU masks about half the neurons.
    MimeNetwork net(tiny_config());
    net.set_mode(ActivationMode::relu);
    const auto report = measure_sparsity(net, small_dataset(), 16);
    EXPECT_GT(report.overall(), 0.25);
    EXPECT_LT(report.overall(), 0.8);
}

TEST(Sparsity, ThresholdModeSparserThanRelu) {
    MimeNetwork net(tiny_config());
    const auto dataset = small_dataset();

    net.set_mode(ActivationMode::relu);
    const auto relu = measure_sparsity(net, dataset, 16);

    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.1f);
    const auto mime = measure_sparsity(net, dataset, 16);

    for (std::size_t i = 0; i < relu.average_sparsity.size(); ++i) {
        EXPECT_GE(mime.average_sparsity[i] + 1e-9, relu.average_sparsity[i])
            << relu.layer_names[i];
    }
    EXPECT_GT(mime.overall(), relu.overall());
}

TEST(Sparsity, BatchSizeInvariant) {
    MimeNetwork net(tiny_config());
    const auto dataset = small_dataset();
    const auto a = measure_sparsity(net, dataset, 8);
    const auto b = measure_sparsity(net, dataset, 32);
    for (std::size_t i = 0; i < a.average_sparsity.size(); ++i) {
        EXPECT_NEAR(a.average_sparsity[i], b.average_sparsity[i], 1e-9);
    }
}

TEST(Sparsity, LayerLookup) {
    MimeNetwork net(tiny_config());
    const auto report = measure_sparsity(net, small_dataset(), 16);
    EXPECT_DOUBLE_EQ(report.layer("conv2"), report.average_sparsity[1]);
    EXPECT_THROW(report.layer("conv99"), mime::check_error);
}

TEST(Sparsity, EmptyReportRejected) {
    SparsityReport empty;
    EXPECT_THROW(empty.overall(), mime::check_error);
}

}  // namespace
}  // namespace mime::core
