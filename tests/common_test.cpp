// Tests for the common substrate: checks, RNG, thread pool, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace mime {
namespace {

TEST(Check, ThrowsWithContext) {
    try {
        MIME_REQUIRE(1 == 2, "math broke");
        FAIL() << "expected check_error";
    } catch (const check_error& e) {
        EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
}

TEST(Check, PassesSilently) {
    EXPECT_NO_THROW(MIME_REQUIRE(2 + 2 == 4, "fine"));
    EXPECT_NO_THROW(MIME_ENSURE(true, "fine"));
}

TEST(Rng, DeterministicFromSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIndexCoversAllValues) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniform_index(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
    Rng rng(1);
    EXPECT_THROW(rng.uniform_index(0), check_error);
}

TEST(Rng, NormalMomentsApproximate) {
    Rng rng(123);
    const int n = 20000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
    Rng rng(5);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += rng.normal(10.0, 2.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(99);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
    Rng rng(3);
    const auto p = rng.permutation(100);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ForkIsIndependent) {
    Rng parent(17);
    Rng child = parent.fork();
    // The fork advances the parent; both continue deterministically.
    Rng parent2(17);
    Rng child2 = parent2.fork();
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(child.next_u64(), child2.next_u64());
        EXPECT_EQ(parent.next_u64(), parent2.next_u64());
    }
}

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
    ThreadPool pool(4);
    std::vector<int> hit(10000, 0);
    parallel_for(
        pool, hit.size(),
        [&hit](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                hit[i] += 1;
            }
        },
        16);
    for (const int h : hit) {
        EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPool, ParallelForEmptyRange) {
    ThreadPool pool(2);
    bool ran = false;
    parallel_for(pool, 0, [&ran](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
    ThreadPool pool(4);
    std::vector<int> hit(10, 0);
    parallel_for(
        pool, hit.size(),
        [&hit](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                hit[i] += 1;
            }
        },
        1024);
    for (const int h : hit) {
        EXPECT_EQ(h, 1);
    }
}

TEST(Table, RendersAlignedRows) {
    Table t({"layer", "value"});
    t.add_row({"conv1", "1.0"});
    t.add_row({"conv10", "2.5"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| layer "), std::string::npos);
    EXPECT_NE(s.find("conv10"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), check_error);
}

TEST(Table, NumberFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::ratio(3.4812), "3.48x");
    EXPECT_EQ(Table::bytes(1536.0), "1.50 KiB");
    EXPECT_EQ(Table::bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

}  // namespace
}  // namespace mime
