// Tests for the blocked GEMM kernel against the reference triple loop.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"

namespace mime {
namespace {

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
    std::vector<float> m(static_cast<std::size_t>(rows * cols));
    for (auto& v : m) {
        v = static_cast<float>(rng.normal());
    }
    return m;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol = 2e-3f) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
    }
}

// (m, n, k, trans_a, trans_b)
using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
    const auto [m, n, k, ta, tb] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 73 + n * 31 + k + (ta ? 7 : 0) +
                                       (tb ? 13 : 0)));
    // Stored dimensions depend on the transpose flags.
    const std::int64_t lda = ta ? m : k;
    const std::int64_t ldb = tb ? k : n;
    const auto a = random_matrix(ta ? k : m, lda, rng);
    const auto b = random_matrix(tb ? n : k, ldb, rng);

    std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.5f);
    std::vector<float> c_fast = c_ref;

    gemm_reference(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f,
                   c_ref.data(), n);
    gemm(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f,
         c_fast.data(), n);
    expect_close(c_ref, c_fast);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmCase{1, 1, 1, false, false},
                      GemmCase{3, 5, 7, false, false},
                      GemmCase{3, 5, 7, true, false},
                      GemmCase{3, 5, 7, false, true},
                      GemmCase{3, 5, 7, true, true},
                      GemmCase{64, 64, 64, false, false},
                      GemmCase{65, 33, 17, false, false},
                      GemmCase{65, 33, 17, true, true},
                      GemmCase{128, 1, 256, false, false},
                      GemmCase{1, 128, 256, false, true},
                      GemmCase{200, 150, 300, false, false},
                      GemmCase{200, 150, 300, true, false}));

TEST(Gemm, ThreadedMatchesSingle) {
    Rng rng(9);
    const int m = 300;
    const int n = 120;
    const int k = 80;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0f);
    std::vector<float> c2 = c1;

    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c1.data(), n);
    ThreadPool pool(4);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c2.data(), n, &pool);
    expect_close(c1, c2, 1e-4f);
}

TEST(Gemm, BetaAccumulates) {
    const std::vector<float> a{1, 2, 3, 4};  // 2x2
    const std::vector<float> b{1, 0, 0, 1};  // identity
    std::vector<float> c{10, 10, 10, 10};
    gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f, c.data(),
         2);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
    EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, ZeroSizeIsNoop) {
    std::vector<float> c{1.0f};
    const std::vector<float> a{1.0f};
    const std::vector<float> b{1.0f};
    gemm(false, false, 0, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 0.0f, c.data(),
         1);
    EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(Gemm, RejectsNullOperands) {
    std::vector<float> c{0.0f};
    EXPECT_THROW(gemm(false, false, 1, 1, 1, 1.0f, nullptr, 1, nullptr, 1,
                      0.0f, c.data(), 1),
                 check_error);
}

TEST(Matmul, TensorInterface) {
    const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    const Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), Shape({2, 2}));
    EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
    EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Matmul, RejectsBadShapes) {
    const Tensor a({2, 3});
    const Tensor b({2, 3});
    EXPECT_THROW(matmul(a, b), check_error);
    const Tensor v({3});
    EXPECT_THROW(matmul(a, v), check_error);
}

}  // namespace
}  // namespace mime
