// Tests for the blocked GEMM kernel against the reference triple loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"

namespace mime {
namespace {

std::vector<float> random_matrix(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
    std::vector<float> m(static_cast<std::size_t>(rows * cols));
    for (auto& v : m) {
        v = static_cast<float>(rng.normal());
    }
    return m;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float tol = 2e-3f) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
    }
}

// (m, n, k, trans_a, trans_b)
using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
    const auto [m, n, k, ta, tb] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 73 + n * 31 + k + (ta ? 7 : 0) +
                                       (tb ? 13 : 0)));
    // Stored dimensions depend on the transpose flags.
    const std::int64_t lda = ta ? m : k;
    const std::int64_t ldb = tb ? k : n;
    const auto a = random_matrix(ta ? k : m, lda, rng);
    const auto b = random_matrix(tb ? n : k, ldb, rng);

    std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.5f);
    std::vector<float> c_fast = c_ref;

    gemm_reference(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f,
                   c_ref.data(), n);
    gemm(ta, tb, m, n, k, 1.3f, a.data(), lda, b.data(), ldb, 0.7f,
         c_fast.data(), n);
    expect_close(c_ref, c_fast);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmCase{1, 1, 1, false, false},
                      GemmCase{3, 5, 7, false, false},
                      GemmCase{3, 5, 7, true, false},
                      GemmCase{3, 5, 7, false, true},
                      GemmCase{3, 5, 7, true, true},
                      GemmCase{64, 64, 64, false, false},
                      GemmCase{65, 33, 17, false, false},
                      GemmCase{65, 33, 17, true, true},
                      GemmCase{128, 1, 256, false, false},
                      GemmCase{1, 128, 256, false, true},
                      GemmCase{200, 150, 300, false, false},
                      GemmCase{200, 150, 300, true, false}));

TEST(Gemm, ThreadedMatchesSingle) {
    Rng rng(9);
    const int m = 300;
    const int n = 120;
    const int k = 80;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<float> c1(static_cast<std::size_t>(m) * n, 0.0f);
    std::vector<float> c2 = c1;

    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c1.data(), n);
    ThreadPool pool(4);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c2.data(), n, &pool);
    expect_close(c1, c2, 1e-4f);
}

TEST(Gemm, BetaAccumulates) {
    const std::vector<float> a{1, 2, 3, 4};  // 2x2
    const std::vector<float> b{1, 0, 0, 1};  // identity
    std::vector<float> c{10, 10, 10, 10};
    gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f, c.data(),
         2);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
    EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, ZeroSizeIsNoop) {
    std::vector<float> c{1.0f};
    const std::vector<float> a{1.0f};
    const std::vector<float> b{1.0f};
    gemm(false, false, 0, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 0.0f, c.data(),
         1);
    EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(Gemm, RejectsNullOperands) {
    std::vector<float> c{0.0f};
    EXPECT_THROW(gemm(false, false, 1, 1, 1, 1.0f, nullptr, 1, nullptr, 1,
                      0.0f, c.data(), 1),
                 check_error);
}

TEST(GemmRows, MatchesCompactedReference) {
    Rng rng(41);
    const std::int64_t m = 37;
    const std::int64_t n = 53;
    const std::int64_t k = 300;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    // Every 3rd row live: strictly ascending, spans several K blocks.
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; r += 3) {
        rows.push_back(r);
    }
    const auto rc = static_cast<std::int64_t>(rows.size());

    // Reference: gather the live columns of A / rows of B into dense
    // compacted operands and run the oracle triple loop.
    std::vector<float> a_c(static_cast<std::size_t>(m * rc));
    std::vector<float> b_c(static_cast<std::size_t>(rc * n));
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < rc; ++p) {
            a_c[i * rc + p] = a[i * k + rows[p]];
        }
    }
    for (std::int64_t p = 0; p < rc; ++p) {
        for (std::int64_t j = 0; j < n; ++j) {
            b_c[p * n + j] = b[rows[p] * n + j];
        }
    }
    std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.25f);
    std::vector<float> c_rows = c_ref;
    gemm_reference(false, false, m, n, rc, 1.1f, a_c.data(), rc, b_c.data(),
                   n, 0.5f, c_ref.data(), n);
    gemm_rows(false, false, m, n, k, rows.data(), rc, 1.1f, a.data(), k,
              b.data(), n, 0.5f, c_rows.data(), n);
    expect_close(c_ref, c_rows);
}

TEST(GemmRows, BitMatchesDenseWhenSkippedRowsAreZero) {
    Rng rng(42);
    const std::int64_t m = 19;
    const std::int64_t n = 47;
    const std::int64_t k = 160;
    const auto a = random_matrix(m, k, rng);
    auto b = random_matrix(k, n, rng);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; ++r) {
        if (r % 5 == 2) {
            rows.push_back(r);
        } else {
            // Dead row: zero it so the dense contraction provably adds
            // nothing for it.
            std::fill(b.begin() + r * n, b.begin() + (r + 1) * n, 0.0f);
        }
    }
    std::vector<float> c_dense(static_cast<std::size_t>(m * n), -7.0f);
    std::vector<float> c_sparse = c_dense;
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c_dense.data(), n);
    gemm_rows(false, false, m, n, k, rows.data(),
              static_cast<std::int64_t>(rows.size()), 1.0f, a.data(), k,
              b.data(), n, 0.0f, c_sparse.data(), n);
    // Bit-exact, not just close: the contract the sparse planned
    // executor relies on.
    EXPECT_EQ(0, std::memcmp(c_dense.data(), c_sparse.data(),
                             c_dense.size() * sizeof(float)));
}

TEST(GemmRows, TransBBitMatchesDenseWhenSkippedRowsAreZero) {
    Rng rng(43);
    const std::int64_t m = 7;
    const std::int64_t n = 33;
    const std::int64_t k = 96;
    // op(B) = stored-B^T, so op(B)'s row r is stored column r. Zeroing
    // op(A)'s dead columns instead exercises the A-side zero skip the
    // masked-linear path relies on.
    auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(n, k, rng);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < k; ++r) {
        if (r % 4 != 1) {
            rows.push_back(r);
        } else {
            for (std::int64_t i = 0; i < m; ++i) {
                a[i * k + r] = 0.0f;
            }
        }
    }
    std::vector<float> c_dense(static_cast<std::size_t>(m * n), 3.0f);
    std::vector<float> c_sparse = c_dense;
    gemm(false, true, m, n, k, 1.0f, a.data(), k, b.data(), k, 0.0f,
         c_dense.data(), n);
    gemm_rows(false, true, m, n, k, rows.data(),
              static_cast<std::int64_t>(rows.size()), 1.0f, a.data(), k,
              b.data(), k, 0.0f, c_sparse.data(), n);
    EXPECT_EQ(0, std::memcmp(c_dense.data(), c_sparse.data(),
                             c_dense.size() * sizeof(float)));
}

TEST(GemmRows, FullRowListBitMatchesDense) {
    Rng rng(44);
    const std::int64_t m = 65;
    const std::int64_t n = 40;
    const std::int64_t k = 70;
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    std::vector<std::int64_t> rows(static_cast<std::size_t>(k));
    for (std::int64_t r = 0; r < k; ++r) {
        rows[static_cast<std::size_t>(r)] = r;
    }
    std::vector<float> c_dense(static_cast<std::size_t>(m * n), 0.0f);
    std::vector<float> c_sparse = c_dense;
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c_dense.data(), n);
    gemm_rows(false, false, m, n, k, rows.data(), k, 1.0f, a.data(), k,
              b.data(), n, 0.0f, c_sparse.data(), n);
    EXPECT_EQ(0, std::memcmp(c_dense.data(), c_sparse.data(),
                             c_dense.size() * sizeof(float)));
}

TEST(GemmRows, EmptyRowListAppliesBeta) {
    const std::vector<float> a{1.0f, 2.0f};
    const std::vector<float> b{3.0f, 4.0f};
    std::vector<float> c{5.0f, 6.0f};
    gemm_rows(false, false, 1, 2, 2, nullptr, 0, 1.0f, a.data(), 2, b.data(),
              2, 0.5f, c.data(), 2);
    EXPECT_FLOAT_EQ(c[0], 2.5f);
    EXPECT_FLOAT_EQ(c[1], 3.0f);
}

TEST(GemmRows, RejectsUnsortedRows) {
    const std::vector<float> a{1.0f, 2.0f};
    const std::vector<float> b{3.0f, 4.0f};
    std::vector<float> c{0.0f, 0.0f};
    const std::vector<std::int64_t> bad{1, 0};
    EXPECT_THROW(gemm_rows(false, false, 1, 2, 2, bad.data(), 2, 1.0f,
                           a.data(), 2, b.data(), 2, 0.0f, c.data(), 2),
                 check_error);
    const std::vector<std::int64_t> oob{0, 2};
    EXPECT_THROW(gemm_rows(false, false, 1, 2, 2, oob.data(), 2, 1.0f,
                           a.data(), 2, b.data(), 2, 0.0f, c.data(), 2),
                 check_error);
}

TEST(Matmul, TensorInterface) {
    const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    const Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), Shape({2, 2}));
    EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
    EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Matmul, RejectsBadShapes) {
    const Tensor a({2, 3});
    const Tensor b({2, 3});
    EXPECT_THROW(matmul(a, b), check_error);
    const Tensor v({3});
    EXPECT_THROW(matmul(a, v), check_error);
}

}  // namespace
}  // namespace mime
