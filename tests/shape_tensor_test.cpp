// Tests for Shape, the Tensor value type, the allocation probe, and the
// Workspace bump arena behind the planned forward executor.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace mime {
namespace {

TEST(Shape, BasicProperties) {
    const Shape s{3, 32, 32};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numel(), 3 * 32 * 32);
    EXPECT_EQ(s.dim(0), 3);
    EXPECT_EQ(s.dim(-1), 32);
    EXPECT_EQ(s.to_string(), "[3, 32, 32]");
}

TEST(Shape, ScalarShape) {
    const Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, RejectsNonPositiveExtent) {
    EXPECT_THROW(Shape({3, 0}), check_error);
    EXPECT_THROW(Shape({-1}), check_error);
}

TEST(Shape, EqualityAndAxisRange) {
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    const Shape s{2, 3};
    EXPECT_THROW(s.dim(2), check_error);
    EXPECT_THROW(s.dim(-3), check_error);
}

TEST(Tensor, ZeroInitialized) {
    const Tensor t{{2, 3}};
    EXPECT_EQ(t.numel(), 6);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_EQ(t[i], 0.0f);
    }
}

TEST(Tensor, FactoryFill) {
    const Tensor ones = Tensor::ones({4});
    EXPECT_EQ(sum(ones), 4.0f);
    const Tensor sevens = Tensor::full({2, 2}, 7.0f);
    EXPECT_EQ(sum(sevens), 28.0f);
}

TEST(Tensor, FromValuesValidatesSize) {
    EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), check_error);
}

TEST(Tensor, MultiIndexAccess) {
    Tensor t({2, 3});
    t.at({1, 2}) = 5.0f;
    EXPECT_EQ(t.at({1, 2}), 5.0f);
    EXPECT_EQ(t[1 * 3 + 2], 5.0f);
    EXPECT_THROW(t.at({2, 0}), check_error);
    EXPECT_THROW(t.at({0}), check_error);
}

TEST(Tensor, FlatAccessBounds) {
    Tensor t({4});
    EXPECT_THROW(t.at(4), check_error);
    EXPECT_THROW(t.at(-1), check_error);
    EXPECT_NO_THROW(t.at(3));
}

TEST(Tensor, CloneIsDeep) {
    Tensor a = Tensor::ones({3});
    Tensor b = a.clone();
    b[0] = 9.0f;
    EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, CopyAssignmentIsDeep) {
    Tensor a = Tensor::ones({3});
    Tensor b({3}, 2.0f);
    b = a;
    b[0] = 9.0f;
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_NE(a.data(), b.data());
}

TEST(Tensor, AliasSharesStorageBothWays) {
    Tensor a = Tensor::ones({2, 2});
    Tensor view = a.alias();
    EXPECT_TRUE(a.aliases(view));
    EXPECT_EQ(a.data(), view.data());
    EXPECT_EQ(view.shape(), a.shape());

    view[0] = 7.0f;
    EXPECT_EQ(a[0], 7.0f);
    a.fill(3.0f);
    EXPECT_EQ(view[3], 3.0f);
}

TEST(Tensor, CopyOfAliasIsDeepAgain) {
    // alias() is an explicit escape hatch; value semantics resume at
    // the first copy.
    Tensor a = Tensor::ones({4});
    Tensor view = a.alias();
    Tensor copy = view;
    copy[0] = 5.0f;
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_FALSE(copy.aliases(a));
}

TEST(Tensor, ReshapePreservesData) {
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    const Tensor b = a.reshaped({3, 2});
    EXPECT_EQ(b.shape(), Shape({3, 2}));
    for (std::int64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(b[i], a[i]);
    }
    EXPECT_THROW(a.reshaped({4, 2}), check_error);
}

TEST(Tensor, RandnStatistics) {
    Rng rng(42);
    const Tensor t = Tensor::randn({10000}, rng, 2.0f, 0.5f);
    EXPECT_NEAR(mean(t), 2.0f, 0.05f);
}

TEST(Tensor, RandUniformRange) {
    Rng rng(42);
    const Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
    EXPECT_GE(min_value(t), -1.0f);
    EXPECT_LT(max_value(t), 1.0f);
}

TEST(Tensor, ElementwiseOps) {
    const Tensor a({3}, std::vector<float>{1, 2, 3});
    const Tensor b({3}, std::vector<float>{4, 5, 6});
    const Tensor s = add(a, b);
    const Tensor d = sub(b, a);
    const Tensor p = mul(a, b);
    EXPECT_EQ(s[2], 9.0f);
    EXPECT_EQ(d[0], 3.0f);
    EXPECT_EQ(p[1], 10.0f);
    const Tensor scaled = mul(a, 2.0f);
    EXPECT_EQ(scaled[2], 6.0f);
}

TEST(Tensor, ElementwiseShapeMismatchThrows) {
    const Tensor a({3});
    const Tensor b({4});
    EXPECT_THROW(add(a, b), check_error);
    EXPECT_THROW(sub(a, b), check_error);
    EXPECT_THROW(mul(a, b), check_error);
}

TEST(Tensor, InplaceOps) {
    Tensor a({2}, std::vector<float>{1, 2});
    const Tensor b({2}, std::vector<float>{3, 4});
    add_inplace(a, b);
    EXPECT_EQ(a[0], 4.0f);
    sub_inplace(a, b);
    EXPECT_EQ(a[0], 1.0f);
    mul_inplace(a, b);
    EXPECT_EQ(a[1], 8.0f);
}

TEST(Tensor, AxpyAndScale) {
    Tensor a({3}, std::vector<float>{1, 1, 1});
    const Tensor x({3}, std::vector<float>{1, 2, 3});
    a.axpy(2.0f, x);
    EXPECT_EQ(a[2], 7.0f);
    a.scale(0.5f);
    EXPECT_EQ(a[2], 3.5f);
    Tensor wrong({2});
    EXPECT_THROW(a.axpy(1.0f, wrong), check_error);
}

TEST(Tensor, Reductions) {
    const Tensor t({4}, std::vector<float>{-1, 0, 3, 2});
    EXPECT_EQ(sum(t), 4.0f);
    EXPECT_EQ(mean(t), 1.0f);
    EXPECT_EQ(min_value(t), -1.0f);
    EXPECT_EQ(max_value(t), 3.0f);
    EXPECT_EQ(argmax(t), 2);
    EXPECT_DOUBLE_EQ(zero_fraction(t), 0.25);
    EXPECT_EQ(abs_sum(t), 6.0f);
    EXPECT_FLOAT_EQ(l2_norm(t), std::sqrt(14.0f));
}

TEST(Tensor, ReshapedAliasSharesStorageAtNewShape) {
    Tensor t({2, 6});
    t[3] = 7.0f;
    Tensor view = t.alias(Shape{3, 4});
    EXPECT_TRUE(view.aliases(t));
    EXPECT_EQ(view.shape(), Shape({3, 4}));
    EXPECT_EQ(view[3], 7.0f);
    view[5] = -1.0f;  // writes are visible through both handles
    EXPECT_EQ(t[5], -1.0f);
    EXPECT_THROW(t.alias(Shape{5, 5}), check_error);
}

TEST(Tensor, AllocationProbeCountsStorageCreation) {
    const std::int64_t count = Tensor::storage_allocation_count();
    const std::int64_t bytes = Tensor::storage_allocation_bytes();
    Tensor t({4, 4});
    EXPECT_EQ(Tensor::storage_allocation_count(), count + 1);
    EXPECT_EQ(Tensor::storage_allocation_bytes(),
              bytes + 16 * static_cast<std::int64_t>(sizeof(float)));
    Tensor copy = t;  // deep copy allocates
    EXPECT_EQ(Tensor::storage_allocation_count(), count + 2);
    // copy_from and fill reuse storage: no new blocks.
    copy.copy_from(t);
    copy.fill(0.0f);
    EXPECT_EQ(Tensor::storage_allocation_count(), count + 2);
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

TEST(Workspace, BumpAllocCheckpointRewindAndPeak) {
    Workspace ws(4096);
    EXPECT_GE(ws.capacity_bytes(), 4096u);
    EXPECT_EQ(ws.used_bytes(), 0u);
    EXPECT_EQ(ws.peak_bytes(), 0u);

    float* a = ws.alloc_floats(100);
    ASSERT_NE(a, nullptr);
    const Workspace::Checkpoint mark = ws.checkpoint();
    float* b = ws.alloc_floats(200);
    ASSERT_NE(b, nullptr);
    EXPECT_GT(b, a);  // bump, not reuse
    const std::size_t high = ws.used_bytes();
    EXPECT_EQ(ws.peak_bytes(), high);

    ws.rewind(mark);
    EXPECT_LT(ws.used_bytes(), high);
    EXPECT_EQ(ws.peak_bytes(), high);  // peak survives rewind
    // Rewinding frees the slot: the next alloc reuses b's memory.
    EXPECT_EQ(ws.alloc_floats(200), b);

    ws.reset();
    EXPECT_EQ(ws.used_bytes(), 0u);
}

TEST(Workspace, AllocationsAreCachelineAligned) {
    Workspace ws(4096);
    float* a = ws.alloc_floats(1);  // rounds up to one cacheline
    float* b = ws.alloc_floats(1);
    // Absolute alignment, not just 64-byte spacing: the block base
    // itself sits on a cacheline boundary.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) -
                  reinterpret_cast<std::uintptr_t>(a),
              64u);
    EXPECT_EQ(Workspace::aligned_floats(1), 16u);
    EXPECT_EQ(Workspace::aligned_floats(16), 16u);
    EXPECT_EQ(Workspace::aligned_floats(17), 32u);
    EXPECT_EQ(Workspace::aligned_floats(0), 0u);
}

TEST(Workspace, OverflowIsACheckedErrorNeverASilentAllocation) {
    Workspace ws(64 * sizeof(float));
    ws.alloc_floats(64);
    EXPECT_THROW(ws.alloc_floats(1), check_error);
    ws.reset();
    EXPECT_NO_THROW(ws.alloc_floats(64));
}

TEST(Workspace, ReserveWithLiveAllocationsThrows) {
    Workspace ws(256);
    ws.alloc_floats(8);
    // Growth would dangle the pointer just handed out.
    EXPECT_THROW(ws.reserve(1 << 20), check_error);
    ws.reset();
    EXPECT_NO_THROW(ws.reserve(1 << 20));
    EXPECT_GE(ws.capacity_bytes(), static_cast<std::size_t>(1 << 20));
    // Shrinking reserve is a no-op, not a reallocation.
    ws.reserve(16);
    EXPECT_GE(ws.capacity_bytes(), static_cast<std::size_t>(1 << 20));
}

TEST(Workspace, RewindAheadOfPointerThrows) {
    Workspace ws(1024);
    const Workspace::Checkpoint mark = ws.checkpoint();
    ws.alloc_floats(8);
    const Workspace::Checkpoint later = ws.checkpoint();
    ws.rewind(mark);
    EXPECT_THROW(ws.rewind(later), check_error);
}

TEST(Workspace, MixedWidthAllocBytesInterleavesWithFloats) {
    // The quantized executor carves int8 slabs and int32 accumulators
    // from the same arena as float im2col scratch. alloc_bytes must
    // charge the byte footprint (cacheline-rounded), not sizeof(float)
    // per element — an int8 slab costing 4x its size would blow the
    // plan's exact byte accounting.
    Workspace ws(4096);
    auto* q = ws.alloc<std::int8_t>(65);  // 65 bytes -> two cachelines
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u);
    EXPECT_EQ(ws.used_bytes(), 128u);
    EXPECT_EQ(Workspace::aligned_bytes(65), 128u);
    EXPECT_EQ(Workspace::aligned_bytes(64), 64u);
    EXPECT_EQ(Workspace::aligned_bytes(0), 0u);

    const Workspace::Checkpoint mark = ws.checkpoint();
    auto* acc = ws.alloc<std::int32_t>(16);  // 64 bytes -> one line
    float* f = ws.alloc_floats(16);          // interleaves freely
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(acc) % 64, 0u);
    EXPECT_EQ(ws.used_bytes(), 128u + 64u + 64u);

    // LIFO rewind frees both typed allocations together; the next
    // byte-granular alloc reuses the accumulator's memory.
    ws.rewind(mark);
    EXPECT_EQ(ws.used_bytes(), 128u);
    EXPECT_EQ(static_cast<void*>(ws.alloc<std::int32_t>(4)),
              static_cast<void*>(acc));
    (void)f;

    // Same overflow discipline as alloc_floats: a checked error, never
    // a silent heap allocation.
    ws.reset();
    ws.alloc<std::int8_t>(4096);
    EXPECT_THROW(ws.alloc<std::int8_t>(1), check_error);
}

TEST(Tensor, ArgmaxFirstOnTies) {
    const Tensor t({4}, std::vector<float>{5, 1, 5, 2});
    EXPECT_EQ(argmax(t), 0);
}

}  // namespace
}  // namespace mime
