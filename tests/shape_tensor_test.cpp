// Tests for Shape and the Tensor value type.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "tensor/tensor.h"

namespace mime {
namespace {

TEST(Shape, BasicProperties) {
    const Shape s{3, 32, 32};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numel(), 3 * 32 * 32);
    EXPECT_EQ(s.dim(0), 3);
    EXPECT_EQ(s.dim(-1), 32);
    EXPECT_EQ(s.to_string(), "[3, 32, 32]");
}

TEST(Shape, ScalarShape) {
    const Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, RejectsNonPositiveExtent) {
    EXPECT_THROW(Shape({3, 0}), check_error);
    EXPECT_THROW(Shape({-1}), check_error);
}

TEST(Shape, EqualityAndAxisRange) {
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    const Shape s{2, 3};
    EXPECT_THROW(s.dim(2), check_error);
    EXPECT_THROW(s.dim(-3), check_error);
}

TEST(Tensor, ZeroInitialized) {
    const Tensor t{{2, 3}};
    EXPECT_EQ(t.numel(), 6);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_EQ(t[i], 0.0f);
    }
}

TEST(Tensor, FactoryFill) {
    const Tensor ones = Tensor::ones({4});
    EXPECT_EQ(sum(ones), 4.0f);
    const Tensor sevens = Tensor::full({2, 2}, 7.0f);
    EXPECT_EQ(sum(sevens), 28.0f);
}

TEST(Tensor, FromValuesValidatesSize) {
    EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
    EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), check_error);
}

TEST(Tensor, MultiIndexAccess) {
    Tensor t({2, 3});
    t.at({1, 2}) = 5.0f;
    EXPECT_EQ(t.at({1, 2}), 5.0f);
    EXPECT_EQ(t[1 * 3 + 2], 5.0f);
    EXPECT_THROW(t.at({2, 0}), check_error);
    EXPECT_THROW(t.at({0}), check_error);
}

TEST(Tensor, FlatAccessBounds) {
    Tensor t({4});
    EXPECT_THROW(t.at(4), check_error);
    EXPECT_THROW(t.at(-1), check_error);
    EXPECT_NO_THROW(t.at(3));
}

TEST(Tensor, CloneIsDeep) {
    Tensor a = Tensor::ones({3});
    Tensor b = a.clone();
    b[0] = 9.0f;
    EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, CopyAssignmentIsDeep) {
    Tensor a = Tensor::ones({3});
    Tensor b({3}, 2.0f);
    b = a;
    b[0] = 9.0f;
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_NE(a.data(), b.data());
}

TEST(Tensor, AliasSharesStorageBothWays) {
    Tensor a = Tensor::ones({2, 2});
    Tensor view = a.alias();
    EXPECT_TRUE(a.aliases(view));
    EXPECT_EQ(a.data(), view.data());
    EXPECT_EQ(view.shape(), a.shape());

    view[0] = 7.0f;
    EXPECT_EQ(a[0], 7.0f);
    a.fill(3.0f);
    EXPECT_EQ(view[3], 3.0f);
}

TEST(Tensor, CopyOfAliasIsDeepAgain) {
    // alias() is an explicit escape hatch; value semantics resume at
    // the first copy.
    Tensor a = Tensor::ones({4});
    Tensor view = a.alias();
    Tensor copy = view;
    copy[0] = 5.0f;
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_FALSE(copy.aliases(a));
}

TEST(Tensor, ReshapePreservesData) {
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    const Tensor b = a.reshaped({3, 2});
    EXPECT_EQ(b.shape(), Shape({3, 2}));
    for (std::int64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(b[i], a[i]);
    }
    EXPECT_THROW(a.reshaped({4, 2}), check_error);
}

TEST(Tensor, RandnStatistics) {
    Rng rng(42);
    const Tensor t = Tensor::randn({10000}, rng, 2.0f, 0.5f);
    EXPECT_NEAR(mean(t), 2.0f, 0.05f);
}

TEST(Tensor, RandUniformRange) {
    Rng rng(42);
    const Tensor t = Tensor::rand_uniform({1000}, rng, -1.0f, 1.0f);
    EXPECT_GE(min_value(t), -1.0f);
    EXPECT_LT(max_value(t), 1.0f);
}

TEST(Tensor, ElementwiseOps) {
    const Tensor a({3}, std::vector<float>{1, 2, 3});
    const Tensor b({3}, std::vector<float>{4, 5, 6});
    const Tensor s = add(a, b);
    const Tensor d = sub(b, a);
    const Tensor p = mul(a, b);
    EXPECT_EQ(s[2], 9.0f);
    EXPECT_EQ(d[0], 3.0f);
    EXPECT_EQ(p[1], 10.0f);
    const Tensor scaled = mul(a, 2.0f);
    EXPECT_EQ(scaled[2], 6.0f);
}

TEST(Tensor, ElementwiseShapeMismatchThrows) {
    const Tensor a({3});
    const Tensor b({4});
    EXPECT_THROW(add(a, b), check_error);
    EXPECT_THROW(sub(a, b), check_error);
    EXPECT_THROW(mul(a, b), check_error);
}

TEST(Tensor, InplaceOps) {
    Tensor a({2}, std::vector<float>{1, 2});
    const Tensor b({2}, std::vector<float>{3, 4});
    add_inplace(a, b);
    EXPECT_EQ(a[0], 4.0f);
    sub_inplace(a, b);
    EXPECT_EQ(a[0], 1.0f);
    mul_inplace(a, b);
    EXPECT_EQ(a[1], 8.0f);
}

TEST(Tensor, AxpyAndScale) {
    Tensor a({3}, std::vector<float>{1, 1, 1});
    const Tensor x({3}, std::vector<float>{1, 2, 3});
    a.axpy(2.0f, x);
    EXPECT_EQ(a[2], 7.0f);
    a.scale(0.5f);
    EXPECT_EQ(a[2], 3.5f);
    Tensor wrong({2});
    EXPECT_THROW(a.axpy(1.0f, wrong), check_error);
}

TEST(Tensor, Reductions) {
    const Tensor t({4}, std::vector<float>{-1, 0, 3, 2});
    EXPECT_EQ(sum(t), 4.0f);
    EXPECT_EQ(mean(t), 1.0f);
    EXPECT_EQ(min_value(t), -1.0f);
    EXPECT_EQ(max_value(t), 3.0f);
    EXPECT_EQ(argmax(t), 2);
    EXPECT_DOUBLE_EQ(zero_fraction(t), 0.25);
    EXPECT_EQ(abs_sum(t), 6.0f);
    EXPECT_FLOAT_EQ(l2_norm(t), std::sqrt(14.0f));
}

TEST(Tensor, ArgmaxFirstOnTies) {
    const Tensor t({4}, std::vector<float>{5, 1, 5, 2});
    EXPECT_EQ(argmax(t), 0);
}

}  // namespace
}  // namespace mime
