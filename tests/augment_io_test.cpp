// Tests for data augmentation and dataset serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "data/augment.h"
#include "data/io.h"
#include "data/task_suite.h"
#include "tensor/tensor_ops.h"

namespace mime::data {
namespace {

Dataset small_dataset() {
    TaskSuiteOptions options;
    options.train_size = 16;
    options.test_size = 16;
    options.cifar100_classes = 10;
    const auto suite = make_task_suite(options);
    return suite.family->train_split(suite.cifar10_like);
}

TEST(Augment, FlipIsInvolution) {
    Rng rng(1);
    Tensor image = Tensor::randn({3, 8, 8}, rng);
    const Tensor original = image;
    flip_horizontal(image);
    bool changed = false;
    for (std::int64_t i = 0; i < image.numel(); ++i) {
        changed = changed || image[i] != original[i];
    }
    EXPECT_TRUE(changed);
    flip_horizontal(image);
    for (std::int64_t i = 0; i < image.numel(); ++i) {
        ASSERT_EQ(image[i], original[i]);
    }
}

TEST(Augment, FlipMirrorsColumns) {
    Tensor image({1, 1, 4});
    image[0] = 1;
    image[1] = 2;
    image[2] = 3;
    image[3] = 4;
    flip_horizontal(image);
    EXPECT_EQ(image[0], 4);
    EXPECT_EQ(image[3], 1);
}

TEST(Augment, ShiftMovesContentAndZeroFills) {
    Tensor image({1, 3, 3});
    image.at({0, 1, 1}) = 5.0f;
    shift_image(image, 1, 1);
    EXPECT_EQ(image.at({0, 2, 2}), 5.0f);
    EXPECT_EQ(image.at({0, 1, 1}), 0.0f);
    EXPECT_EQ(image.at({0, 0, 0}), 0.0f);
}

TEST(Augment, ZeroShiftIsNoop) {
    Rng rng(2);
    Tensor image = Tensor::randn({2, 4, 4}, rng);
    const Tensor original = image;
    shift_image(image, 0, 0);
    for (std::int64_t i = 0; i < image.numel(); ++i) {
        ASSERT_EQ(image[i], original[i]);
    }
}

TEST(Augment, BatchAugmentPreservesShapeAndLabels) {
    Dataset ds = small_dataset();
    Batch batch = ds.head(8);
    const auto labels = batch.labels;
    const Shape shape = batch.images.shape();

    Rng rng(3);
    AugmentOptions options;
    augment_batch(batch, options, rng);
    EXPECT_EQ(batch.images.shape(), shape);
    EXPECT_EQ(batch.labels, labels);
}

TEST(Augment, DisabledIsIdentity) {
    Dataset ds = small_dataset();
    Batch batch = ds.head(4);
    const Tensor original = batch.images;
    Rng rng(3);
    AugmentOptions options;
    options.enabled = false;
    augment_batch(batch, options, rng);
    for (std::int64_t i = 0; i < original.numel(); ++i) {
        ASSERT_EQ(batch.images[i], original[i]);
    }
}

TEST(Augment, ChangesImagesWhenEnabled) {
    Dataset ds = small_dataset();
    Batch batch = ds.head(8);
    const Tensor original = batch.images;
    Rng rng(3);
    AugmentOptions options;
    options.noise_stddev = 0.05;
    augment_batch(batch, options, rng);
    EXPECT_GT(l2_norm(sub(batch.images, original)), 0.0f);
}

TEST(Augment, ValidatesOptions) {
    AugmentOptions bad;
    bad.flip_probability = 1.5;
    EXPECT_THROW(bad.validate(), mime::check_error);
    bad = AugmentOptions{};
    bad.max_shift = -1;
    EXPECT_THROW(bad.validate(), mime::check_error);
}

TEST(DatasetIo, RoundTripBitExact) {
    const Dataset original = small_dataset();
    std::stringstream buffer;
    save_dataset(original, buffer);
    const Dataset loaded = load_dataset(buffer);

    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.images().shape(), original.images().shape());
    EXPECT_EQ(loaded.labels(), original.labels());
    for (std::int64_t i = 0; i < original.images().numel(); ++i) {
        ASSERT_EQ(loaded.images()[i], original.images()[i]);
    }
}

TEST(DatasetIo, FileRoundTrip) {
    const Dataset original = small_dataset();
    const std::string path = ::testing::TempDir() + "/mime_dataset.bin";
    save_dataset_file(original, path);
    const Dataset loaded = load_dataset_file(path);
    EXPECT_EQ(loaded.labels(), original.labels());
}

TEST(DatasetIo, RejectsGarbageAndTruncation) {
    std::stringstream garbage("not a dataset");
    EXPECT_THROW(load_dataset(garbage), mime::check_error);

    const Dataset original = small_dataset();
    std::stringstream buffer;
    save_dataset(original, buffer);
    const std::string bytes = buffer.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(load_dataset(cut), mime::check_error);
}

TEST(DatasetIo, MissingFileThrows) {
    EXPECT_THROW(load_dataset_file("/nonexistent/dataset.bin"),
                 mime::check_error);
}

}  // namespace
}  // namespace mime::data
