// Tests for src/obs/: metrics registry semantics (including concurrent
// hammering — run under TSan in CI), trace span recording and ordering,
// deterministic rate sampling, exporter formats, and the per-layer
// profiling hooks in ForwardPlan::run.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "arch/vgg.h"
#include "common/check.h"
#include "core/forward_plan.h"
#include "core/mime_network.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/workspace.h"

namespace mime::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeSetAndAdd) {
    Gauge g;
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.set(7.0);  // last write wins over accumulated state
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(MetricsTest, HistogramBucketsObservationsAtUpperBounds) {
    Histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);    // bucket 0
    h.observe(1.0);    // bucket 0 (le is inclusive)
    h.observe(5.0);    // bucket 1
    h.observe(100.0);  // bucket 2
    h.observe(1e6);    // +inf overflow
    EXPECT_EQ(h.bucket_count(0), 2);
    EXPECT_EQ(h.bucket_count(1), 1);
    EXPECT_EQ(h.bucket_count(2), 1);
    EXPECT_EQ(h.bucket_count(3), 1);  // +inf
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
    EXPECT_THROW(Histogram({}), check_error);
    EXPECT_THROW(Histogram({1.0, 1.0}), check_error);
    EXPECT_THROW(Histogram({2.0, 1.0}), check_error);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
    MetricsRegistry registry;
    Counter& a = registry.counter("serve.requests", "help");
    Counter& b = registry.counter("serve.requests");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, TypeMismatchIsACallerBug) {
    MetricsRegistry registry;
    registry.counter("serve.requests");
    EXPECT_THROW(registry.gauge("serve.requests"), check_error);
    EXPECT_THROW(registry.histogram("serve.requests", {1.0}), check_error);
}

TEST(MetricsRegistryTest, SnapshotPreservesRegistrationOrder) {
    MetricsRegistry registry;
    registry.counter("zzz.last_registered_first");
    registry.gauge("aaa.alphabetically_first");
    registry.histogram("mmm.hist", {1.0, 2.0});
    const std::vector<MetricSnapshot> snap = registry.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "zzz.last_registered_first");
    EXPECT_EQ(snap[1].name, "aaa.alphabetically_first");
    EXPECT_EQ(snap[2].name, "mmm.hist");
    EXPECT_EQ(snap[2].type, MetricType::histogram);
    EXPECT_EQ(snap[2].bucket_counts.size(), 3u);  // 2 bounds + inf
}

TEST(MetricsRegistryTest, HandlesStayValidAsRegistryGrows) {
    MetricsRegistry registry;
    Counter& first = registry.counter("first");
    // Enough registrations to force reallocation of any contiguous
    // backing store; the deque must keep `first` stable.
    for (int i = 0; i < 100; ++i) {
        registry.counter("extra." + std::to_string(i));
    }
    first.add(7);
    EXPECT_EQ(registry.snapshot()[0].value, 7.0);
}

// The hot-path contract: many threads hammering pre-registered handles
// while another thread snapshots. TSan (CI job) verifies no data races;
// the final counts verify no lost updates.
TEST(MetricsRegistryTest, ConcurrentHammerLosesNoUpdates) {
    MetricsRegistry registry;
    Counter& counter = registry.counter("hammer.counter");
    Histogram& hist = registry.histogram("hammer.hist", {10.0, 100.0});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::atomic<bool> stop{false};
    std::thread snapshotter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            (void)registry.snapshot();
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                hist.observe(static_cast<double>((t + i) % 200));
            }
        });
    }
    for (std::thread& w : writers) {
        w.join();
    }
    stop.store(true, std::memory_order_relaxed);
    snapshotter.join();
    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    EXPECT_EQ(hist.count(), kThreads * kPerThread);
    std::int64_t bucket_total = 0;
    for (std::size_t b = 0; b <= 2; ++b) {
        bucket_total += hist.bucket_count(b);
    }
    EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportTest, PrometheusNameSanitizesCharset) {
    EXPECT_EQ(prometheus_name("serve.latency_us"), "serve_latency_us");
    EXPECT_EQ(prometheus_name("a-b c:d"), "a_b_c:d");
    EXPECT_EQ(prometheus_name("9lives"), "_9lives");
}

TEST(ExportTest, PrometheusTextFormat) {
    MetricsRegistry registry;
    registry.counter("serve.requests", "requests served").add(3);
    registry.gauge("serve.load").set(1.5);
    Histogram& h = registry.histogram("serve.latency_us", {10.0, 100.0});
    h.observe(5.0);
    h.observe(50.0);
    h.observe(500.0);
    const std::string text = metrics_to_prometheus(registry.snapshot());
    EXPECT_NE(text.find("# HELP serve_requests requests served"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
    EXPECT_NE(text.find("serve_requests 3\n"), std::string::npos);
    EXPECT_NE(text.find("serve_load 1.5\n"), std::string::npos);
    // Bucket counts are cumulative, with a final +Inf series.
    EXPECT_NE(text.find("serve_latency_us_bucket{le=\"10\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_latency_us_bucket{le=\"100\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_latency_us_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_latency_us_sum 555\n"), std::string::npos);
    EXPECT_NE(text.find("serve_latency_us_count 3\n"), std::string::npos);
}

TEST(ExportTest, JsonSnapshotRoundTripsValues) {
    MetricsRegistry registry;
    registry.counter("requests").add(7);
    Histogram& h = registry.histogram("batch", {2.0});
    h.observe(1.0);
    h.observe(3.0);
    const std::string json = metrics_to_json(registry.snapshot()).to_string();
    EXPECT_NE(json.find("\"requests\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace / TraceSampler
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsOrderedSpans) {
    Trace trace;
    const auto t0 = TraceClock::now();
    using std::chrono::microseconds;
    trace.record(SpanKind::admission, t0, t0 + microseconds(5));
    trace.record(SpanKind::queue_wait, t0 + microseconds(5),
                 t0 + microseconds(25));
    trace.record(SpanKind::forward, t0 + microseconds(25),
                 t0 + microseconds(125));
    trace.record(SpanKind::delivery, t0 + microseconds(125),
                 t0 + microseconds(130));
    EXPECT_TRUE(trace.ordered());
    ASSERT_NE(trace.find(SpanKind::queue_wait), nullptr);
    EXPECT_NEAR(trace.find(SpanKind::queue_wait)->duration_us(), 20.0, 1e-9);
    EXPECT_EQ(trace.find(SpanKind::threshold_swap), nullptr);
    EXPECT_NEAR(trace.total_us(), 130.0, 1e-9);
    const std::string dump = trace.to_string();
    EXPECT_NE(dump.find("admission"), std::string::npos);
    EXPECT_NE(dump.find("forward"), std::string::npos);
}

TEST(TraceTest, OutOfOrderSpansDetected) {
    Trace trace;
    const auto t0 = TraceClock::now();
    trace.record(SpanKind::forward, t0, t0 + std::chrono::microseconds(1));
    trace.record(SpanKind::admission, t0, t0);  // kinds must increase
    EXPECT_FALSE(trace.ordered());
}

TEST(TraceSamplerTest, RateZeroNeverSamplesRateOneAlways) {
    TraceSampler never(0.0);
    TraceSampler always(1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(never.sample());
        EXPECT_TRUE(always.sample());
    }
}

TEST(TraceSamplerTest, FractionalRateIsDeterministicAndProportional) {
    constexpr int kN = 1000;
    TraceSampler a(0.25);
    TraceSampler b(0.25);
    int sampled = 0;
    for (int i = 0; i < kN; ++i) {
        const bool sa = a.sample();
        // Two samplers at the same rate make identical decisions — the
        // sampling is a function of the request ordinal, not an RNG.
        EXPECT_EQ(sa, b.sample());
        sampled += sa ? 1 : 0;
    }
    EXPECT_EQ(sampled, kN / 4);
}

// ---------------------------------------------------------------------------
// ForwardPlan per-layer profiling
// ---------------------------------------------------------------------------

core::MimeNetworkConfig tiny_network_config() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.batchnorm = true;
    config.seed = 7;
    return config;
}

TEST(PlanProfilingTest, ProfilesAccumulateOnlyWhenEnabled) {
    core::MimeNetwork network(tiny_network_config());
    network.set_training(false);
    network.set_eval_mode(true);
    Workspace workspace;
    core::ForwardPlan& plan = network.plan_for(2);
    Tensor input(plan.input_shape());

    // Names and workspace reservations exist from build time.
    ASSERT_FALSE(plan.profiles().empty());
    EXPECT_EQ(plan.profiles().front().name, "conv1");
    EXPECT_GT(plan.profiles().front().workspace_bytes, 0u);

    // Disabled (default): running accumulates nothing.
    plan.run(input, workspace);
    EXPECT_EQ(plan.profiles().front().runs, 0);

    network.set_plan_profiling(true);
    plan.run(input, workspace);
    plan.run(input, workspace);
    const std::vector<obs::LayerProfile>& profiles = plan.profiles();
    for (const obs::LayerProfile& profile : profiles) {
        EXPECT_EQ(profile.runs, 2) << profile.name;
        EXPECT_GE(profile.total_us, 0.0) << profile.name;
    }
    // Conv/linear steps carry dense-MAC accounting; the final classifier
    // is an fc step.
    EXPECT_GT(profiles.front().dense_macs, 0);
    EXPECT_EQ(profiles.back().name.rfind("fc", 0), 0u);
    EXPECT_GT(profiles.back().dense_macs, 0);

    // Network-level merge across plans sums runs per step index.
    const std::vector<obs::LayerProfile> merged =
        network.planned_layer_profiles();
    ASSERT_EQ(merged.size(), profiles.size());
    EXPECT_EQ(merged.front().runs, 2);
}

TEST(PlanProfilingTest, MergeAcrossBatchSizesSumsRuns) {
    core::MimeNetwork network(tiny_network_config());
    network.set_training(false);
    network.set_eval_mode(true);
    network.set_plan_profiling(true);
    Workspace workspace;
    core::ForwardPlan& plan1 = network.plan_for(1);
    core::ForwardPlan& plan4 = network.plan_for(4);
    Tensor in1(plan1.input_shape());
    Tensor in4(plan4.input_shape());
    plan1.run(in1, workspace);
    plan4.run(in4, workspace);
    plan4.run(in4, workspace);
    const std::vector<obs::LayerProfile> merged =
        network.planned_layer_profiles();
    ASSERT_FALSE(merged.empty());
    EXPECT_EQ(merged.front().runs, 3);
    // Workspace bytes take the max over plans (plan4's im2col is
    // larger), not the sum.
    EXPECT_EQ(merged.front().workspace_bytes,
              plan4.profiles().front().workspace_bytes);
}

}  // namespace
}  // namespace mime::obs
