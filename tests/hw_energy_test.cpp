// Tests for the energy model, the config defaults (Table IV), and the
// sparsity profiles (Tables II/III as data).
#include <gtest/gtest.h>

#include "common/check.h"
#include "hw/energy_model.h"
#include "hw/sparsity_profile.h"
#include "hw/systolic_config.h"

namespace mime::hw {
namespace {

TEST(SystolicConfig, TableIvDefaults) {
    const SystolicConfig config;
    config.validate();
    EXPECT_EQ(config.pe_array_size, 1024);
    EXPECT_EQ(config.total_cache_bytes, 156 * 1024);
    EXPECT_EQ(config.spad_bytes, 512);
    EXPECT_EQ(config.precision_bits, 16);
    EXPECT_EQ(config.word_bytes(), 2);
    EXPECT_DOUBLE_EQ(config.e_dram, 200.0);
    EXPECT_DOUBLE_EQ(config.e_cache, 6.0);
    EXPECT_DOUBLE_EQ(config.e_reg, 2.0);
    EXPECT_DOUBLE_EQ(config.e_mac, 1.0);
}

TEST(SystolicConfig, CachePartitionsSumWithinBudget) {
    const SystolicConfig config;
    EXPECT_LE(config.weight_cache_bytes() + config.activation_cache_bytes() +
                  config.threshold_cache_bytes(),
              config.total_cache_bytes);
    EXPECT_GT(config.weight_cache_bytes(), 0);
    EXPECT_GT(config.activation_cache_bytes(), 0);
    EXPECT_GT(config.threshold_cache_bytes(), 0);
}

TEST(SystolicConfig, ValidationCatchesBadValues) {
    SystolicConfig config;
    config.pe_array_size = 0;
    EXPECT_THROW(config.validate(), mime::check_error);
    config = SystolicConfig{};
    config.weight_cache_fraction = 0.9;
    config.activation_cache_fraction = 0.9;
    EXPECT_THROW(config.validate(), mime::check_error);
    config = SystolicConfig{};
    config.precision_bits = 12;
    EXPECT_THROW(config.validate(), mime::check_error);
}

TEST(EnergyModel, AppliesTableIvWeights) {
    AccessCounts counts;
    counts.dram_weight_words = 10;
    counts.cache_weight_words = 100;
    counts.reg_words = 1000;
    counts.macs = 10000;
    const SystolicConfig config;
    const EnergyBreakdown e = energy_from_counts(counts, config);
    EXPECT_DOUBLE_EQ(e.e_dram, 200.0 * 10);
    EXPECT_DOUBLE_EQ(e.e_cache, 6.0 * 100);
    EXPECT_DOUBLE_EQ(e.e_reg, 2.0 * 1000);
    EXPECT_DOUBLE_EQ(e.e_mac, 10000.0);
    EXPECT_DOUBLE_EQ(e.total(), 2000 + 600 + 2000 + 10000);
}

TEST(EnergyModel, CountsAccumulate) {
    AccessCounts a;
    a.dram_weight_words = 1;
    a.macs = 2;
    AccessCounts b;
    b.dram_threshold_words = 3;
    b.macs = 5;
    a += b;
    EXPECT_DOUBLE_EQ(a.dram_total(), 4.0);
    EXPECT_DOUBLE_EQ(a.macs, 7.0);
}

TEST(EnergyModel, BreakdownAccumulates) {
    EnergyBreakdown a;
    a.e_dram = 1;
    EnergyBreakdown b;
    b.e_mac = 2;
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 3.0);
}

TEST(EnergyModel, CmpChargedWhenConfigured) {
    AccessCounts counts;
    counts.cmps = 100;
    SystolicConfig config;
    EXPECT_DOUBLE_EQ(energy_from_counts(counts, config).e_mac, 0.0);
    config.e_cmp = 0.5;
    EXPECT_DOUBLE_EQ(energy_from_counts(counts, config).e_mac, 50.0);
}

TEST(SparsityProfile, PaperTablesMatchPublishedValues) {
    const auto mime_c10 = SparsityProfile::paper_mime(PaperTask::cifar10);
    // conv2 is layer index 1; Table II reports 0.6493 for CIFAR10.
    EXPECT_DOUBLE_EQ(mime_c10.output_sparsity(1), 0.6493);
    // conv15 is layer index 14: 0.657.
    EXPECT_DOUBLE_EQ(mime_c10.output_sparsity(14), 0.657);

    const auto relu_fm = SparsityProfile::paper_baseline(PaperTask::fmnist);
    // conv10 is layer index 9; Table III reports 0.5503 for F-MNIST.
    EXPECT_DOUBLE_EQ(relu_fm.output_sparsity(9), 0.5503);
}

TEST(SparsityProfile, MimeSparserThanBaselineEverywhere) {
    // The paper's central observation: threshold masking prunes more than
    // ReLU at every reported layer, for every task.
    for (const PaperTask task :
         {PaperTask::cifar10, PaperTask::cifar100, PaperTask::fmnist}) {
        const auto mime = SparsityProfile::paper_mime(task);
        const auto relu = SparsityProfile::paper_baseline(task);
        for (std::int64_t l = 0; l < mime.layer_count(); ++l) {
            EXPECT_GT(mime.output_sparsity(l), relu.output_sparsity(l))
                << "task " << static_cast<int>(task) << " layer " << l;
        }
    }
}

TEST(SparsityProfile, InputSparsityShiftsByOneLayer) {
    const auto p = SparsityProfile::paper_mime(PaperTask::cifar10);
    EXPECT_DOUBLE_EQ(p.input_sparsity(0), 0.0);  // raw images are dense
    for (std::int64_t l = 1; l < p.layer_count(); ++l) {
        EXPECT_DOUBLE_EQ(p.input_sparsity(l), p.output_sparsity(l - 1));
    }
}

TEST(SparsityProfile, UnreportedLayersFilledFromNeighbours) {
    const auto p = SparsityProfile::paper_mime(PaperTask::cifar10);
    // conv1 (index 0) takes conv2's value; conv6 (index 5) is midway
    // between conv5 (idx 4) and conv7 (idx 6) — ties resolve to conv5.
    EXPECT_DOUBLE_EQ(p.output_sparsity(0), p.output_sparsity(1));
    EXPECT_DOUBLE_EQ(p.output_sparsity(5), p.output_sparsity(4));
    // conv11 (index 10) neighbours conv10 (9) and conv12 (11) equally;
    // earlier wins.
    EXPECT_DOUBLE_EQ(p.output_sparsity(10), p.output_sparsity(9));
}

TEST(SparsityProfile, UniformAndAverage) {
    const auto p = SparsityProfile::uniform("u", 0.5, 10);
    EXPECT_EQ(p.layer_count(), 10);
    EXPECT_DOUBLE_EQ(p.average(), 0.5);
    EXPECT_THROW(SparsityProfile::uniform("bad", 1.5), mime::check_error);
    EXPECT_THROW(SparsityProfile("bad", {}), mime::check_error);
}

TEST(SparsityProfile, PaperAveragesInExpectedBands) {
    // Table II averages ~0.6-0.66; Table III averages ~0.5-0.55.
    for (const PaperTask task :
         {PaperTask::cifar10, PaperTask::cifar100, PaperTask::fmnist}) {
        EXPECT_GT(SparsityProfile::paper_mime(task).average(), 0.58);
        EXPECT_LT(SparsityProfile::paper_mime(task).average(), 0.67);
        EXPECT_GT(SparsityProfile::paper_baseline(task).average(), 0.45);
        EXPECT_LT(SparsityProfile::paper_baseline(task).average(), 0.56);
    }
}

}  // namespace
}  // namespace mime::hw
