// Tests for classification metrics and learning-rate schedules.
#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/lr_schedule.h"
#include "nn/metrics.h"

namespace mime::nn {
namespace {

TEST(Confusion, PerfectPredictions) {
    ConfusionMatrix m(3);
    m.add(0, 0);
    m.add(1, 1);
    m.add(2, 2);
    EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(m.macro_f1(), 1.0);
    for (const double r : m.recall()) {
        EXPECT_DOUBLE_EQ(r, 1.0);
    }
}

TEST(Confusion, KnownMistakePattern) {
    ConfusionMatrix m(2);
    // Class 0: 3 right, 1 wrong. Class 1: 2 right, 2 wrong.
    for (int i = 0; i < 3; ++i) m.add(0, 0);
    m.add(0, 1);
    for (int i = 0; i < 2; ++i) m.add(1, 1);
    for (int i = 0; i < 2; ++i) m.add(1, 0);

    EXPECT_EQ(m.total(), 8);
    EXPECT_DOUBLE_EQ(m.accuracy(), 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(m.recall()[0], 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.recall()[1], 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.precision()[0], 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(m.precision()[1], 2.0 / 3.0);
    EXPECT_EQ(m.count(1, 0), 2);
}

TEST(Confusion, AddBatchUsesArgmaxWithinClasses) {
    ConfusionMatrix m(3);
    // Logits wider than the matrix (shared multi-task head): argmax is
    // restricted to the matrix's class range.
    Tensor logits({2, 5});
    logits.at({0, 1}) = 5.0f;   // predicts 1
    logits.at({0, 4}) = 99.0f;  // out-of-task logit must be ignored
    logits.at({1, 0}) = 3.0f;   // predicts 0
    m.add_batch(logits, {1, 2});
    EXPECT_EQ(m.count(1, 1), 1);
    EXPECT_EQ(m.count(2, 0), 1);
}

TEST(Confusion, RejectsBadLabels) {
    ConfusionMatrix m(2);
    EXPECT_THROW(m.add(2, 0), mime::check_error);
    EXPECT_THROW(m.add(0, -1), mime::check_error);
    EXPECT_THROW(m.accuracy(), mime::check_error);  // empty
    EXPECT_THROW(ConfusionMatrix(0), mime::check_error);
}

TEST(Confusion, ToStringContainsCounts) {
    ConfusionMatrix m(2);
    m.add(0, 1);
    const std::string s = m.to_string();
    EXPECT_NE(s.find("true\\pred"), std::string::npos);
    EXPECT_NE(s.find('1'), std::string::npos);
}

TEST(TopK, KnownRanking) {
    Tensor logits({2, 4});
    // Sample 0 ranking: 3 > 2 > 1 > 0; sample 1 ranking: 0 > 1 > 2 > 3.
    for (std::int64_t c = 0; c < 4; ++c) {
        logits.at({0, c}) = static_cast<float>(c);
        logits.at({1, c}) = static_cast<float>(-c);
    }
    EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {3, 0}, 1), 1.0);
    EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {2, 3}, 1), 0.0);
    EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {2, 3}, 2), 0.5);
    EXPECT_DOUBLE_EQ(top_k_accuracy(logits, {0, 3}, 4), 1.0);
}

TEST(TopK, ValidatesArguments) {
    Tensor logits({1, 3});
    EXPECT_THROW(top_k_accuracy(logits, {0}, 0), mime::check_error);
    EXPECT_THROW(top_k_accuracy(logits, {0}, 4), mime::check_error);
    EXPECT_THROW(top_k_accuracy(logits, {0, 1}, 1), mime::check_error);
}

TEST(LrSchedule, ConstantHoldsBase) {
    const auto schedule = constant_lr();
    EXPECT_FLOAT_EQ(schedule(0, 0.1f), 0.1f);
    EXPECT_FLOAT_EQ(schedule(100, 0.1f), 0.1f);
}

TEST(LrSchedule, StepDecayHalves) {
    const auto schedule = step_decay(2, 0.5f);
    EXPECT_FLOAT_EQ(schedule(0, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(schedule(1, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(schedule(2, 1.0f), 0.5f);
    EXPECT_FLOAT_EQ(schedule(4, 1.0f), 0.25f);
}

TEST(LrSchedule, CosineEndsAtMin) {
    const auto schedule = cosine_annealing(10, 0.01f);
    EXPECT_FLOAT_EQ(schedule(0, 1.0f), 1.0f);
    EXPECT_NEAR(schedule(10, 1.0f), 0.01f, 1e-6f);
    EXPECT_NEAR(schedule(5, 1.0f), (1.0f + 0.01f) / 2.0f, 1e-3f);
    // Monotone decreasing.
    float prev = 2.0f;
    for (int e = 0; e <= 10; ++e) {
        const float lr = schedule(e, 1.0f);
        EXPECT_LT(lr, prev);
        prev = lr;
    }
}

TEST(LrSchedule, WarmupRampsLinearly) {
    const auto schedule = with_warmup(4, constant_lr());
    EXPECT_FLOAT_EQ(schedule(0, 1.0f), 0.25f);
    EXPECT_FLOAT_EQ(schedule(1, 1.0f), 0.5f);
    EXPECT_FLOAT_EQ(schedule(3, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(schedule(4, 1.0f), 1.0f);
}

TEST(LrSchedule, ValidatesArguments) {
    EXPECT_THROW(step_decay(0, 0.5f), mime::check_error);
    EXPECT_THROW(step_decay(2, 1.5f), mime::check_error);
    EXPECT_THROW(cosine_annealing(0), mime::check_error);
    EXPECT_THROW(with_warmup(-1, constant_lr()), mime::check_error);
    EXPECT_THROW(with_warmup(1, nullptr), mime::check_error);
}

}  // namespace
}  // namespace mime::nn
