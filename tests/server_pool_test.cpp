// Tests for the sharded server pool: routing policies, admission
// control (shed and block), shared-backbone replication, pool-wide
// stats aggregation, and a bit-match proof that pooled serving equals
// direct single-network forwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>

#include "common/check.h"
#include "core/multitask.h"
#include "serve/admission.h"
#include "serve/routing.h"
#include "serve/server_pool.h"
#include "tensor/tensor_ops.h"

namespace mime::serve {
namespace {

core::MimeNetworkConfig tiny_config(std::uint64_t seed = 3) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = seed;
    return config;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(Router, RoundRobinCyclesFairly) {
    Router router(RoutingPolicy::round_robin, 3);
    const std::vector<double> loads(3, 0.0);
    std::vector<std::int64_t> picks(3, 0);
    for (int i = 0; i < 9; ++i) {
        const std::size_t replica = router.route("any", loads);
        EXPECT_EQ(replica, static_cast<std::size_t>(i % 3));
        ++picks[replica];
    }
    EXPECT_EQ(picks, (std::vector<std::int64_t>{3, 3, 3}));
}

TEST(Router, TaskAffinityIsSticky) {
    Router router(RoutingPolicy::task_affinity, 4);
    std::vector<double> loads(4, 0.0);
    for (int t = 0; t < 16; ++t) {
        const std::string task = "task" + std::to_string(t);
        const std::size_t first = router.route(task, loads);
        // Stickiness must survive arbitrary load changes: affinity is
        // task-determined, never load-determined.
        loads[first] += 100;
        for (int repeat = 0; repeat < 5; ++repeat) {
            EXPECT_EQ(router.route(task, loads), first) << task;
        }
    }
}

TEST(Router, TaskAffinitySpreadsTasksAcrossReplicas) {
    Router router(RoutingPolicy::task_affinity, 4);
    const std::vector<double> loads(4, 0.0);
    std::set<std::size_t> used;
    for (int t = 0; t < 64; ++t) {
        used.insert(router.route("task" + std::to_string(t), loads));
    }
    // 64 tasks over 4 replicas: a hash that collapsed to one replica
    // would defeat sharding entirely.
    EXPECT_GE(used.size(), 3u);
}

TEST(Router, LeastLoadedPicksMinimum) {
    Router router(RoutingPolicy::least_loaded, 3);
    EXPECT_EQ(router.route("t", {3, 0, 2}), 1u);
    EXPECT_EQ(router.route("t", {5, 5, 1}), 2u);
}

TEST(Router, LeastLoadedBreaksTiesRoundRobin) {
    // An all-idle (or equal-predicted-cost) pool must spread exact ties
    // instead of hot-spotting replica 0 — the old lowest-index rule
    // pinned every post-drain burst onto one replica.
    Router router(RoutingPolicy::least_loaded, 3);
    std::vector<std::int64_t> picks(3, 0);
    for (int i = 0; i < 9; ++i) {
        ++picks[router.route("t", {4, 4, 4})];
    }
    EXPECT_EQ(picks, (std::vector<std::int64_t>{3, 3, 3}));

    // Ties among a strict subset rotate within that subset, and a
    // subsequent strict minimum still wins outright.
    std::vector<std::int64_t> subset_picks(3, 0);
    for (int i = 0; i < 8; ++i) {
        const std::size_t replica = router.route("t", {0, 7, 0});
        EXPECT_NE(replica, 1u);
        ++subset_picks[replica];
    }
    EXPECT_EQ(subset_picks[0], 4);
    EXPECT_EQ(subset_picks[2], 4);
    EXPECT_EQ(router.route("t", {9, 1, 9}), 1u);
}

TEST(Router, LeastLoadedBalancesSkewedService) {
    // Simulate replicas that drain at different speeds: least_loaded
    // must steer work toward the faster replica because the slow one's
    // backlog keeps it off the argmin.
    Router router(RoutingPolicy::least_loaded, 2);
    std::vector<double> loads(2, 0.0);
    std::vector<std::int64_t> assigned(2, 0);
    for (int i = 0; i < 300; ++i) {
        const std::size_t replica = router.route("t", loads);
        ++assigned[replica];
        ++loads[replica];
        // Replica 0 drains one request per three iterations, replica 1
        // one per iteration.
        if (i % 3 == 0 && loads[0] > 0) {
            --loads[0];
        }
        if (loads[1] > 0) {
            --loads[1];
        }
    }
    EXPECT_EQ(assigned[0] + assigned[1], 300);
    // The slow replica must end up with under half the stream (ties now
    // rotate, so it keeps at most its service share).
    EXPECT_LT(assigned[0], assigned[1]);
    EXPECT_LT(assigned[0], 150);
}

TEST(Router, RejectsWrongLoadsSize) {
    Router router(RoutingPolicy::least_loaded, 2);
    EXPECT_THROW(router.route("t", {1, 2, 3}), check_error);
}

TEST(Router, TaskHashIsStableAcrossRuns) {
    // FNV-1a with the standard offset/prime; pinned so affinity maps
    // never silently change between platforms or releases.
    EXPECT_EQ(task_hash(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(task_hash("a"), 0xaf63dc4c8601ec8cULL);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionController, ShedModeRefusesAtCapacityAndCounts) {
    AdmissionController admission(AdmissionMode::shed, 2);
    EXPECT_TRUE(admission.try_admit());
    EXPECT_TRUE(admission.try_admit());
    EXPECT_FALSE(admission.try_admit());  // at cap -> shed
    EXPECT_FALSE(admission.try_admit());
    EXPECT_EQ(admission.shed_count(), 2);
    EXPECT_EQ(admission.pending(), 2);
    admission.release();
    EXPECT_TRUE(admission.try_admit());  // slot freed -> admitted again
    EXPECT_EQ(admission.admitted_count(), 3);
    EXPECT_EQ(admission.peak_pending(), 2);
}

TEST(AdmissionController, BlockModeWaitsForRelease) {
    AdmissionController admission(AdmissionMode::block, 1);
    EXPECT_TRUE(admission.try_admit());

    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
        EXPECT_TRUE(admission.try_admit());
        admitted = true;
    });
    // The waiter must be blocked, not shed.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(admitted.load());
    EXPECT_EQ(admission.shed_count(), 0);

    admission.release();
    waiter.join();
    EXPECT_TRUE(admitted.load());
    EXPECT_EQ(admission.peak_pending(), 1);  // never two in flight
}

TEST(AdmissionController, CloseUnblocksAndRefuses) {
    AdmissionController admission(AdmissionMode::block, 1);
    EXPECT_TRUE(admission.try_admit());
    std::thread waiter([&] { EXPECT_FALSE(admission.try_admit()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    admission.close();
    waiter.join();
    EXPECT_FALSE(admission.try_admit());
}

TEST(AdmissionController, UnlimitedAdmitsEverything) {
    AdmissionController admission(AdmissionMode::shed, 0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(admission.try_admit());
    }
    EXPECT_EQ(admission.shed_count(), 0);
    EXPECT_EQ(admission.peak_pending(), 100);
}

// ---------------------------------------------------------------------------
// ServerPool end to end
// ---------------------------------------------------------------------------

struct PoolFixture {
    core::MimeNetwork network{tiny_config()};
    std::vector<core::TaskAdaptation> adaptations;

    explicit PoolFixture(std::size_t task_count = 4) {
        network.set_training(false);
        network.set_mode(core::ActivationMode::threshold);
        for (std::size_t t = 0; t < task_count; ++t) {
            network.reset_thresholds(0.02f + 0.2f * static_cast<float>(t));
            adaptations.push_back(core::capture_adaptation(
                network, "task" + std::to_string(t), 10));
        }
    }

    ThresholdCache::Loader loader() {
        return [this](const std::string& name) {
            for (const core::TaskAdaptation& adaptation : adaptations) {
                if (adaptation.name == name) {
                    return adaptation;
                }
            }
            throw check_error("name", __FILE__, __LINE__,
                              "unknown task " + name);
        };
    }

    /// Reference forward: install the task directly, run a batch of one.
    Tensor direct_logits(const std::string& task, const Tensor& image) {
        for (const core::TaskAdaptation& adaptation : adaptations) {
            if (adaptation.name != task) {
                continue;
            }
            network.load_thresholds(adaptation.thresholds);
            auto backbone = network.backbone_parameters();
            backbone[backbone.size() - 2]->value.copy_from(
                adaptation.head_weight);
            backbone[backbone.size() - 1]->value.copy_from(
                adaptation.head_bias);
            return network.forward(stack({image}));
        }
        throw check_error("task", __FILE__, __LINE__, "unknown task");
    }
};

TEST(ServerPool, PooledResultsBitMatchDirectForward) {
    PoolFixture fixture(3);
    Rng rng(17);

    std::vector<std::string> request_tasks;
    std::vector<Tensor> request_images;
    std::vector<std::future<InferenceResult>> futures;
    {
        PoolConfig config;
        config.replica_count = 3;
        config.routing = RoutingPolicy::round_robin;  // mix tasks over
                                                      // every replica
        config.server.batcher.max_batch_size = 4;
        config.server.batcher.max_wait = std::chrono::microseconds(1000);
        config.server.cache_capacity = 3;
        config.server.worker_threads = 1;
        ServerPool pool(fixture.network, fixture.loader(), config);
        EXPECT_EQ(pool.replica_count(), 3u);

        for (std::int64_t i = 0; i < 24; ++i) {
            const std::string task =
                "task" + std::to_string(i % 3);
            Tensor image = Tensor::randn({3, 32, 32}, rng);
            request_tasks.push_back(task);
            request_images.push_back(image);
            futures.push_back(pool.submit_async(task, std::move(image)));
        }
        pool.drain();

        const PoolStats stats = pool.stats();
        EXPECT_EQ(stats.requests_completed, 24);
        EXPECT_EQ(stats.requests_shed, 0);
        // round_robin spread 24 requests evenly.
        for (const ReplicaStats& replica : stats.replicas) {
            EXPECT_EQ(replica.routed, 8);
        }
        pool.stop();
    }

    // The pool mutated per-replica thresholds/heads, but the shared
    // backbone is untouched: direct forwards still reproduce every
    // served logit bit for bit.
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const InferenceResult result = futures[i].get();
        const Tensor reference =
            fixture.direct_logits(request_tasks[i], request_images[i]);
        ASSERT_EQ(result.logits.numel(), 10);
        for (std::int64_t c = 0; c < 10; ++c) {
            ASSERT_EQ(result.logits[c], reference[c])
                << "request " << i << " class " << c;
        }
    }
}

TEST(ServerPool, ReplicasShareBackboneStorage) {
    PoolFixture fixture(2);
    auto replica = fixture.network.clone_with_shared_backbone();

    EXPECT_TRUE(fixture.network.shares_backbone_with(*replica));
    auto mine = fixture.network.backbone_parameters();
    auto theirs = replica->backbone_parameters();
    ASSERT_EQ(mine.size(), theirs.size());
    // Conv/fc weights alias (same storage)...
    for (std::size_t i = 0; i + 2 < mine.size(); ++i) {
        EXPECT_EQ(mine[i]->value.data(), theirs[i]->value.data())
            << "backbone parameter " << i << " was duplicated";
    }
    // ...while the classifier head and thresholds are per-replica.
    for (std::size_t i = mine.size() - 2; i < mine.size(); ++i) {
        EXPECT_NE(mine[i]->value.data(), theirs[i]->value.data());
    }
    for (std::int64_t s = 0; s < fixture.network.site_count(); ++s) {
        EXPECT_NE(
            fixture.network.site(s).mask().thresholds().value.data(),
            replica->site(s).mask().thresholds().value.data());
    }
    EXPECT_GT(fixture.network.shared_backbone_bytes(), 0);

    // Writing a replica's thresholds must not leak into the prototype.
    replica->reset_thresholds(9.0f);
    EXPECT_NE(fixture.network.site(0).mask().thresholds().value[0], 9.0f);
}

TEST(ServerPool, TaskAffinityHydratesEachTaskOncePoolWide) {
    // 3 tasks, ample per-replica cache: affinity pins each task to one
    // replica (misses == tasks), while round_robin drags every task
    // through every replica (misses == tasks x replicas). Task count is
    // odd so strict rotation provably cycles every task over both
    // replicas.
    constexpr std::size_t kTasks = 3;
    constexpr std::size_t kReplicas = 2;
    const auto run = [&](RoutingPolicy routing) {
        PoolFixture fixture(kTasks);
        PoolConfig config;
        config.replica_count = kReplicas;
        config.routing = routing;
        config.server.batcher.max_wait = std::chrono::microseconds(200);
        config.server.cache_capacity = kTasks;
        config.server.worker_threads = 1;
        ServerPool pool(fixture.network, fixture.loader(), config);
        for (int round = 0; round < 6; ++round) {
            for (std::size_t t = 0; t < kTasks; ++t) {
                pool.submit("task" + std::to_string(t),
                            Tensor({3, 32, 32}, 0.1f));
            }
        }
        pool.drain();
        const PoolStats stats = pool.stats();
        pool.stop();
        return stats;
    };

    const PoolStats affinity = run(RoutingPolicy::task_affinity);
    EXPECT_EQ(affinity.cache_misses,
              static_cast<std::int64_t>(kTasks));

    const PoolStats rr = run(RoutingPolicy::round_robin);
    EXPECT_EQ(rr.cache_misses,
              static_cast<std::int64_t>(kTasks * kReplicas));
    EXPECT_GT(affinity.cache_hit_rate, rr.cache_hit_rate);
}

TEST(ServerPool, ShedModeRefusesDeterministically) {
    PoolFixture fixture(2);
    // A loader gate wedges replica 0's dispatch thread mid-hydration so
    // the test controls exactly how many requests are in flight.
    std::promise<void> gate;
    std::shared_future<void> gate_future = gate.get_future().share();
    std::promise<void> loader_entered;
    std::atomic<bool> first_load{true};
    auto inner = fixture.loader();
    ThresholdCache::Loader gated_loader =
        [&, inner](const std::string& name) {
            if (first_load.exchange(false)) {
                loader_entered.set_value();
                gate_future.wait();
            }
            return inner(name);
        };

    PoolConfig config;
    config.replica_count = 1;
    config.admission = AdmissionMode::shed;
    config.max_pending = 2;
    config.server.batcher.max_wait = std::chrono::microseconds(0);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, gated_loader, config);

    auto first = pool.submit_async("task0", Tensor({3, 32, 32}, 0.1f));
    loader_entered.get_future().wait();  // dispatch is now wedged
    auto second = pool.submit_async("task0", Tensor({3, 32, 32}, 0.2f));
    // Two in flight at max_pending=2: the third MUST be shed.
    EXPECT_THROW(
        pool.submit_async("task0", Tensor({3, 32, 32}, 0.3f)),
        overload_error);

    gate.set_value();
    first.get();
    second.get();
    pool.drain();

    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.requests_completed, 2);
    EXPECT_EQ(stats.requests_shed, 1);
    EXPECT_EQ(stats.peak_pending, 2);
    pool.stop();
}

TEST(ServerPool, BlockModeNeverExceedsMaxPending) {
    PoolFixture fixture(2);
    PoolConfig config;
    config.replica_count = 2;
    config.admission = AdmissionMode::block;
    config.max_pending = 3;
    config.server.batcher.max_wait = std::chrono::microseconds(100);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, fixture.loader(), config);

    std::vector<std::thread> clients;
    std::atomic<int> completed{0};
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < 10; ++i) {
                pool.submit("task" + std::to_string((c + i) % 2),
                            Tensor({3, 32, 32}, 0.05f * c));
                ++completed;
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    pool.drain();
    const PoolStats stats = pool.stats();
    pool.stop();

    EXPECT_EQ(completed.load(), 40);
    EXPECT_EQ(stats.requests_completed, 40);
    EXPECT_EQ(stats.requests_shed, 0);
    // The admission high-water mark proves the cap held under
    // concurrency.
    EXPECT_LE(stats.peak_pending, 3);
}

TEST(ServerPool, ConcurrentClientsOnAllPolicies) {
    for (const RoutingPolicy routing :
         {RoutingPolicy::round_robin, RoutingPolicy::task_affinity,
          RoutingPolicy::least_loaded}) {
        PoolFixture fixture(3);
        PoolConfig config;
        config.replica_count = 2;
        config.routing = routing;
        config.server.batcher.max_wait = std::chrono::microseconds(300);
        config.server.cache_capacity = 3;
        config.server.worker_threads = 1;
        ServerPool pool(fixture.network, fixture.loader(), config);

        constexpr int kThreads = 3;
        constexpr int kPerThread = 8;
        std::vector<std::thread> clients;
        std::atomic<int> predictions_in_range{0};
        for (int t = 0; t < kThreads; ++t) {
            clients.emplace_back([&, t] {
                Rng rng(static_cast<std::uint64_t>(50 + t));
                for (int i = 0; i < kPerThread; ++i) {
                    const InferenceResult result = pool.submit(
                        "task" + std::to_string((t + i) % 3),
                        Tensor::randn({3, 32, 32}, rng));
                    if (result.predicted_class >= 0 &&
                        result.predicted_class < 10) {
                        ++predictions_in_range;
                    }
                }
            });
        }
        for (std::thread& client : clients) {
            client.join();
        }
        pool.drain();
        const PoolStats stats = pool.stats();
        pool.stop();

        EXPECT_EQ(stats.requests_completed, kThreads * kPerThread)
            << to_string(routing);
        EXPECT_EQ(predictions_in_range.load(), kThreads * kPerThread)
            << to_string(routing);
        std::int64_t routed_total = 0;
        for (const ReplicaStats& replica : stats.replicas) {
            routed_total += replica.routed;
        }
        EXPECT_EQ(routed_total, kThreads * kPerThread)
            << to_string(routing);
    }
}

TEST(ServerPool, SubmitAfterStopThrows) {
    PoolFixture fixture(2);
    PoolConfig config;
    config.replica_count = 2;
    ServerPool pool(fixture.network, fixture.loader(), config);
    pool.stop();
    EXPECT_THROW(pool.submit("task0", Tensor({3, 32, 32})), check_error);
}

TEST(ServerPool, StatsMergeUsesPooledReservoirs) {
    // Percentiles in pool stats must come from merged reservoirs: with
    // one slow replica, the pooled p95 must reflect the slow stream,
    // which per-replica averaging would halve.
    PoolFixture fixture(2);
    PoolConfig config;
    config.replica_count = 2;
    config.routing = RoutingPolicy::task_affinity;
    config.server.batcher.max_wait = std::chrono::microseconds(100);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, fixture.loader(), config);
    for (int i = 0; i < 10; ++i) {
        pool.submit("task0", Tensor({3, 32, 32}, 0.1f));
        pool.submit("task1", Tensor({3, 32, 32}, 0.2f));
    }
    pool.drain();
    const PoolStats stats = pool.stats();
    pool.stop();

    EXPECT_GT(stats.p50_latency_us, 0.0);
    EXPECT_GE(stats.p95_latency_us, stats.p50_latency_us);
    EXPECT_GE(stats.p99_latency_us, stats.p95_latency_us);
    const std::string table = stats.to_table_string();
    EXPECT_NE(table.find("replicas"), std::string::npos);
    EXPECT_NE(table.find("cache hit rate"), std::string::npos);
}

TEST(ServerPool, CostAwareSchedulingCalibratesAndRetiresLoad) {
    // Default pool: cost-aware scheduling builds its own model from the
    // prototype's layer specs, prices every routed request, and retires
    // the predicted load as completions arrive.
    PoolFixture fixture(2);
    PoolConfig config;
    config.replica_count = 2;
    config.routing = RoutingPolicy::least_loaded;
    config.server.batcher.max_wait = std::chrono::microseconds(200);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, fixture.loader(), config);
    ASSERT_NE(pool.cost_model(), nullptr);

    for (int i = 0; i < 16; ++i) {
        pool.submit("task" + std::to_string(i % 2),
                    Tensor({3, 32, 32}, 0.1f));
    }
    pool.drain();
    const PoolStats stats = pool.stats();
    pool.stop();

    EXPECT_EQ(stats.requests_served, 16);
    // Every batch fed the calibrator, so the model has observations and
    // a positive (clamped) scale.
    EXPECT_GT(pool.cost_model()->observation_count(), 0);
    EXPECT_GT(stats.cost_calibration_scale, 0.0);
    // All work completed -> the predicted-outstanding ledger is empty.
    EXPECT_EQ(stats.predicted_outstanding_us, 0.0);
    EXPECT_EQ(stats.active_replicas, 2u);
}

TEST(ServerPool, AutoscalerGrowsUnderLoadAndShrinksBackToMin) {
    PoolFixture fixture(2);

    // Deterministic linear pricing so the predicted backlog is exact:
    // a 48-request burst on one active replica is tens of thousands of
    // predicted microseconds, far past grow_backlog_us.
    CostModelConfig cost_config;
    cost_config.use_simulator = false;
    cost_config.default_per_sample_us = 2000.0;

    PoolConfig config;
    config.replica_count = 1;  // start at min
    config.routing = RoutingPolicy::least_loaded;
    config.cost_model = std::make_shared<CostModel>(
        fixture.network.layer_specs(), cost_config);
    config.autoscaler.enabled = true;
    config.autoscaler.min_replicas = 1;
    config.autoscaler.max_replicas = 3;
    config.autoscaler.interval = std::chrono::milliseconds(2);
    config.autoscaler.grow_backlog_us = 1000.0;
    config.autoscaler.shrink_backlog_us = 200.0;
    config.autoscaler.grow_patience = 1;
    config.autoscaler.shrink_patience = 2;
    config.server.batcher.max_batch_size = 4;
    config.server.batcher.max_wait = std::chrono::microseconds(200);
    // Model an attached accelerator so the burst stays queued long
    // enough for the scaler to react on any host.
    config.server.simulated_service_time = std::chrono::milliseconds(3);
    config.server.worker_threads = 1;

    ServerPool pool(fixture.network, fixture.loader(), config);
    EXPECT_EQ(pool.replica_count(), 3u);  // provisioned to max up front
    EXPECT_EQ(pool.active_replicas(), 1u);

    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 48; ++i) {
        futures.push_back(pool.submit_async(
            "task" + std::to_string(i % 2), Tensor({3, 32, 32}, 0.1f)));
    }
    // The scaler must activate extra replicas while the queue drains.
    std::size_t peak_active = pool.active_replicas();
    for (int spin = 0; spin < 2000 && peak_active < 2; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        peak_active = std::max(peak_active, pool.active_replicas());
    }
    EXPECT_GE(peak_active, 2u);
    pool.drain();
    for (std::future<InferenceResult>& future : futures) {
        EXPECT_EQ(future.get().logits.shape().dim(-1), 10);
    }

    // Idle backlog sits below shrink_backlog_us: the scaler must hand
    // the extra replicas back until it rests at min_replicas.
    std::size_t active = pool.active_replicas();
    for (int spin = 0; spin < 5000 && active > 1; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        active = pool.active_replicas();
    }
    EXPECT_EQ(active, 1u);

    const PoolStats stats = pool.stats();
    pool.stop();
    EXPECT_GE(stats.autoscale_grows, 1);
    EXPECT_GE(stats.autoscale_shrinks, 1);
    EXPECT_EQ(stats.active_replicas, 1u);
    EXPECT_EQ(stats.requests_completed, 48);
    const std::string table = stats.to_table_string();
    EXPECT_NE(table.find("replicas (active/provisioned)"),
              std::string::npos);
}

// Regression for the capability-annotation audit: active_ and the
// router size move only under mutex_, so a reader can never observe the
// autoscaler mid-transition (an active count outside [min, max], or a
// routed target past the provisioned set). Submitting threads race the
// scaler while observers hammer the snapshot paths.
TEST(ServerPool, ActiveCountStaysBoundedWhileAutoscalerRacesSubmits) {
    PoolFixture fixture(2);

    CostModelConfig cost_config;
    cost_config.use_simulator = false;
    cost_config.default_per_sample_us = 2000.0;

    PoolConfig config;
    config.replica_count = 1;
    config.routing = RoutingPolicy::least_loaded;
    config.cost_model = std::make_shared<CostModel>(
        fixture.network.layer_specs(), cost_config);
    config.autoscaler.enabled = true;
    config.autoscaler.min_replicas = 1;
    config.autoscaler.max_replicas = 3;
    config.autoscaler.interval = std::chrono::milliseconds(1);
    config.autoscaler.grow_backlog_us = 500.0;
    config.autoscaler.shrink_backlog_us = 100.0;
    config.autoscaler.grow_patience = 1;
    config.autoscaler.shrink_patience = 1;
    config.server.batcher.max_batch_size = 4;
    config.server.batcher.max_wait = std::chrono::microseconds(200);
    config.server.simulated_service_time = std::chrono::milliseconds(1);
    config.server.worker_threads = 1;

    ServerPool pool(fixture.network, fixture.loader(), config);

    std::atomic<bool> stop_observing{false};
    std::atomic<bool> saw_out_of_bounds{false};
    std::thread observer([&] {
        while (!stop_observing.load()) {
            const std::size_t active = pool.active_replicas();
            if (active < 1 || active > 3) {
                saw_out_of_bounds.store(true);
            }
            const PoolStats snapshot = pool.stats();
            if (snapshot.active_replicas < 1 ||
                snapshot.active_replicas > 3) {
                saw_out_of_bounds.store(true);
            }
        }
    });

    constexpr int kClients = 4;
    constexpr int kPerClient = 12;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&pool, c] {
            for (int i = 0; i < kPerClient; ++i) {
                pool.submit("task" + std::to_string(c % 2),
                            Tensor({3, 32, 32}, 0.1f));
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    pool.drain();
    stop_observing.store(true);
    observer.join();

    const PoolStats stats = pool.stats();
    pool.stop();
    EXPECT_FALSE(saw_out_of_bounds.load());
    EXPECT_EQ(stats.requests_completed, kClients * kPerClient);
    // Every request routed to some replica, none lost mid-transition.
    std::int64_t routed_total = 0;
    for (const ReplicaStats& replica : stats.replicas) {
        routed_total += replica.routed;
    }
    EXPECT_EQ(routed_total, kClients * kPerClient);
}

// Regression for the snapshot-read audit: stats() merges per-replica
// counters and then reads the guarded pool ledger in one critical
// section, so a snapshot taken mid-traffic must be internally coherent
// (ledger non-negative, completed never ahead of submitted) even while
// dispatch threads mutate everything underneath it.
TEST(ServerPool, StatsSnapshotStaysCoherentUnderConcurrentTraffic) {
    PoolFixture fixture(2);
    PoolConfig config;
    config.replica_count = 2;
    config.routing = RoutingPolicy::least_loaded;
    config.server.batcher.max_batch_size = 4;
    config.server.batcher.max_wait = std::chrono::microseconds(200);
    config.server.worker_threads = 1;
    ServerPool pool(fixture.network, fixture.loader(), config);

    std::atomic<bool> done{false};
    std::atomic<bool> saw_incoherent{false};
    std::thread scraper([&] {
        while (!done.load()) {
            const PoolStats snapshot = pool.stats();
            if (snapshot.predicted_outstanding_us < 0.0 ||
                snapshot.requests_completed >
                    snapshot.requests_submitted ||
                snapshot.replicas.size() != 2) {
                saw_incoherent.store(true);
            }
        }
    });

    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(32);
    for (int i = 0; i < 32; ++i) {
        futures.push_back(pool.submit_async(
            "task" + std::to_string(i % 2), Tensor({3, 32, 32}, 0.1f)));
    }
    for (std::future<InferenceResult>& future : futures) {
        EXPECT_EQ(future.get().logits.shape().dim(-1), 10);
    }
    pool.drain();
    done.store(true);
    scraper.join();

    const PoolStats stats = pool.stats();
    pool.stop();
    EXPECT_FALSE(saw_incoherent.load());
    EXPECT_EQ(stats.requests_completed, 32);
    EXPECT_EQ(stats.predicted_outstanding_us, 0.0);
}

}  // namespace
}  // namespace mime::serve
