// Tests for softmax / batching helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "tensor/tensor_ops.h"

namespace mime {
namespace {

TEST(Softmax, RowsSumToOne) {
    const Tensor logits({2, 3}, std::vector<float>{1, 2, 3, -1, 0, 1});
    const Tensor p = softmax_rows(logits);
    for (std::int64_t r = 0; r < 2; ++r) {
        double row_sum = 0.0;
        for (std::int64_t c = 0; c < 3; ++c) {
            row_sum += p.at({r, c});
            EXPECT_GT(p.at({r, c}), 0.0f);
        }
        EXPECT_NEAR(row_sum, 1.0, 1e-6);
    }
}

TEST(Softmax, NumericallyStableWithLargeLogits) {
    const Tensor logits({1, 2}, std::vector<float>{1000.0f, 1001.0f});
    const Tensor p = softmax_rows(logits);
    EXPECT_FALSE(std::isnan(p[0]));
    EXPECT_NEAR(p[1] / p[0], std::exp(1.0f), 1e-3);
}

TEST(Softmax, OrderPreserved) {
    const Tensor logits({1, 3}, std::vector<float>{3, 1, 2});
    const Tensor p = softmax_rows(logits);
    EXPECT_GT(p[0], p[2]);
    EXPECT_GT(p[2], p[1]);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
    const Tensor logits({2, 4},
                        std::vector<float>{0.5f, -1, 2, 0, 3, 3, 3, 3});
    const Tensor lp = log_softmax_rows(logits);
    const Tensor p = softmax_rows(logits);
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5);
    }
}

TEST(ArgmaxRows, PicksMaxPerRow) {
    const Tensor t({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
    const auto idx = argmax_rows(t);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

TEST(BatchSlice, ExtractsSample) {
    Tensor batch({2, 2, 2});
    for (std::int64_t i = 0; i < 8; ++i) {
        batch[i] = static_cast<float>(i);
    }
    const Tensor s1 = batch_slice(batch, 1);
    EXPECT_EQ(s1.shape(), Shape({2, 2}));
    EXPECT_EQ(s1[0], 4.0f);
    EXPECT_EQ(s1[3], 7.0f);
    EXPECT_THROW(batch_slice(batch, 2), check_error);
}

TEST(BatchAssign, WritesSample) {
    Tensor batch({2, 3});
    const Tensor sample({3}, std::vector<float>{7, 8, 9});
    batch_assign(batch, 1, sample);
    EXPECT_EQ(batch.at({1, 2}), 9.0f);
    EXPECT_EQ(batch.at({0, 0}), 0.0f);
    const Tensor wrong({2});
    EXPECT_THROW(batch_assign(batch, 0, wrong), check_error);
}

TEST(Stack, BuildsBatch) {
    const Tensor a({2}, std::vector<float>{1, 2});
    const Tensor b({2}, std::vector<float>{3, 4});
    const Tensor s = stack({a, b});
    EXPECT_EQ(s.shape(), Shape({2, 2}));
    EXPECT_EQ(s.at({1, 0}), 3.0f);
}

TEST(Stack, RejectsMixedShapes) {
    const Tensor a({2});
    const Tensor b({3});
    EXPECT_THROW(stack({a, b}), check_error);
    EXPECT_THROW(stack({}), check_error);
}

}  // namespace
}  // namespace mime
