// Tests for the plain-CNN architecture builder, MimeNetwork on custom
// architectures, and fixed-point quantization.
#include <gtest/gtest.h>

#include "arch/plain_cnn.h"
#include "common/check.h"
#include "core/mime_network.h"
#include "core/storage.h"
#include "hw/simulator.h"
#include "nn/quantize.h"

namespace mime {
namespace {

arch::PlainCnnConfig small_cnn() {
    arch::PlainCnnConfig config;
    config.input_size = 32;
    config.blocks = {{8, 2}, {16, 2}};
    config.fc_widths = {32};
    config.num_classes = 10;
    return config;
}

TEST(PlainCnn, SpecShapes) {
    const auto layers = arch::plain_cnn_spec(small_cnn());
    ASSERT_EQ(layers.size(), 5u);  // 2 + 2 convs + 1 fc
    EXPECT_EQ(layers[0].name, "conv1");
    EXPECT_EQ(layers[0].in_channels, 3);
    EXPECT_EQ(layers[1].pool_after, true);
    EXPECT_EQ(layers[2].in_height, 16);  // after pool
    EXPECT_EQ(layers[4].name, "fc5");
    EXPECT_EQ(layers[4].kind, arch::LayerKind::fc);
    // fc input = 16 channels * 8 * 8 after two pools.
    EXPECT_EQ(layers[4].in_channels, 16 * 8 * 8);
}

TEST(PlainCnn, ClassifierMatchesLastFc) {
    const auto cls = arch::plain_cnn_classifier(small_cnn());
    EXPECT_EQ(cls.in_channels, 32);
    EXPECT_EQ(cls.out_channels, 10);
}

TEST(PlainCnn, NoFcVariantClassifierDims) {
    arch::PlainCnnConfig config = small_cnn();
    config.fc_widths = {};
    const auto layers = arch::plain_cnn_spec(config);
    EXPECT_EQ(layers.back().kind, arch::LayerKind::conv);
    const auto cls = arch::plain_cnn_classifier(config);
    // Last conv at 16x16 pools to 8x8: 16 * 64 inputs.
    EXPECT_EQ(cls.in_channels, 16 * 8 * 8);
}

TEST(PlainCnn, RejectsBadConfig) {
    arch::PlainCnnConfig config = small_cnn();
    config.input_size = 6;  // not divisible by 4
    EXPECT_THROW(arch::plain_cnn_spec(config), check_error);
    config = small_cnn();
    config.blocks.clear();
    EXPECT_THROW(arch::plain_cnn_spec(config), check_error);
}

TEST(MimeNetworkCustom, BuildsAndRunsPlainCnn) {
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(small_cnn());
    config.custom_classifier = arch::plain_cnn_classifier(small_cnn());
    config.seed = 4;
    core::MimeNetwork net(config);

    EXPECT_EQ(net.site_count(), 5);
    EXPECT_EQ(net.site_name(4), "fc5");

    Rng rng(1);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    net.set_training(false);
    const Tensor logits = net.forward(x);
    EXPECT_EQ(logits.shape(), Shape({2, 10}));

    // Threshold machinery works on the custom architecture too.
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(0.2f);
    const Tensor masked_logits = net.forward(x);
    EXPECT_EQ(masked_logits.shape(), Shape({2, 10}));
}

TEST(MimeNetworkCustom, NoHiddenFcArchitecture) {
    arch::PlainCnnConfig cnn = small_cnn();
    cnn.fc_widths = {};
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.seed = 4;
    core::MimeNetwork net(config);
    Rng rng(2);
    const Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
    net.set_training(false);
    EXPECT_EQ(net.forward(x).shape(), Shape({1, 10}));
}

TEST(MimeNetworkCustom, WorksWithStorageAndSimulator) {
    // The whole pipeline is architecture-generic: storage model and
    // hardware simulator consume the same specs.
    const auto layers = arch::plain_cnn_spec(small_cnn());
    const auto cls = arch::plain_cnn_classifier(small_cnn());
    core::StorageModel storage(layers, cls);
    EXPECT_GT(storage.savings(3), 1.0);

    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    hw::SimulationOptions options;
    options.scheme = hw::Scheme::mime;
    options.batch = {0, 0, 0};
    options.profiles = {
        hw::SparsityProfile::uniform("u", 0.5,
                                     static_cast<std::int64_t>(layers.size()))};
    const auto result = sim.run(layers, options);
    EXPECT_EQ(result.layers.size(), layers.size());
    EXPECT_GT(result.total_energy.total(), 0.0);
}

TEST(Quantize, SixteenBitIsNearlyLossless) {
    Rng rng(3);
    Tensor t = Tensor::randn({1000}, rng);
    const double rel16 = nn::quantization_relative_error(t, 16);
    EXPECT_LT(rel16, 1e-4);
    const double rel8 = nn::quantization_relative_error(t, 8);
    EXPECT_GT(rel8, rel16);  // fewer bits, more error
    EXPECT_LT(rel8, 0.05);
}

TEST(Quantize, StatsAreConsistent) {
    Rng rng(5);
    Tensor t = Tensor::randn({512}, rng);
    const Tensor original = t;
    const auto stats = nn::fake_quantize(t, 8);
    EXPECT_GT(stats.scale, 0.0);
    EXPECT_GE(stats.max_abs_error, stats.mean_abs_error);
    // Round-to-nearest error is bounded by half an LSB (plus clipping).
    EXPECT_LE(stats.max_abs_error, stats.scale * 0.5 + 1e-7);
    // Idempotent: quantizing again is exact (same grid).
    Tensor again = t;
    const auto stats2 = nn::fake_quantize(again, 8);
    EXPECT_LT(stats2.mean_abs_error, 1e-7);
}

TEST(Quantize, ZeroTensorUnchanged) {
    Tensor t({16});
    const auto stats = nn::fake_quantize(t, 8);
    EXPECT_EQ(stats.scale, 0.0);
    EXPECT_EQ(sum(t), 0.0f);
}

TEST(Quantize, RejectsSillyBitWidths) {
    Tensor t({4});
    EXPECT_THROW(nn::fake_quantize(t, 1), check_error);
    EXPECT_THROW(nn::fake_quantize(t, 32), check_error);
}

TEST(Quantize, ModuleParametersQuantized) {
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(small_cnn());
    config.custom_classifier = arch::plain_cnn_classifier(small_cnn());
    config.seed = 4;
    core::MimeNetwork net(config);

    Rng rng(6);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    net.set_training(false);
    const Tensor before = net.forward(x);

    const double worst = nn::fake_quantize_parameters(net.network(), 16);
    EXPECT_GT(worst, 0.0);
    const Tensor after = net.forward(x);

    // 16-bit deployment precision barely moves the logits (Table IV
    // assumption holds for our models).
    for (std::int64_t i = 0; i < before.numel(); ++i) {
        EXPECT_NEAR(before[i], after[i], 2e-2f);
    }
}

}  // namespace
}  // namespace mime
